//! Deterministic fault injection for the serving core.
//!
//! A [`FaultPlan`] is a seeded schedule of failures — worker panics, chain
//! lookup errors, injected chain latency — that the scheduler consults at
//! the points where production faults would surface. When no plan is
//! attached (the default) every hook is a `None` check on an `Option`, so
//! the harness costs nothing in the happy path.
//!
//! The plan is deterministic: the same [`FaultConfig`] produces the same
//! fault sequence, which is what lets the chaos suite assert exact
//! recovery behaviour (every request answered exactly once, typed 500s on
//! panicked batches, typed errors on exhausted chain retries) instead of
//! "it probably survived".
//!
//! The module also ships the *client-side* half of the harness:
//! [`drip`] writes a request byte stream in tiny fragments with
//! inter-fragment delays and optional mid-message disconnect, which is how
//! the fuzz and chaos tests model slow, fragmented, and abruptly-vanishing
//! clients.

use phishinghook_data::ChainError;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// The seeded fault schedule. `Eq`-friendly plain data so it can ride on
/// [`SchedulerOptions`](crate::SchedulerOptions) and
/// [`ServeConfig`](crate::ServeConfig) like every other knob.
///
/// All rates default to zero: a default `FaultConfig` injects nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultConfig {
    /// Seed for the per-lookup fault decisions. Two plans with the same
    /// seed and rates make identical decisions in the same order.
    pub seed: u64,
    /// Panic the scoring worker on every Nth batch (0 = never). The panic
    /// fires *inside* the supervised scoring closure, so it exercises the
    /// same `catch_unwind` + respawn path a real model bug would.
    pub worker_panic_every: u64,
    /// Restrict injected worker panics to one shard's workers (`None` =
    /// any shard). With a target set, only batches scored by that shard
    /// count toward `worker_panic_every` — the chaos suite uses this to
    /// prove a crashing lane never poisons its siblings.
    pub worker_panic_shard: Option<usize>,
    /// Per-mille probability that a chain code lookup fails with a
    /// [`ChainError::Transient`] (0 = never, 1000 = always).
    pub chain_fail_permille: u32,
    /// Latency added to every chain code lookup, in microseconds.
    pub chain_latency_micros: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0xFA_17,
            worker_panic_every: 0,
            worker_panic_shard: None,
            chain_fail_permille: 0,
            chain_latency_micros: 0,
        }
    }
}

impl FaultConfig {
    /// True when every rate is zero — the plan would never inject anything
    /// and the scheduler can skip attaching it entirely.
    pub fn is_inert(&self) -> bool {
        self.worker_panic_every == 0
            && self.chain_fail_permille == 0
            && self.chain_latency_micros == 0
    }
}

/// SplitMix64 finalizer: one well-mixed u64 per (seed, counter) pair.
/// Local copy so the harness stays self-contained inside this crate.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runtime state of a fault schedule: the config plus the counters that
/// make its decisions deterministic and observable.
#[derive(Debug)]
pub struct FaultPlan {
    config: FaultConfig,
    batches: AtomicU64,
    lookups: AtomicU64,
    panics_injected: AtomicU64,
    chain_faults_injected: AtomicU64,
}

impl FaultPlan {
    /// Builds the runtime plan for `config`.
    pub fn new(config: FaultConfig) -> Self {
        FaultPlan {
            config,
            batches: AtomicU64::new(0),
            lookups: AtomicU64::new(0),
            panics_injected: AtomicU64::new(0),
            chain_faults_injected: AtomicU64::new(0),
        }
    }

    /// The schedule this plan was built from.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Called once per scored batch with the scoring shard's index; true
    /// when this batch should panic. Batches are numbered from 1, so
    /// `worker_panic_every = 3` panics batches 3, 6, 9, … regardless of
    /// which worker drains them. When `worker_panic_shard` targets a lane,
    /// other shards' batches neither panic nor advance the counter.
    pub fn should_panic_batch(&self, shard: usize) -> bool {
        let every = self.config.worker_panic_every;
        if every == 0 {
            return false;
        }
        if self.config.worker_panic_shard.is_some_and(|t| t != shard) {
            return false;
        }
        let n = self.batches.fetch_add(1, Ordering::SeqCst) + 1;
        if n.is_multiple_of(every) {
            self.panics_injected.fetch_add(1, Ordering::SeqCst);
            true
        } else {
            false
        }
    }

    /// Called once per chain code-lookup attempt. Sleeps the configured
    /// injected latency, then rolls the seeded per-mille dice: `Some` is a
    /// transient fault the caller must surface (or retry) instead of the
    /// real lookup.
    pub fn chain_fault(&self) -> Option<ChainError> {
        if self.config.chain_latency_micros > 0 {
            std::thread::sleep(Duration::from_micros(self.config.chain_latency_micros));
        }
        let permille = u64::from(self.config.chain_fail_permille);
        if permille == 0 {
            return None;
        }
        let n = self.lookups.fetch_add(1, Ordering::SeqCst);
        if mix(self.config.seed ^ n) % 1000 < permille {
            let k = self.chain_faults_injected.fetch_add(1, Ordering::SeqCst) + 1;
            Some(ChainError::Transient(format!(
                "injected chain fault #{k} (lookup {n})"
            )))
        } else {
            None
        }
    }

    /// Worker panics injected so far.
    pub fn panics_injected(&self) -> u64 {
        self.panics_injected.load(Ordering::SeqCst)
    }

    /// Chain lookup faults injected so far.
    pub fn chain_faults_injected(&self) -> u64 {
        self.chain_faults_injected.load(Ordering::SeqCst)
    }
}

/// The message a plan-injected worker panic carries, so the chaos suite
/// can tell an injected fault from a genuine model bug in backtraces.
pub const INJECTED_PANIC: &str = "fault plan: injected worker panic";

/// Drip-feeds `bytes` into `w` in `fragment`-byte chunks, sleeping `delay`
/// between chunks, stopping early after `abort_after` bytes when set.
/// Returns the number of bytes actually written.
///
/// This is the slow/fragmented/abruptly-disconnecting client injector:
/// `fragment = 1` with a small delay models a byte-at-a-time trickler,
/// `abort_after = Some(k)` models a client that vanishes mid-request
/// (callers drop or shut down the stream right after).
pub fn drip<W: Write>(
    w: &mut W,
    bytes: &[u8],
    fragment: usize,
    delay: Duration,
    abort_after: Option<usize>,
) -> std::io::Result<usize> {
    let fragment = fragment.max(1);
    let limit = abort_after.unwrap_or(bytes.len()).min(bytes.len());
    let mut written = 0;
    for chunk in bytes[..limit].chunks(fragment) {
        w.write_all(chunk)?;
        w.flush()?;
        written += chunk.len();
        if written < limit && !delay.is_zero() {
            std::thread::sleep(delay);
        }
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_inert_and_injects_nothing() {
        let config = FaultConfig::default();
        assert!(config.is_inert());
        let plan = FaultPlan::new(config);
        for _ in 0..100 {
            assert!(!plan.should_panic_batch(0));
            assert!(plan.chain_fault().is_none());
        }
        assert_eq!(plan.panics_injected(), 0);
        assert_eq!(plan.chain_faults_injected(), 0);
    }

    #[test]
    fn panic_schedule_fires_every_nth_batch() {
        let plan = FaultPlan::new(FaultConfig {
            worker_panic_every: 3,
            ..Default::default()
        });
        let fired: Vec<bool> = (0..9).map(|_| plan.should_panic_batch(0)).collect();
        assert_eq!(
            fired,
            [false, false, true, false, false, true, false, false, true]
        );
        assert_eq!(plan.panics_injected(), 3);
    }

    #[test]
    fn shard_targeted_panics_skip_other_lanes_without_counting() {
        let plan = FaultPlan::new(FaultConfig {
            worker_panic_every: 2,
            worker_panic_shard: Some(1),
            ..Default::default()
        });
        // Shard 0 batches never fire and never advance the schedule...
        for _ in 0..10 {
            assert!(!plan.should_panic_batch(0));
        }
        // ...so shard 1 still sees its own batches 1, 2, 3, 4 → panics on
        // exactly the even ones.
        let fired: Vec<bool> = (0..4).map(|_| plan.should_panic_batch(1)).collect();
        assert_eq!(fired, [false, true, false, true]);
        assert_eq!(plan.panics_injected(), 2);
    }

    #[test]
    fn chain_faults_are_deterministic_per_seed_and_roughly_rate_shaped() {
        let roll = |seed: u64| -> Vec<bool> {
            let plan = FaultPlan::new(FaultConfig {
                seed,
                chain_fail_permille: 250,
                ..Default::default()
            });
            (0..400).map(|_| plan.chain_fault().is_some()).collect()
        };
        let a = roll(7);
        let b = roll(7);
        assert_eq!(a, b, "same seed must replay the same fault sequence");
        let c = roll(8);
        assert_ne!(a, c, "different seeds should differ");
        let hits = a.iter().filter(|&&f| f).count();
        assert!(
            (40..=160).contains(&hits),
            "250‰ over 400 lookups should land near 100, got {hits}"
        );
        let errs: Vec<ChainError> = {
            let plan = FaultPlan::new(FaultConfig {
                seed: 7,
                chain_fail_permille: 1000,
                ..Default::default()
            });
            (0..2).filter_map(|_| plan.chain_fault()).collect()
        };
        assert!(matches!(errs[0], ChainError::Transient(_)));
        assert!(errs[0].to_string().contains("injected chain fault #1"));
    }

    #[test]
    fn drip_fragments_and_aborts_where_told() {
        let mut sink = Vec::new();
        let n = drip(&mut sink, b"hello world", 4, Duration::ZERO, None).unwrap();
        assert_eq!(n, 11);
        assert_eq!(sink, b"hello world");

        let mut sink = Vec::new();
        let n = drip(&mut sink, b"hello world", 3, Duration::ZERO, Some(5)).unwrap();
        assert_eq!(n, 5);
        assert_eq!(sink, b"hello");
    }
}
