//! The keccak-keyed verdict cache.
//!
//! On-chain, the dominant request pattern is *redeployment*: the same
//! phishing template lands at thousands of fresh addresses with
//! bit-identical runtime bytecode (the paper dedups 17,455 flagged
//! bytecodes to 3,458 uniques). Scoring is a pure function of the bytecode,
//! so the daemon memoizes it: requests are keyed by the Keccak-256 code
//! hash ([`phishinghook_evm::keccak::Digest`] — Ethereum's own code-hash
//! primitive), and a hit replays the exact `f64`s the cold path produced.
//! **Cached and uncached scores are bit-identical by construction** (the
//! scheduler's tests assert `f64::to_bits` equality).
//!
//! Eviction is strict LRU under a configurable **byte budget** (the CLI's
//! `--cache-bytes`): entries live in a slab-backed intrusive doubly-linked
//! list, every lookup hit moves its entry to the front, and inserts evict
//! from the tail until the accounted size fits. Hit/miss/eviction counters
//! are exposed via [`VerdictCache::stats`] and surfaced over the wire by
//! the `stats` line-protocol command.

use phishinghook_evm::keccak::Digest;
use std::collections::HashMap;
use std::sync::Mutex;

/// The memoized outcome of scoring one bytecode: everything a response
/// needs except the per-connection request id.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedVerdict {
    /// Combined class-1 probability (bit-exact as produced by the model).
    pub proba: f64,
    /// Per-model probabilities in [`model_names`](crate::Scheduler::model_names)
    /// order (names are fixed per serving process, so entries store only
    /// the floats).
    pub per_model: Vec<f64>,
}

/// Counter snapshot of one cache (monotonic over the cache's lifetime,
/// except `entries`/`bytes` which are the current occupancy).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed (and went to the scheduler).
    pub misses: u64,
    /// Entries evicted to respect the byte budget.
    pub evictions: u64,
    /// Entries inserted over the cache's lifetime.
    pub insertions: u64,
    /// Entries currently resident.
    pub entries: u64,
    /// Accounted bytes currently resident.
    pub bytes: u64,
    /// The configured byte budget.
    pub capacity_bytes: u64,
}

impl CacheStats {
    /// Hit fraction of all lookups so far (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Accounted size of one cache entry holding `n_models` per-model
/// probabilities: 32 key bytes + 8 for the combined probability + 8 per
/// member + 88 bytes of fixed index/link overhead. Deliberately a simple,
/// documented formula — the budget controls growth, it is not a heap
/// profiler.
pub fn entry_bytes(n_models: usize) -> usize {
    32 + 8 + 8 * n_models + 88
}

const NONE: usize = usize::MAX;

struct Entry {
    key: Digest,
    value: CachedVerdict,
    prev: usize,
    next: usize,
}

struct Lru {
    map: HashMap<Digest, usize>,
    slab: Vec<Entry>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    bytes: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
    insertions: u64,
}

/// A thread-safe LRU verdict cache with a byte budget (see module docs).
pub struct VerdictCache {
    inner: Mutex<Lru>,
    capacity_bytes: usize,
}

impl VerdictCache {
    /// Creates a cache bounded by `capacity_bytes` of accounted entry size
    /// (see [`entry_bytes`]). A budget too small for even one entry yields
    /// a cache that never retains anything (but still counts lookups).
    pub fn new(capacity_bytes: usize) -> Self {
        VerdictCache {
            inner: Mutex::new(Lru {
                map: HashMap::new(),
                slab: Vec::new(),
                free: Vec::new(),
                head: NONE,
                tail: NONE,
                bytes: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
                insertions: 0,
            }),
            capacity_bytes,
        }
    }

    /// The configured byte budget.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock").map.len()
    }

    /// Whether the cache is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up a code hash, counting a hit (and refreshing recency) or a
    /// miss. Returns a clone of the cached verdict so the caller never
    /// holds the lock while rendering.
    pub fn lookup(&self, key: &Digest) -> Option<CachedVerdict> {
        let mut lru = self.inner.lock().expect("cache lock");
        match lru.map.get(key).copied() {
            Some(idx) => {
                lru.hits += 1;
                lru.unlink(idx);
                lru.push_front(idx);
                Some(lru.slab[idx].value.clone())
            }
            None => {
                lru.misses += 1;
                None
            }
        }
    }

    /// Reads a cached verdict without counting a hit or miss and without
    /// refreshing recency — observation-only access for the bit-equality
    /// harness, which must not perturb the counters or the LRU order the
    /// serving tests assert.
    pub fn peek(&self, key: &Digest) -> Option<CachedVerdict> {
        let lru = self.inner.lock().expect("cache lock");
        lru.map.get(key).map(|&idx| lru.slab[idx].value.clone())
    }

    /// Inserts (or refreshes) a verdict, evicting least-recently-used
    /// entries until the byte budget is respected.
    pub fn insert(&self, key: Digest, value: CachedVerdict) {
        let cost = entry_bytes(value.per_model.len());
        let mut lru = self.inner.lock().expect("cache lock");
        if let Some(idx) = lru.map.get(&key).copied() {
            // Concurrent scorers of the same bytecode produce identical
            // values; refresh recency and keep one copy.
            lru.unlink(idx);
            lru.push_front(idx);
            lru.slab[idx].value = value;
            return;
        }
        if cost > self.capacity_bytes {
            return; // budget cannot hold even this one entry
        }
        while lru.bytes + cost > self.capacity_bytes {
            lru.evict_tail();
        }
        let idx = match lru.free.pop() {
            Some(idx) => {
                lru.slab[idx] = Entry {
                    key,
                    value,
                    prev: NONE,
                    next: NONE,
                };
                idx
            }
            None => {
                lru.slab.push(Entry {
                    key,
                    value,
                    prev: NONE,
                    next: NONE,
                });
                lru.slab.len() - 1
            }
        };
        lru.map.insert(key, idx);
        lru.push_front(idx);
        lru.bytes += cost;
        lru.insertions += 1;
    }

    /// Counter snapshot (see [`CacheStats`]).
    pub fn stats(&self) -> CacheStats {
        let lru = self.inner.lock().expect("cache lock");
        CacheStats {
            hits: lru.hits,
            misses: lru.misses,
            evictions: lru.evictions,
            insertions: lru.insertions,
            entries: lru.map.len() as u64,
            bytes: lru.bytes as u64,
            capacity_bytes: self.capacity_bytes as u64,
        }
    }
}

impl std::fmt::Debug for VerdictCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("VerdictCache")
            .field("entries", &stats.entries)
            .field("bytes", &stats.bytes)
            .field("capacity_bytes", &stats.capacity_bytes)
            .field("hits", &stats.hits)
            .field("misses", &stats.misses)
            .finish()
    }
}

impl Lru {
    /// Detaches `idx` from the recency list (it must be linked).
    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev == NONE {
            self.head = next;
        } else {
            self.slab[prev].next = next;
        }
        if next == NONE {
            self.tail = prev;
        } else {
            self.slab[next].prev = prev;
        }
        self.slab[idx].prev = NONE;
        self.slab[idx].next = NONE;
    }

    /// Links a detached `idx` as the most recently used entry.
    fn push_front(&mut self, idx: usize) {
        self.slab[idx].prev = NONE;
        self.slab[idx].next = self.head;
        if self.head != NONE {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NONE {
            self.tail = idx;
        }
    }

    /// Evicts the least recently used entry (list must be non-empty).
    fn evict_tail(&mut self) {
        let idx = self.tail;
        assert_ne!(idx, NONE, "evict on empty cache");
        self.unlink(idx);
        let key = self.slab[idx].key;
        self.map.remove(&key);
        self.bytes -= entry_bytes(self.slab[idx].value.per_model.len());
        // Drop the payload now; the slot is recycled by the free list.
        self.slab[idx].value.per_model = Vec::new();
        self.free.push(idx);
        self.evictions += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u8) -> Digest {
        Digest::of(&[i])
    }

    fn verdict(p: f64) -> CachedVerdict {
        CachedVerdict {
            proba: p,
            per_model: vec![p],
        }
    }

    /// A budget that fits exactly `n` single-model entries.
    fn budget(n: usize) -> usize {
        n * entry_bytes(1)
    }

    #[test]
    fn hit_returns_the_exact_bits() {
        let cache = VerdictCache::new(budget(4));
        let p = 0.123456789f64;
        cache.insert(key(1), verdict(p));
        let hit = cache.lookup(&key(1)).expect("hit");
        assert_eq!(hit.proba.to_bits(), p.to_bits());
        assert_eq!(hit.per_model[0].to_bits(), p.to_bits());
        assert!(cache.lookup(&key(2)).is_none());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_respects_recency_and_budget() {
        let cache = VerdictCache::new(budget(3));
        for i in 0..3 {
            cache.insert(key(i), verdict(f64::from(i)));
        }
        // Touch 0 so 1 becomes the LRU, then overflow.
        assert!(cache.lookup(&key(0)).is_some());
        cache.insert(key(3), verdict(3.0));
        assert!(cache.lookup(&key(1)).is_none(), "LRU entry must go");
        assert!(cache.lookup(&key(0)).is_some());
        assert!(cache.lookup(&key(2)).is_some());
        assert!(cache.lookup(&key(3)).is_some());
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 3);
        assert_eq!(stats.bytes, budget(3) as u64);
        assert!(stats.bytes <= stats.capacity_bytes);
    }

    #[test]
    fn slab_slots_are_recycled_across_many_evictions() {
        let cache = VerdictCache::new(budget(2));
        for round in 0..50u8 {
            cache.insert(key(round), verdict(f64::from(round)));
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 48);
        assert_eq!(stats.insertions, 50);
        // The two most recent entries survive.
        assert!(cache.lookup(&key(49)).is_some());
        assert!(cache.lookup(&key(48)).is_some());
        assert!(cache.lookup(&key(0)).is_none());
    }

    #[test]
    fn duplicate_insert_refreshes_without_growing() {
        let cache = VerdictCache::new(budget(2));
        cache.insert(key(1), verdict(0.25));
        cache.insert(key(2), verdict(0.5));
        cache.insert(key(1), verdict(0.25)); // refresh: 1 is now MRU
        cache.insert(key(3), verdict(0.75)); // evicts 2, not 1
        assert!(cache.lookup(&key(1)).is_some());
        assert!(cache.lookup(&key(2)).is_none());
        // 3 fresh keys inserted; the refresh of key 1 is not an insertion.
        assert_eq!(cache.stats().insertions, 3);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn oversized_budgetless_cache_never_retains() {
        let cache = VerdictCache::new(entry_bytes(1) - 1);
        cache.insert(key(1), verdict(0.5));
        assert!(cache.is_empty());
        assert!(cache.lookup(&key(1)).is_none());
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn concurrent_mixed_traffic_stays_consistent() {
        let cache = std::sync::Arc::new(VerdictCache::new(budget(16)));
        let handles: Vec<_> = (0..4u8)
            .map(|t| {
                let cache = std::sync::Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..200u8 {
                        let k = key(i % 32);
                        if let Some(v) = cache.lookup(&k) {
                            assert_eq!(v.proba, f64::from(i % 32), "thread {t}");
                        } else {
                            cache.insert(k, verdict(f64::from(i % 32)));
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker");
        }
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 4 * 200);
        assert!(stats.entries <= 16);
    }
}
