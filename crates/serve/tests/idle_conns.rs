//! The O(connections) death test: ten thousand mostly-idle JSONL
//! connections must cost O(shards + listeners) serving threads, not ten
//! thousand parked readers — and an active client must still round-trip
//! through the crowd. Linux-only: the thread count comes from
//! `/proc/self/status` and the fd budget from `setrlimit(2)`.

#![cfg(target_os = "linux")]
#![allow(deprecated)] // serve_tcp: the config-less seam the harness needs

use phishinghook_evm::keccak::to_hex;
use phishinghook_serve::{fixture, serve_tcp, Protocol, Scheduler, SchedulerOptions, TcpLimits};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};

/// This suite's probe-corpus seed (distinct per suite so per-process cache
/// state never aliases across suites).
const PROBE_SEED: u64 = 61;

#[repr(C)]
struct RLimit {
    cur: u64,
    max: u64,
}

const RLIMIT_NOFILE: i32 = 7;

extern "C" {
    fn getrlimit(resource: i32, rlim: *mut RLimit) -> i32;
    fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
}

/// Best-effort raise of the open-file budget; returns the soft limit the
/// process ended up with. The client and server ends both live in this
/// process, so each tracked connection costs two descriptors.
fn raise_nofile(want: u64) -> u64 {
    let mut limit = RLimit { cur: 0, max: 0 };
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut limit) } != 0 {
        return 1024;
    }
    if limit.cur < want {
        let raised = RLimit {
            cur: want.max(limit.cur),
            max: want.max(limit.max),
        };
        // May fail without privilege; fall back to raising within max.
        if unsafe { setrlimit(RLIMIT_NOFILE, &raised) } != 0 {
            let within = RLimit {
                cur: limit.max,
                max: limit.max,
            };
            let _ = unsafe { setrlimit(RLIMIT_NOFILE, &within) };
        }
        if unsafe { getrlimit(RLIMIT_NOFILE, &mut limit) } != 0 {
            return 1024;
        }
    }
    limit.cur
}

fn thread_count() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").expect("proc status");
    status
        .lines()
        .find_map(|line| line.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("Threads: line")
}

#[test]
fn ten_thousand_idle_connections_cost_constant_threads() {
    let soft = raise_nofile(65_536);
    // Two fds per connection (client + server end), plus slack for the
    // process's own files, the listener, and test-harness plumbing.
    let idle = 10_000.min(((soft.saturating_sub(512)) / 2) as usize);
    assert!(
        idle >= 1_000,
        "fd budget too small to mean anything: {soft}"
    );

    let opts = SchedulerOptions {
        shards: 2,
        workers: 1,
        ..SchedulerOptions::default()
    };
    let scheduler = Scheduler::new(fixture::rf_scanner(), &opts);
    let (_, codes) = fixture::probe_lines(1, PROBE_SEED);
    let request = format!("0x{}\n", to_hex(&codes[0]));

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let baseline_threads = thread_count();

    let report = std::thread::scope(|scope| {
        let scheduler = &scheduler;
        let server = scope.spawn(move || {
            serve_tcp(
                &listener,
                scheduler,
                Protocol::V1,
                TcpLimits {
                    max_conns: None,
                    accept_total: Some(idle + 1),
                },
            )
            .expect("serves")
        });

        // The idle crowd: connected, never sending, never read from.
        // Pace the ramp against the server's accept counter so the
        // listener backlog never overflows — an overflowed backlog drops
        // SYNs and stalls each retransmit for a second, which would turn
        // this test into a kernel-retry benchmark.
        let mut crowd: Vec<TcpStream> = Vec::with_capacity(idle);
        for i in 0..idle {
            match TcpStream::connect(addr) {
                Ok(stream) => crowd.push(stream),
                Err(e) => panic!("connect {i}/{idle} failed: {e}"),
            }
            if (i + 1) % 64 == 0 {
                while (scheduler.metrics_snapshot().scheduler.connections as usize) + 64 < i + 1 {
                    std::thread::yield_now();
                }
            }
        }

        // One active client round-trips through the crowd.
        let mut active = TcpStream::connect(addr).expect("active connect");
        active.write_all(request.as_bytes()).expect("send");
        active
            .shutdown(std::net::Shutdown::Write)
            .expect("half-close");
        let mut response = String::new();
        active.read_to_string(&mut response).expect("read");
        // V1 verdicts are `label\tproba` lines.
        let proba = response
            .trim()
            .split('\t')
            .nth(1)
            .and_then(|p| p.parse::<f64>().ok());
        assert!(
            proba.is_some_and(|p| (0.0..=1.0).contains(&p)),
            "no verdict through the crowd: {response}"
        );

        // The headline assertion: thread count is O(shards + listeners),
        // independent of the tracked connections. 2 shards × 1 worker +
        // 1 event loop + harness slack — 32 is orders of magnitude below
        // the 10k a thread-per-connection design would burn.
        let threads = thread_count();
        assert!(
            threads <= baseline_threads + 32,
            "{threads} threads for {idle} idle connections \
             (baseline {baseline_threads}) — thread-per-connection regression"
        );

        drop(active);
        drop(crowd); // EOF storm: the loop retires all of them
        server.join().expect("server thread")
    });

    assert_eq!(report.contracts, 1, "exactly the active client scored");
    let snap = scheduler.metrics_snapshot();
    assert_eq!(snap.scheduler.connections, (idle + 1) as u64);
    scheduler.shutdown();
}
