//! The chaos suite: deterministic fault injection across the whole
//! serving core, asserting serving invariant #5 — with a seeded
//! [`FaultPlan`](phishinghook_serve::FaultPlan) injecting worker panics,
//! chain faults and slow clients, *every submitted request gets exactly
//! one typed response and the scheduler never wedges*.
//!
//! Every fault here is seeded: a failure reproduces by rerunning the
//! test, not by rerunning it a thousand times.

use phishinghook_data::{RetryPolicy, SharedChain};
use phishinghook_evm::keccak::{to_hex, Digest};
use phishinghook_models::Scanner;
use phishinghook_serve::fault::drip;
use phishinghook_serve::{
    serve_http, shard_of, Admission, FaultConfig, Protocol, Scheduler, SchedulerOptions,
    SubmitOutcome, TcpLimits,
};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// The chaos suite's probe-corpus seed (distinct per suite so per-process
/// cache state never aliases across suites).
const PROBE_SEED: u64 = 99;

fn fitted_scanner() -> &'static Scanner {
    phishinghook_serve::fixture::rf_scanner()
}

fn probes(n: usize) -> Vec<Vec<u8>> {
    phishinghook_serve::fixture::probe_lines(n, PROBE_SEED).1
}

#[test]
fn every_submission_gets_exactly_one_typed_response_under_chaos() {
    let codes = probes(24);
    let chain = SharedChain::new();
    let mut addresses = Vec::new();
    for (i, code) in codes.iter().enumerate().take(8) {
        let mut addr = [0u8; 20];
        addr[0] = 0xC0;
        addr[19] = i as u8;
        chain.deploy(addr, code.clone());
        addresses.push(addr);
    }
    let opts = SchedulerOptions {
        batch: 4,
        workers: 2,
        queue_depth: 8,
        retry: RetryPolicy {
            max_attempts: 3,
            base_micros: 10,
            cap_micros: 50,
            seed: 9,
        },
        fault: Some(FaultConfig {
            seed: 0xC4A0_55ED,
            worker_panic_every: 5,
            chain_fail_permille: 200,
            chain_latency_micros: 50,
            ..FaultConfig::default()
        }),
        ..SchedulerOptions::default()
    };
    let scheduler = Scheduler::with_chain(fitted_scanner(), &opts, Some(chain));

    // Four concurrent clients, each mixing healthy bytecode, resolvable
    // and unresolvable addresses, and outright garbage — under lossless
    // and shedding admission both.
    let per_conn = 30usize;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|client: usize| {
                let scheduler = &scheduler;
                let codes = &codes;
                let addresses = &addresses;
                scope.spawn(move || {
                    let (mut conn, rx) = scheduler.connect(Protocol::V2);
                    for i in 0..per_conn {
                        let admission = if i % 3 == 0 {
                            Admission::Shed
                        } else {
                            Admission::Block
                        };
                        let line = match i % 5 {
                            0 => format!(
                                "{{\"id\":\"a{i}\",\"address\":\"0x{}\"}}",
                                to_hex(&addresses[(client + i) % addresses.len()])
                            ),
                            1 => "definitely not a request".to_owned(),
                            2 => format!(
                                "{{\"id\":\"m{i}\",\"address\":\"0x{}\"}}",
                                to_hex(&[0xEEu8; 20])
                            ),
                            _ => format!("0x{}", to_hex(&codes[(client * 7 + i) % codes.len()])),
                        };
                        let outcome = conn.submit(&line, admission);
                        // Every outcome — scored, cached, refused, failed —
                        // owes this connection exactly one response line.
                        assert!(
                            matches!(
                                outcome,
                                SubmitOutcome::Queued
                                    | SubmitOutcome::CacheHit
                                    | SubmitOutcome::Overloaded
                                    | SubmitOutcome::Error
                                    | SubmitOutcome::Unresolved
                            ),
                            "{outcome:?}"
                        );
                    }
                    conn.finish();
                    let responses: Vec<String> = rx.iter().collect();
                    scheduler.take_report(conn.id());
                    responses
                })
            })
            .collect();
        for handle in handles {
            let responses = handle.join().expect("client");
            assert_eq!(
                responses.len(),
                per_conn,
                "exactly one response per submission"
            );
            for line in &responses {
                let typed = line.contains("\"verdict\"")
                    || line.contains("\"error\"")
                    || line.contains("\"code\":\"overloaded\"")
                    || line.contains("\"code\":\"timeout\"")
                    || line.contains("\"code\":\"internal\"");
                assert!(typed, "untyped response: {line}");
            }
        }
    });

    let plan = scheduler.fault_plan().expect("fault plan armed");
    assert!(plan.panics_injected() > 0, "chaos run injected no panics");
    assert!(
        plan.chain_faults_injected() > 0,
        "chaos run injected no chain faults"
    );
    let snap = scheduler.metrics_snapshot();
    assert_eq!(snap.robustness.worker_panics, plan.panics_injected());
    // Shutdown returning at all is the never-wedges assertion: the queue
    // drains, the supervisors exit, no worker is stuck on a dead batch.
    let stats = scheduler.shutdown();
    assert!(stats.scheduler.scored > 0, "nothing was scored");
}

#[test]
fn shard_targeted_panics_blast_only_that_lane() {
    // A seeded FaultPlan panicking *every* batch on shard 2 of 4: requests
    // routed to shard 2 answer typed internal errors, every other lane
    // keeps answering verdicts, and the blast radius never crosses lanes.
    const SHARDS: usize = 4;
    const TARGET: usize = 2;
    let opts = SchedulerOptions {
        shards: SHARDS,
        batch: 1,
        workers: 1,
        cache_bytes: 0,
        fault: Some(FaultConfig {
            worker_panic_every: 1,
            worker_panic_shard: Some(TARGET),
            ..FaultConfig::default()
        }),
        ..SchedulerOptions::default()
    };
    let scheduler = Scheduler::new(fitted_scanner(), &opts);
    let codes = probes(32);
    let expect_shard: Vec<usize> = codes
        .iter()
        .map(|code| shard_of(&Digest::of(code), SHARDS))
        .collect();
    assert!(
        expect_shard.contains(&TARGET),
        "probe corpus never routes to the target shard"
    );
    assert!(
        expect_shard.iter().any(|&s| s != TARGET),
        "probe corpus only routes to the target shard"
    );

    let (mut conn, rx) = scheduler.connect(Protocol::V2);
    for code in &codes {
        let outcome = conn.submit(&format!("0x{}", to_hex(code)), Admission::Block);
        assert_eq!(outcome, SubmitOutcome::Queued, "{outcome:?}");
    }
    conn.finish();
    let responses: Vec<String> = rx.iter().collect();
    assert_eq!(responses.len(), codes.len());
    for (i, line) in responses.iter().enumerate() {
        if expect_shard[i] == TARGET {
            assert!(
                line.contains("\"code\":\"internal\""),
                "shard {TARGET} probe {i} should have panicked: {line}"
            );
        } else {
            assert!(
                line.contains("\"verdict\""),
                "shard {} probe {i} caught another lane's panic: {line}",
                expect_shard[i]
            );
        }
    }

    let plan = scheduler.fault_plan().expect("fault plan armed");
    let target_jobs = expect_shard.iter().filter(|&&s| s == TARGET).count() as u64;
    assert_eq!(plan.panics_injected(), target_jobs);
    assert_eq!(
        scheduler.metrics_snapshot().robustness.worker_panics,
        target_jobs
    );
    scheduler.shutdown();
}

#[test]
fn graceful_shutdown_drains_every_shard_within_the_drain_budget() {
    // Load all four lanes, then shut down with a 2s drain budget: every
    // admitted request still answers (verdict or typed timeout — nothing
    // vanishes), and the drain completes promptly across all N queues.
    const SHARDS: usize = 4;
    let opts = SchedulerOptions {
        shards: SHARDS,
        batch: 4,
        workers: 1,
        queue_depth: 64,
        cache_bytes: 0,
        drain_ms: 2_000,
        ..SchedulerOptions::default()
    };
    let scheduler = Scheduler::new(fitted_scanner(), &opts);
    assert_eq!(scheduler.shards(), SHARDS);
    let codes = probes(40);
    let (mut conn, rx) = scheduler.connect(Protocol::V2);
    for code in &codes {
        assert_eq!(
            conn.submit(&format!("0x{}", to_hex(code)), Admission::Block),
            SubmitOutcome::Queued
        );
    }
    conn.finish();
    scheduler.begin_drain();
    let t0 = Instant::now();
    let responses: Vec<String> = rx.iter().collect();
    let stats = scheduler.shutdown();
    let elapsed = t0.elapsed();
    assert_eq!(responses.len(), codes.len(), "a drained request vanished");
    for line in &responses {
        assert!(
            line.contains("\"verdict\"") || line.contains("\"code\":\"timeout\""),
            "untyped drain response: {line}"
        );
    }
    assert_eq!(stats.scheduler.queue_depth, 0, "a shard queue kept jobs");
    // Generous bound: the 2s budget plus scheduling slack, far below a
    // wedged-lane hang.
    assert!(elapsed < Duration::from_secs(10), "drain took {elapsed:?}");
}

#[test]
fn slow_fragmented_and_vanishing_clients_do_not_wedge_the_gateway() {
    let scheduler = Scheduler::new(fitted_scanner(), &SchedulerOptions::default());
    let codes = probes(1);
    let body = format!("{{\"bytecode\":\"0x{}\"}}", to_hex(&codes[0]));
    let request = format!(
        "POST /predict HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    std::thread::scope(|scope| {
        let scheduler = &scheduler;
        let server = scope.spawn(move || {
            serve_http(
                &listener,
                scheduler,
                TcpLimits {
                    max_conns: None,
                    accept_total: Some(3),
                },
            )
            .expect("serves")
        });

        // A slow client dribbling 3-byte fragments still gets its verdict.
        let mut stream = TcpStream::connect(addr).expect("connect");
        drip(
            &mut stream,
            request.as_bytes(),
            3,
            Duration::from_millis(1),
            None,
        )
        .expect("drip");
        stream
            .shutdown(std::net::Shutdown::Write)
            .expect("half-close");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.1 200 "), "{response}");
        assert!(response.contains("\"verdict\""), "{response}");

        // A client that vanishes mid-request (half the bytes, then gone)
        // must not wedge the accept loop...
        let mut stream = TcpStream::connect(addr).expect("connect");
        drip(
            &mut stream,
            request.as_bytes(),
            7,
            Duration::ZERO,
            Some(request.len() / 2),
        )
        .expect("drip");
        drop(stream);

        // ...so the next, healthy client is still served.
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(request.as_bytes()).expect("send");
        stream
            .shutdown(std::net::Shutdown::Write)
            .expect("half-close");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.1 200 "), "{response}");

        server.join().expect("server thread");
    });
    scheduler.shutdown();
}
