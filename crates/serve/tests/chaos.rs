//! The chaos suite: deterministic fault injection across the whole
//! serving core, asserting serving invariant #5 — with a seeded
//! [`FaultPlan`](phishinghook_serve::FaultPlan) injecting worker panics,
//! chain faults and slow clients, *every submitted request gets exactly
//! one typed response and the scheduler never wedges*.
//!
//! Every fault here is seeded: a failure reproduces by rerunning the
//! test, not by rerunning it a thousand times.

use phishinghook_data::{Corpus, CorpusConfig, RetryPolicy, SharedChain};
use phishinghook_evm::keccak::to_hex;
use phishinghook_models::{Detector, DetectorRegistry, Scanner};
use phishinghook_serve::fault::drip;
use phishinghook_serve::{
    serve_http, Admission, FaultConfig, Protocol, Scheduler, SchedulerOptions, SubmitOutcome,
    TcpLimits,
};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

fn fitted_scanner() -> Scanner {
    let corpus = Corpus::generate(&CorpusConfig {
        n_contracts: 80,
        seed: 5,
        ..Default::default()
    });
    let (codes, labels) = corpus.as_dataset();
    let mut det = DetectorRegistry::global()
        .build_str("rf:seed=7", 7)
        .expect("valid spec");
    det.fit(&codes, &labels);
    Scanner::new(det).expect("fitted")
}

fn probes(n: usize) -> Vec<Vec<u8>> {
    Corpus::generate(&CorpusConfig {
        n_contracts: n,
        seed: 99,
        ..Default::default()
    })
    .records
    .into_iter()
    .map(|r| r.bytecode)
    .collect()
}

#[test]
fn every_submission_gets_exactly_one_typed_response_under_chaos() {
    let codes = probes(24);
    let chain = SharedChain::new();
    let mut addresses = Vec::new();
    for (i, code) in codes.iter().enumerate().take(8) {
        let mut addr = [0u8; 20];
        addr[0] = 0xC0;
        addr[19] = i as u8;
        chain.deploy(addr, code.clone());
        addresses.push(addr);
    }
    let opts = SchedulerOptions {
        batch: 4,
        workers: 2,
        queue_depth: 8,
        retry: RetryPolicy {
            max_attempts: 3,
            base_micros: 10,
            cap_micros: 50,
            seed: 9,
        },
        fault: Some(FaultConfig {
            seed: 0xC4A0_55ED,
            worker_panic_every: 5,
            chain_fail_permille: 200,
            chain_latency_micros: 50,
        }),
        ..SchedulerOptions::default()
    };
    let scanner = fitted_scanner();
    let scheduler = Scheduler::with_chain(&scanner, &opts, Some(chain));

    // Four concurrent clients, each mixing healthy bytecode, resolvable
    // and unresolvable addresses, and outright garbage — under lossless
    // and shedding admission both.
    let per_conn = 30usize;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|client: usize| {
                let scheduler = &scheduler;
                let codes = &codes;
                let addresses = &addresses;
                scope.spawn(move || {
                    let (mut conn, rx) = scheduler.connect(Protocol::V2);
                    for i in 0..per_conn {
                        let admission = if i % 3 == 0 {
                            Admission::Shed
                        } else {
                            Admission::Block
                        };
                        let line = match i % 5 {
                            0 => format!(
                                "{{\"id\":\"a{i}\",\"address\":\"0x{}\"}}",
                                to_hex(&addresses[(client + i) % addresses.len()])
                            ),
                            1 => "definitely not a request".to_owned(),
                            2 => format!(
                                "{{\"id\":\"m{i}\",\"address\":\"0x{}\"}}",
                                to_hex(&[0xEEu8; 20])
                            ),
                            _ => format!("0x{}", to_hex(&codes[(client * 7 + i) % codes.len()])),
                        };
                        let outcome = conn.submit(&line, admission);
                        // Every outcome — scored, cached, refused, failed —
                        // owes this connection exactly one response line.
                        assert!(
                            matches!(
                                outcome,
                                SubmitOutcome::Queued
                                    | SubmitOutcome::CacheHit
                                    | SubmitOutcome::Overloaded
                                    | SubmitOutcome::Error
                                    | SubmitOutcome::Unresolved
                            ),
                            "{outcome:?}"
                        );
                    }
                    conn.finish();
                    let responses: Vec<String> = rx.iter().collect();
                    scheduler.take_report(conn.id());
                    responses
                })
            })
            .collect();
        for handle in handles {
            let responses = handle.join().expect("client");
            assert_eq!(
                responses.len(),
                per_conn,
                "exactly one response per submission"
            );
            for line in &responses {
                let typed = line.contains("\"verdict\"")
                    || line.contains("\"error\"")
                    || line.contains("\"code\":\"overloaded\"")
                    || line.contains("\"code\":\"timeout\"")
                    || line.contains("\"code\":\"internal\"");
                assert!(typed, "untyped response: {line}");
            }
        }
    });

    let plan = scheduler.fault_plan().expect("fault plan armed");
    assert!(plan.panics_injected() > 0, "chaos run injected no panics");
    assert!(
        plan.chain_faults_injected() > 0,
        "chaos run injected no chain faults"
    );
    let snap = scheduler.metrics_snapshot();
    assert_eq!(snap.robustness.worker_panics, plan.panics_injected());
    // Shutdown returning at all is the never-wedges assertion: the queue
    // drains, the supervisors exit, no worker is stuck on a dead batch.
    let stats = scheduler.shutdown();
    assert!(stats.scheduler.scored > 0, "nothing was scored");
}

#[test]
fn slow_fragmented_and_vanishing_clients_do_not_wedge_the_gateway() {
    let scanner = fitted_scanner();
    let scheduler = Scheduler::new(&scanner, &SchedulerOptions::default());
    let codes = probes(1);
    let body = format!("{{\"bytecode\":\"0x{}\"}}", to_hex(&codes[0]));
    let request = format!(
        "POST /predict HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    std::thread::scope(|scope| {
        let scheduler = &scheduler;
        let server = scope.spawn(move || {
            serve_http(
                &listener,
                scheduler,
                TcpLimits {
                    max_conns: None,
                    accept_total: Some(3),
                },
            )
            .expect("serves")
        });

        // A slow client dribbling 3-byte fragments still gets its verdict.
        let mut stream = TcpStream::connect(addr).expect("connect");
        drip(
            &mut stream,
            request.as_bytes(),
            3,
            Duration::from_millis(1),
            None,
        )
        .expect("drip");
        stream
            .shutdown(std::net::Shutdown::Write)
            .expect("half-close");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.1 200 "), "{response}");
        assert!(response.contains("\"verdict\""), "{response}");

        // A client that vanishes mid-request (half the bytes, then gone)
        // must not wedge the accept loop...
        let mut stream = TcpStream::connect(addr).expect("connect");
        drip(
            &mut stream,
            request.as_bytes(),
            7,
            Duration::ZERO,
            Some(request.len() / 2),
        )
        .expect("drip");
        drop(stream);

        // ...so the next, healthy client is still served.
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(request.as_bytes()).expect("send");
        stream
            .shutdown(std::net::Shutdown::Write)
            .expect("half-close");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.1 200 "), "{response}");

        server.join().expect("server thread");
    });
    scheduler.shutdown();
}
