//! The bit-equality harness behind serving invariant #6: sharding the
//! scheduler is a pure layout decision. Scoring is a deterministic
//! function of bytecode, so for **any** shard count the served verdicts —
//! rendered lines and cached `f64`s alike — must be `f64::to_bits`-
//! identical to the 1-shard path, and to scoring the bytecode directly.

use phishinghook_evm::keccak::Digest;
use phishinghook_serve::{fixture, serve_lines, Protocol, Scheduler, SchedulerOptions};

/// This suite's probe-corpus seed (distinct per suite so per-process cache
/// state never aliases across suites).
const PROBE_SEED: u64 = 83;

fn opts(shards: usize) -> SchedulerOptions {
    SchedulerOptions {
        shards,
        workers: 2,
        batch: 4,
        ..SchedulerOptions::default()
    }
}

#[test]
fn verdicts_are_bit_identical_across_shard_layouts() {
    let (input, codes) = fixture::probe_lines(24, PROBE_SEED);
    let scanner = fixture::rf_scanner();

    // The ground truth: score every probe directly, no serving layer.
    let refs: Vec<&[u8]> = codes.iter().map(Vec::as_slice).collect();
    let direct = scanner.worker().score_batch(&refs);

    let mut baseline_text: Option<String> = None;
    let mut baseline_bits: Option<Vec<(u64, Vec<u64>)>> = None;
    for shards in [1usize, 2, 3, 4, 7] {
        let scheduler = Scheduler::new(scanner, &opts(shards));
        let mut out = Vec::new();
        serve_lines(&scheduler, Protocol::V2, input.as_bytes(), &mut out).expect("serves");
        let text = String::from_utf8(out).expect("utf8");

        // Rendered responses are identical to the 1-shard layout, line for
        // line (per-connection ordering holds under every layout).
        match &baseline_text {
            None => baseline_text = Some(text),
            Some(reference) => {
                assert_eq!(&text, reference, "{shards}-shard rendering diverged");
            }
        }

        // The cached f64s — read without perturbing counters or recency —
        // carry the exact bits the direct scorer produced.
        let bits: Vec<(u64, Vec<u64>)> = codes
            .iter()
            .map(|code| {
                let verdict = scheduler
                    .cached_verdict(&Digest::of(code))
                    .expect("every scored probe is cached");
                (
                    verdict.proba.to_bits(),
                    verdict.per_model.iter().map(|p| p.to_bits()).collect(),
                )
            })
            .collect();
        for (i, ((proba_bits, _), expected)) in bits.iter().zip(&direct).enumerate() {
            assert_eq!(
                *proba_bits,
                expected.to_bits(),
                "{shards}-shard probe {i}: cached {} != direct {expected}",
                f64::from_bits(*proba_bits),
            );
        }
        match &baseline_bits {
            None => baseline_bits = Some(bits),
            Some(reference) => {
                assert_eq!(
                    &bits, reference,
                    "{shards}-shard cached bits diverged from 1-shard"
                );
            }
        }
        scheduler.shutdown();
    }
}

#[test]
fn ensemble_per_model_rows_survive_resharding_bit_exactly() {
    // Same invariant through the 2-member ensemble: per-model probability
    // vectors (not just the vote) must be layout-independent.
    let (input, codes) = fixture::probe_lines(8, PROBE_SEED + 1);
    let scanner = fixture::ensemble_scanner();
    let mut baseline: Option<Vec<Vec<u64>>> = None;
    for shards in [1usize, 4] {
        let scheduler = Scheduler::new(scanner, &opts(shards));
        let mut out = Vec::new();
        serve_lines(&scheduler, Protocol::V2, input.as_bytes(), &mut out).expect("serves");
        let bits: Vec<Vec<u64>> = codes
            .iter()
            .map(|code| {
                scheduler
                    .cached_verdict(&Digest::of(code))
                    .expect("cached")
                    .per_model
                    .iter()
                    .map(|p| p.to_bits())
                    .collect()
            })
            .collect();
        assert!(bits.iter().all(|row| row.len() == 2), "2 members per row");
        match &baseline {
            None => baseline = Some(bits),
            Some(reference) => assert_eq!(&bits, reference),
        }
        scheduler.shutdown();
    }
}
