//! Concurrency stress for the sharded lanes' building blocks: the bounded
//! queue must neither lose nor duplicate items at racy capacities, the
//! per-shard cache counters must stay arithmetically consistent under
//! contention, and the scheduler's aggregate stats must always equal the
//! sum of its per-shard stats.

use phishinghook_evm::keccak::Digest;
use phishinghook_serve::{
    entry_bytes, fixture, serve_lines, BoundedQueue, CachedVerdict, Protocol, Scheduler,
    SchedulerOptions, VerdictCache,
};
use std::sync::Mutex;

/// This suite's probe-corpus seed (distinct per suite so per-process cache
/// state never aliases across suites).
const PROBE_SEED: u64 = 71;

#[test]
fn racy_queue_capacities_never_lose_or_duplicate_items() {
    const PRODUCERS: u64 = 4;
    const CONSUMERS: usize = 3;
    const PER_PRODUCER: u64 = 2_000;
    // Capacity 1 serialises every handoff; capacity == producer count sits
    // right on the full/empty boundary both sides race across.
    for capacity in [1usize, PRODUCERS as usize] {
        let queue = BoundedQueue::new(capacity);
        let collected = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            let producers: Vec<_> = (0..PRODUCERS)
                .map(|p| {
                    let queue = &queue;
                    scope.spawn(move || {
                        for seq in (p * PER_PRODUCER)..((p + 1) * PER_PRODUCER) {
                            queue.push(seq).expect("queue closed under producers");
                        }
                    })
                })
                .collect();
            for _ in 0..CONSUMERS {
                let queue = &queue;
                let collected = &collected;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    while let Some(seq) = queue.pop() {
                        local.push(seq);
                    }
                    collected.lock().expect("collector").extend(local);
                });
            }
            // Close only after every producer has pushed its range: the
            // consumers then drain the remainder and see the shutdown
            // sentinel (pop -> None), ending the scope.
            for producer in producers {
                producer.join().expect("producer");
            }
            queue.close();
        });
        let mut total = collected.into_inner().expect("collector");
        total.sort_unstable();
        let expected: Vec<u64> = (0..PRODUCERS * PER_PRODUCER).collect();
        assert_eq!(
            total, expected,
            "capacity {capacity}: sequence numbers lost or duplicated"
        );
    }
}

#[test]
fn cache_counters_stay_consistent_under_contention() {
    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 2_000;
    // Room for ~8 single-model entries: every thread forces evictions.
    let cache = VerdictCache::new(entry_bytes(1) * 8);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let cache = &cache;
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    let key = Digest::of(&(t * PER_THREAD + i).to_le_bytes());
                    cache.insert(
                        key,
                        CachedVerdict {
                            proba: 0.5,
                            per_model: vec![0.5],
                        },
                    );
                    // Interleave reads racing the other threads' evictions.
                    let probe = Digest::of(&(i % 64).to_le_bytes());
                    let _ = cache.lookup(&probe);
                }
            });
        }
    });
    let stats = cache.stats();
    let inserted = THREADS * PER_THREAD;
    assert_eq!(stats.insertions, inserted, "an insert was dropped");
    assert!(
        stats.evictions <= stats.insertions,
        "more evictions ({}) than insertions ({})",
        stats.evictions,
        stats.insertions
    );
    // Every key was unique, so residency is exactly the difference.
    assert_eq!(stats.entries, inserted - stats.evictions);
    assert_eq!(stats.entries as usize, cache.len());
    assert!(
        stats.bytes <= stats.capacity_bytes,
        "byte budget exceeded: {} > {}",
        stats.bytes,
        stats.capacity_bytes
    );
    assert_eq!(
        stats.hits + stats.misses,
        THREADS * PER_THREAD,
        "a lookup went uncounted"
    );
}

#[test]
fn aggregate_stats_are_the_sum_of_shard_stats() {
    const SHARDS: usize = 4;
    let opts = SchedulerOptions {
        shards: SHARDS,
        workers: 1,
        queue_depth: 64,
        ..SchedulerOptions::default()
    };
    let scheduler = Scheduler::new(fixture::rf_scanner(), &opts);
    let (input, _) = fixture::probe_lines(20, PROBE_SEED);
    // Four concurrent sessions over the same stream: lanes fill and drain
    // while other threads snapshot.
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let scheduler = &scheduler;
            let input = input.as_bytes();
            scope.spawn(move || {
                let mut out = Vec::new();
                serve_lines(scheduler, Protocol::V2, input, &mut out).expect("serves");
            });
        }
        // Racy mid-flight snapshots: per-shard capacities must always sum
        // to the configured aggregate, whatever the queues hold.
        for _ in 0..50 {
            let stats = scheduler.shard_stats();
            assert_eq!(stats.len(), SHARDS);
            let capacity: u64 = stats.iter().map(|s| s.queue_capacity).sum();
            assert_eq!(capacity, scheduler.metrics_snapshot().queue_capacity);
        }
    });
    let snap = scheduler.metrics_snapshot();
    let shard_stats = scheduler.shard_stats();
    let cache = snap.cache.expect("cache on");
    let summed = shard_stats
        .iter()
        .map(|s| s.cache.expect("per-shard cache on"))
        .fold((0u64, 0u64, 0u64, 0u64), |acc, c| {
            (
                acc.0 + c.hits,
                acc.1 + c.misses,
                acc.2 + c.insertions,
                acc.3 + c.entries,
            )
        });
    assert_eq!(cache.hits, summed.0);
    assert_eq!(cache.misses, summed.1);
    assert_eq!(cache.insertions, summed.2);
    assert_eq!(cache.entries, summed.3);
    let depth: u64 = shard_stats.iter().map(|s| s.queue_depth).sum();
    assert_eq!(depth, 0, "all lanes drained");
    scheduler.shutdown();
}
