//! Property coverage of the shard router: [`shard_of`] must stay in
//! range, be a pure function of the digest, and spread real keccak
//! digests near-uniformly — and the routing must compose with the
//! per-shard caches so a repeated digest always lands on the shard that
//! cached it.

use phishinghook_evm::keccak::Digest;
use phishinghook_serve::{fixture, serve_lines, shard_of, Protocol, Scheduler, SchedulerOptions};
use proptest::prelude::*;

/// This suite's probe-corpus seed (distinct per suite so per-process cache
/// state never aliases across suites).
const PROBE_SEED: u64 = 77;

proptest! {
    #[test]
    fn routing_is_in_range_and_stable(
        code in proptest::collection::vec(any::<u8>(), 0..256),
        n in 1usize..=8,
    ) {
        let digest = Digest::of(&code);
        let shard = shard_of(&digest, n);
        prop_assert!(shard < n, "shard {shard} out of range for n={n}");
        // Pure: the same digest routes to the same shard on every call.
        prop_assert_eq!(shard, shard_of(&digest, n));
        // Degenerate layouts collapse to lane 0.
        prop_assert_eq!(shard_of(&digest, 1), 0);
        prop_assert_eq!(shard_of(&digest, 0), 0);
    }
}

#[test]
fn routing_is_near_uniform_over_keccak_digests() {
    // 10k distinct keccak digests per layout; a chi-square statistic over
    // the empirical shard counts must stay far below the df=n-1 critical
    // value (24.3 at p=0.001 for df=7 — the bound is generous on purpose:
    // this guards against a broken prefix extraction, not keccak quality).
    const SAMPLES: usize = 10_000;
    for n in [2usize, 4, 8] {
        let mut counts = vec![0u64; n];
        for i in 0..SAMPLES {
            let digest = Digest::of(&(i as u64).to_le_bytes());
            counts[shard_of(&digest, n)] += 1;
        }
        let expected = SAMPLES as f64 / n as f64;
        let chi2: f64 = counts
            .iter()
            .map(|&observed| {
                let d = observed as f64 - expected;
                d * d / expected
            })
            .sum();
        assert!(
            chi2 < 40.0,
            "n={n}: chi-square {chi2:.2} over counts {counts:?}"
        );
        assert!(
            counts.iter().all(|&c| c > 0),
            "n={n}: a shard never drew a digest: {counts:?}"
        );
    }
}

#[test]
fn same_digest_lands_on_the_same_shard_and_hits_its_cache() {
    // End to end on a 4-shard scheduler: pass one populates exactly the
    // caches the router chose; pass two hits every one of them. The
    // per-shard expected counts are recomputed here from the same digests
    // the scheduler routes on.
    const SHARDS: usize = 4;
    let (input, codes) = fixture::probe_lines(16, PROBE_SEED);
    let mut unique: Vec<Digest> = Vec::new();
    for code in &codes {
        let digest = Digest::of(code);
        if !unique.iter().any(|d| d.0 == digest.0) {
            unique.push(digest);
        }
    }
    assert_eq!(
        unique.len(),
        codes.len(),
        "probe corpus must be duplicate-free"
    );
    let mut expected_per_shard = [0u64; SHARDS];
    for digest in &unique {
        expected_per_shard[shard_of(digest, SHARDS)] += 1;
    }

    let opts = SchedulerOptions {
        shards: SHARDS,
        workers: 1,
        ..SchedulerOptions::default()
    };
    let scheduler = Scheduler::new(fixture::rf_scanner(), &opts);
    let mut out = Vec::new();
    let cold = serve_lines(&scheduler, Protocol::V2, input.as_bytes(), &mut out).expect("serves");
    assert_eq!(cold.contracts, codes.len() as u64);
    assert_eq!(cold.cache_hits, 0);

    let stats = scheduler.shard_stats();
    assert_eq!(stats.len(), SHARDS);
    for (stat, &expected) in stats.iter().zip(&expected_per_shard) {
        let cache = stat.cache.expect("cache on");
        assert_eq!(
            cache.insertions, expected,
            "shard {} cached a different lane's work",
            stat.shard
        );
        assert_eq!(cache.hits, 0);
    }

    let mut replay = Vec::new();
    let hot = serve_lines(&scheduler, Protocol::V2, input.as_bytes(), &mut replay).expect("serves");
    assert_eq!(
        hot.cache_hits,
        codes.len() as u64,
        "a digest missed its own shard"
    );
    assert_eq!(out, replay, "cache hits must replay identical bytes");
    for (stat, &expected) in scheduler.shard_stats().iter().zip(&expected_per_shard) {
        let cache = stat.cache.expect("cache on");
        assert_eq!(cache.hits, expected, "shard {} hit count", stat.shard);
        assert_eq!(cache.insertions, expected, "pass two must insert nothing");
    }
    scheduler.shutdown();
}
