//! SCSGuard's n-gram encoding (paper §IV-B).
//!
//! "Each hexadecimal string within the bytecode is read as a bigram
//! (sequences of 6 characters). These bigrams are numerically encoded to
//! create a vocabulary (i.e., a list of integers), and the sequences are
//! padded to uniform lengths…" — six hex characters are three raw bytes, so
//! the unit is a 3-byte chunk.

use std::collections::HashMap;

/// Reserved id for padding.
pub const PAD: usize = 0;
/// Reserved id for out-of-vocabulary chunks.
pub const UNK: usize = 1;

/// Vocabulary over 3-byte bytecode chunks, fitted on the training set.
///
/// Chunk keys carry a fourth length-tag byte: a trailing partial chunk is
/// still zero-padded to 3 bytes (the paper's padded-length semantics are
/// preserved — sequences stay `⌈n/3⌉` chunks long), but the tag makes a
/// padded tail like `[x, 0, 0]·len 1` a *distinct* vocabulary entry from a
/// real `[x, 0, 0]·len 3` chunk, so the two can never collide.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BigramVocab {
    ids: HashMap<[u8; 4], usize>,
    max_len: usize,
}

impl BigramVocab {
    /// Builds a vocabulary of the `max_vocab` most frequent chunks and
    /// fixes the padded sequence length to `max_len`.
    pub fn fit(train: &[&[u8]], max_vocab: usize, max_len: usize) -> Self {
        let mut counts: HashMap<[u8; 4], u64> = HashMap::new();
        for code in train {
            for chunk in Self::chunks(code) {
                *counts.entry(chunk).or_default() += 1;
            }
        }
        let mut by_freq: Vec<([u8; 4], u64)> = counts.into_iter().collect();
        by_freq.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let ids = by_freq
            .into_iter()
            .take(max_vocab.saturating_sub(2))
            .enumerate()
            .map(|(i, (chunk, _))| (chunk, i + 2)) // 0 = PAD, 1 = UNK
            .collect();
        BigramVocab { ids, max_len }
    }

    /// Zero-padded 3-byte chunks with a length tag in the fourth byte.
    fn chunks(code: &[u8]) -> impl Iterator<Item = [u8; 4]> + '_ {
        code.chunks(3).map(|c| {
            let mut chunk = [0u8; 4];
            chunk[..c.len()].copy_from_slice(c);
            chunk[3] = c.len() as u8;
            chunk
        })
    }

    /// Vocabulary size including the two reserved ids.
    pub fn len(&self) -> usize {
        self.ids.len() + 2
    }

    /// `true` when only the reserved ids exist.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Padded/truncated id sequence for one bytecode.
    pub fn encode(&self, code: &[u8]) -> Vec<usize> {
        let mut out: Vec<usize> = Self::chunks(code)
            .take(self.max_len)
            .map(|chunk| self.ids.get(&chunk).copied().unwrap_or(UNK))
            .collect();
        out.resize(self.max_len, PAD);
        out
    }
}

// --- Persistence -----------------------------------------------------------

use phishinghook_persist::{PersistError, Reader, Restore, Snapshot, Writer};

impl Snapshot for BigramVocab {
    fn snapshot(&self, w: &mut Writer) {
        w.put_usize(self.max_len);
        // HashMap iteration order is nondeterministic; sort by chunk key so
        // equal vocabularies produce byte-identical snapshots.
        let mut entries: Vec<(&[u8; 4], usize)> = self.ids.iter().map(|(k, &v)| (k, v)).collect();
        entries.sort_unstable_by_key(|(k, _)| **k);
        w.put_usize(entries.len());
        for (chunk, id) in entries {
            w.put_raw(chunk);
            w.put_usize(id);
        }
    }
}

impl Restore for BigramVocab {
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let max_len = r.take_usize()?;
        let n = r.take_len(12)?; // 4 key bytes + 8 id bytes per entry
        let mut ids = HashMap::with_capacity(n);
        for _ in 0..n {
            let raw = r.take_raw(4)?;
            let chunk = [raw[0], raw[1], raw[2], raw[3]];
            let id = r.take_usize()?;
            if id < 2 {
                return Err(PersistError::Malformed(format!(
                    "content chunk {chunk:?} mapped to reserved id {id}"
                )));
            }
            if ids.insert(chunk, id).is_some() {
                return Err(PersistError::Malformed(format!(
                    "duplicate vocabulary chunk {chunk:?}"
                )));
            }
        }
        Ok(BigramVocab { ids, max_len })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn reserved_ids_are_stable() {
        let vocab = BigramVocab::fit(&[&[1, 2, 3, 4, 5, 6]], 100, 4);
        let seq = vocab.encode(&[1, 2, 3]);
        assert!(seq[0] >= 2, "content ids start at 2");
        assert_eq!(seq[1], PAD);
    }

    #[test]
    fn oov_maps_to_unk() {
        let vocab = BigramVocab::fit(&[&[1, 2, 3]], 100, 2);
        let seq = vocab.encode(&[9, 9, 9]);
        assert_eq!(seq[0], UNK);
    }

    #[test]
    fn vocab_caps_at_max() {
        // 10 distinct chunks but max_vocab 5 → 3 content ids + PAD + UNK.
        let code: Vec<u8> = (0..30).collect();
        let vocab = BigramVocab::fit(&[code.as_slice()], 5, 10);
        assert_eq!(vocab.len(), 5);
    }

    #[test]
    fn frequent_chunks_win_vocabulary_slots() {
        // AAA appears 3×, BBB once; with room for one content id, AAA wins.
        let train: Vec<u8> = vec![0xA, 0xA, 0xA, 0xA, 0xA, 0xA, 0xA, 0xA, 0xA, 0xB, 0xB, 0xB];
        let vocab = BigramVocab::fit(&[train.as_slice()], 3, 4);
        assert_eq!(vocab.encode(&[0xA, 0xA, 0xA])[0], 2);
        assert_eq!(vocab.encode(&[0xB, 0xB, 0xB])[0], UNK);
    }

    #[test]
    fn tail_chunk_is_distinct_from_real_zero_suffixed_chunk() {
        // A 2-byte tail padded to [1, 2, 0] must NOT collide with a real
        // 3-byte chunk [1, 2, 0]: the length tag keeps them distinct.
        let vocab = BigramVocab::fit(&[&[1, 2]], 10, 2);
        assert_eq!(vocab.encode(&[1, 2])[0], 2); // same tail re-encodes
        assert_eq!(vocab.encode(&[1, 2, 0])[0], UNK); // full chunk is OOV

        // With both shapes in training they get separate vocabulary ids.
        let both = BigramVocab::fit(&[&[1, 2, 0, 1, 2]], 10, 4);
        let full = both.encode(&[1, 2, 0])[0];
        let tail = both.encode(&[1, 2])[0];
        assert!(full >= 2 && tail >= 2);
        assert_ne!(full, tail);
    }

    #[test]
    fn padded_length_semantics_are_preserved() {
        // The paper's padding rule is untouched: a 4-byte code is still two
        // chunks, and sequences are still padded/truncated to max_len.
        let code: &[u8] = &[9, 9, 9, 7];
        let vocab = BigramVocab::fit(&[code], 10, 3);
        let seq = vocab.encode(code);
        assert_eq!(seq.len(), 3);
        assert!(seq[0] >= 2 && seq[1] >= 2);
        assert_eq!(seq[2], PAD);
    }

    #[test]
    fn snapshot_round_trip_is_identity_and_deterministic() {
        use phishinghook_persist::{from_envelope, to_envelope};
        let code: Vec<u8> = (0..60).collect();
        let vocab = BigramVocab::fit(&[code.as_slice()], 16, 8);
        let bytes = to_envelope("vocab", &vocab);
        // HashMap order must not leak into the encoding.
        assert_eq!(bytes, to_envelope("vocab", &vocab.clone()));
        let back: BigramVocab = from_envelope("vocab", &bytes).expect("round-trips");
        assert_eq!(back, vocab);
        assert_eq!(back.encode(&code), vocab.encode(&code));
    }

    proptest! {
        #[test]
        fn encoded_length_is_fixed(code in proptest::collection::vec(any::<u8>(), 0..200), max_len in 1usize..64) {
            let vocab = BigramVocab::fit(&[code.as_slice()], 50, max_len);
            prop_assert_eq!(vocab.encode(&code).len(), max_len);
        }

        #[test]
        fn ids_are_within_vocab(code in proptest::collection::vec(any::<u8>(), 0..200)) {
            let vocab = BigramVocab::fit(&[code.as_slice()], 20, 16);
            for id in vocab.encode(&code) {
                prop_assert!(id < vocab.len());
            }
        }
    }
}
