//! Opcode-occurrence histograms — the HSC feature (paper §IV-B).
//!
//! "For each contract bytecode, a histogram of the occurrences of opcodes is
//! created. It builds a vector of length equal to the number of unique
//! opcodes inside the training set. The vector is directly served as input
//! (i.e., without normalized nor standardized steps)…"

use phishinghook_evm::disasm::disassemble;
use phishinghook_ml::Matrix;
use std::collections::HashMap;

/// Maps opcode mnemonics to histogram columns. The vocabulary is fixed at
/// fit time from the *training* bytecodes only (mnemonics never seen in
/// training are ignored at transform time, matching the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramExtractor {
    columns: Vec<&'static str>,
    index: HashMap<&'static str, usize>,
}

impl HistogramExtractor {
    /// Builds the vocabulary from training bytecodes.
    pub fn fit(train: &[&[u8]]) -> Self {
        let mut index = HashMap::new();
        let mut columns = Vec::new();
        for code in train {
            for ins in disassemble(code) {
                let m = ins.mnemonic();
                if !index.contains_key(m) {
                    index.insert(m, columns.len());
                    columns.push(m);
                }
            }
        }
        HistogramExtractor { columns, index }
    }

    /// The histogram column names, in column order.
    pub fn columns(&self) -> &[&'static str] {
        &self.columns
    }

    /// Number of features (unique training-set opcodes).
    pub fn n_features(&self) -> usize {
        self.columns.len()
    }

    /// Histogram of one bytecode (raw counts, unnormalized).
    pub fn transform_one(&self, code: &[u8]) -> Vec<f64> {
        let mut row = vec![0.0; self.columns.len()];
        for ins in disassemble(code) {
            if let Some(&j) = self.index.get(ins.mnemonic()) {
                row[j] += 1.0;
            }
        }
        row
    }

    /// Histograms of many bytecodes as a feature matrix.
    pub fn transform(&self, codes: &[&[u8]]) -> Matrix {
        let rows: Vec<Vec<f64>> = codes.iter().map(|c| self.transform_one(c)).collect();
        Matrix::from_rows(&rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn vocabulary_comes_from_training_set() {
        // Train on PUSH1/MSTORE only; ADD at transform time is ignored.
        let train: Vec<&[u8]> = vec![&[0x60, 0x80, 0x52]];
        let ex = HistogramExtractor::fit(&train);
        assert_eq!(ex.n_features(), 2);
        let row = ex.transform_one(&[0x60, 0x01, 0x01, 0x01]); // PUSH1 + ADDs
        assert_eq!(row, vec![1.0, 0.0]); // only PUSH1 counted
    }

    #[test]
    fn counts_match_disassembly() {
        let code = [0x60, 0x80, 0x60, 0x40, 0x52, 0x00]; // PUSH1 ×2, MSTORE, STOP
        let ex = HistogramExtractor::fit(&[&code]);
        let row = ex.transform_one(&code);
        let push1 = ex.columns().iter().position(|&m| m == "PUSH1").unwrap();
        let mstore = ex.columns().iter().position(|&m| m == "MSTORE").unwrap();
        assert_eq!(row[push1], 2.0);
        assert_eq!(row[mstore], 1.0);
    }

    #[test]
    fn invalid_bytes_share_one_bucket() {
        let code = [0x0C, 0xFE, 0xEF]; // three INVALID-class bytes
        let ex = HistogramExtractor::fit(&[&code]);
        assert_eq!(ex.n_features(), 1);
        assert_eq!(ex.columns()[0], "INVALID");
        assert_eq!(ex.transform_one(&code), vec![3.0]);
    }

    #[test]
    fn matrix_shape() {
        let a: &[u8] = &[0x60, 0x80];
        let b: &[u8] = &[0x00];
        let ex = HistogramExtractor::fit(&[a, b]);
        let m = ex.transform(&[a, b]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), ex.n_features());
    }

    proptest! {
        #[test]
        fn histogram_sums_to_instruction_count(code in proptest::collection::vec(any::<u8>(), 0..256)) {
            let ex = HistogramExtractor::fit(&[code.as_slice()]);
            let row = ex.transform_one(&code);
            let total: f64 = row.iter().sum();
            let n_ins = disassemble(&code).len();
            prop_assert_eq!(total as usize, n_ins);
        }
    }
}
