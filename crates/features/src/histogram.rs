//! Opcode-occurrence histograms — the HSC feature (paper §IV-B).
//!
//! "For each contract bytecode, a histogram of the occurrences of opcodes is
//! created. It builds a vector of length equal to the number of unique
//! opcodes inside the training set. The vector is directly served as input
//! (i.e., without normalized nor standardized steps)…"
//!
//! Extraction runs on the zero-allocation streaming disassembler: counting
//! one bytecode touches no heap beyond the output row, and the per-opcode
//! column is resolved through a dense 256-entry byte→column table built at
//! fit time (no per-instruction string hashing).

use phishinghook_evm::disasm::disasm_iter;
use phishinghook_evm::opcode::{mnemonic_str, OpTable, N_MNEMONICS};
use phishinghook_ml::Matrix;

/// Sentinel for "mnemonic not in the training vocabulary".
const NO_COL: u16 = u16::MAX;

/// Maps opcode mnemonics to histogram columns. The vocabulary is fixed at
/// fit time from the *training* bytecodes only (mnemonics never seen in
/// training are ignored at transform time, matching the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramExtractor {
    columns: Vec<&'static str>,
    /// Dense byte→column map; undefined bytes share INVALID's column.
    byte_to_col: [u16; 256],
}

impl HistogramExtractor {
    /// Builds the vocabulary from training bytecodes.
    pub fn fit(train: &[&[u8]]) -> Self {
        let table = OpTable::shared();
        // Column per mnemonic id, in first-seen disassembly order (the same
        // order the per-mnemonic map produced).
        let mut col_of_id = [NO_COL; N_MNEMONICS];
        let mut columns = Vec::new();
        for code in train {
            for op in disasm_iter(code) {
                let id = table.mnemonic_id(op.byte) as usize;
                if col_of_id[id] == NO_COL {
                    col_of_id[id] = columns.len() as u16;
                    columns.push(mnemonic_str(id as u16));
                }
            }
        }
        let mut byte_to_col = [NO_COL; 256];
        for (b, col) in byte_to_col.iter_mut().enumerate() {
            *col = col_of_id[table.mnemonic_id(b as u8) as usize];
        }
        HistogramExtractor {
            columns,
            byte_to_col,
        }
    }

    /// The histogram column names, in column order.
    pub fn columns(&self) -> &[&'static str] {
        &self.columns
    }

    /// Number of features (unique training-set opcodes).
    pub fn n_features(&self) -> usize {
        self.columns.len()
    }

    /// Streams one bytecode's counts into `row` (which must be zeroed and
    /// exactly [`Self::n_features`] wide).
    #[inline]
    pub fn count_into(&self, code: &[u8], row: &mut [f64]) {
        debug_assert_eq!(row.len(), self.columns.len());
        for op in disasm_iter(code) {
            let col = self.byte_to_col[op.byte as usize];
            if col != NO_COL {
                row[usize::from(col)] += 1.0;
            }
        }
    }

    /// Histogram of one bytecode (raw counts, unnormalized).
    pub fn transform_one(&self, code: &[u8]) -> Vec<f64> {
        let mut row = vec![0.0; self.columns.len()];
        self.count_into(code, &mut row);
        row
    }

    /// Fused one-pass transform: streams every bytecode's counts directly
    /// into the rows of `out`, which must be `codes.len() × n_features()`.
    ///
    /// # Panics
    /// Panics on a shape mismatch.
    pub fn transform_into(&self, codes: &[&[u8]], out: &mut Matrix) {
        assert_eq!(out.rows(), codes.len(), "one output row per bytecode");
        assert_eq!(out.cols(), self.columns.len(), "column count mismatch");
        for (i, code) in codes.iter().enumerate() {
            let row = out.row_mut(i);
            row.fill(0.0);
            self.count_into(code, row);
        }
    }

    /// Histograms of many bytecodes as a feature matrix (no intermediate
    /// per-row `Vec`s; rows are written in place).
    pub fn transform(&self, codes: &[&[u8]]) -> Matrix {
        let mut out = Matrix::zeros(codes.len(), self.columns.len());
        self.transform_into(codes, &mut out);
        out
    }
}

// --- Persistence -----------------------------------------------------------

use phishinghook_persist::{PersistError, Reader, Restore, Snapshot, Writer};

impl Snapshot for HistogramExtractor {
    fn snapshot(&self, w: &mut Writer) {
        w.put_usize(self.columns.len());
        for &name in &self.columns {
            w.put_str(name);
        }
        for &col in &self.byte_to_col {
            w.put_u16(col);
        }
    }
}

impl Restore for HistogramExtractor {
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let n_cols = r.take_len(1)?;
        let mut columns = Vec::with_capacity(n_cols);
        for _ in 0..n_cols {
            let name = r.take_str()?;
            // Column names intern back to the registry's &'static str — a
            // name the registry does not know cannot have been written by
            // `fit` and marks a foreign/corrupt snapshot.
            let interned = crate::static_mnemonic(name).ok_or_else(|| {
                PersistError::Malformed(format!("unknown opcode mnemonic `{name}`"))
            })?;
            columns.push(interned);
        }
        let mut byte_to_col = [NO_COL; 256];
        for col in byte_to_col.iter_mut() {
            let v = r.take_u16()?;
            if v != NO_COL && usize::from(v) >= columns.len() {
                return Err(PersistError::Malformed(format!(
                    "byte→column entry {v} out of range ({} columns)",
                    columns.len()
                )));
            }
            *col = v;
        }
        Ok(HistogramExtractor {
            columns,
            byte_to_col,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phishinghook_evm::disasm::disassemble;
    use proptest::prelude::*;

    #[test]
    fn vocabulary_comes_from_training_set() {
        // Train on PUSH1/MSTORE only; ADD at transform time is ignored.
        let train: Vec<&[u8]> = vec![&[0x60, 0x80, 0x52]];
        let ex = HistogramExtractor::fit(&train);
        assert_eq!(ex.n_features(), 2);
        let row = ex.transform_one(&[0x60, 0x01, 0x01, 0x01]); // PUSH1 + ADDs
        assert_eq!(row, vec![1.0, 0.0]); // only PUSH1 counted
    }

    #[test]
    fn counts_match_disassembly() {
        let code = [0x60, 0x80, 0x60, 0x40, 0x52, 0x00]; // PUSH1 ×2, MSTORE, STOP
        let ex = HistogramExtractor::fit(&[&code]);
        let row = ex.transform_one(&code);
        let push1 = ex.columns().iter().position(|&m| m == "PUSH1").unwrap();
        let mstore = ex.columns().iter().position(|&m| m == "MSTORE").unwrap();
        assert_eq!(row[push1], 2.0);
        assert_eq!(row[mstore], 1.0);
    }

    #[test]
    fn invalid_bytes_share_one_bucket() {
        let code = [0x0C, 0xFE, 0xEF]; // three INVALID-class bytes
        let ex = HistogramExtractor::fit(&[&code]);
        assert_eq!(ex.n_features(), 1);
        assert_eq!(ex.columns()[0], "INVALID");
        assert_eq!(ex.transform_one(&code), vec![3.0]);
    }

    #[test]
    fn matrix_shape() {
        let a: &[u8] = &[0x60, 0x80];
        let b: &[u8] = &[0x00];
        let ex = HistogramExtractor::fit(&[a, b]);
        let m = ex.transform(&[a, b]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), ex.n_features());
    }

    #[test]
    fn transform_into_overwrites_stale_rows() {
        let a: &[u8] = &[0x60, 0x80];
        let ex = HistogramExtractor::fit(&[a]);
        let mut out = Matrix::zeros(1, ex.n_features());
        out.row_mut(0).fill(99.0);
        ex.transform_into(&[a], &mut out);
        assert_eq!(out.row(0), ex.transform_one(a).as_slice());
    }

    #[test]
    fn snapshot_round_trip_is_identity() {
        use phishinghook_persist::{from_envelope, to_envelope};
        let train: Vec<&[u8]> = vec![&[0x60, 0x80, 0x52, 0x00, 0x0C]];
        let ex = HistogramExtractor::fit(&train);
        let back: HistogramExtractor =
            from_envelope("histogram", &to_envelope("histogram", &ex)).expect("round-trips");
        assert_eq!(back, ex);
        assert_eq!(
            back.transform_one(&[0x60, 0x01]),
            ex.transform_one(&[0x60, 0x01])
        );
    }

    /// Reference implementation: the seed's two-phase HashMap path.
    fn legacy_transform(ex: &HistogramExtractor, codes: &[&[u8]]) -> Matrix {
        let index: std::collections::HashMap<&str, usize> = ex
            .columns()
            .iter()
            .enumerate()
            .map(|(i, &m)| (m, i))
            .collect();
        let rows: Vec<Vec<f64>> = codes
            .iter()
            .map(|code| {
                let mut row = vec![0.0; ex.n_features()];
                for ins in disassemble(code) {
                    if let Some(&j) = index.get(ins.mnemonic()) {
                        row[j] += 1.0;
                    }
                }
                row
            })
            .collect();
        Matrix::from_rows(&rows)
    }

    proptest! {
        #[test]
        fn histogram_sums_to_instruction_count(code in proptest::collection::vec(any::<u8>(), 0..256)) {
            let ex = HistogramExtractor::fit(&[code.as_slice()]);
            let row = ex.transform_one(&code);
            let total: f64 = row.iter().sum();
            let n_ins = disassemble(&code).len();
            prop_assert_eq!(total as usize, n_ins);
        }

        #[test]
        fn fused_transform_matches_legacy_path(
            a in proptest::collection::vec(any::<u8>(), 0..256),
            b in proptest::collection::vec(any::<u8>(), 0..256),
        ) {
            // The fused streaming transform must be bit-identical to the
            // seed's disassemble-then-hash path, including on bytecodes with
            // out-of-vocabulary opcodes.
            let ex = HistogramExtractor::fit(&[a.as_slice()]);
            let codes = [a.as_slice(), b.as_slice()];
            prop_assert_eq!(ex.transform(&codes), legacy_transform(&ex, &codes));
        }
    }
}
