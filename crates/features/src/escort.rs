//! ESCORT's bytecode embedding features and vulnerability pseudo-labels.
//!
//! ESCORT (paper §IV-B) "embeds the smart contract bytecode into a vector
//! space" and feeds a DNN whose trunk is trained on *code-vulnerability*
//! classes, then transferred to new tasks by attaching a fresh head. The
//! paper finds it ineffective on phishing — a social-engineering class —
//! because its transferred representation encodes technical code properties,
//! not scam intent.
//!
//! This module supplies both halves of that mechanism: a hashed byte-trigram
//! embedding (the vector space) and the vulnerability-style pseudo-labels
//! (`SELFDESTRUCT` presence, `DELEGATECALL` presence, state-write-after-call
//! reentrancy shape) the trunk pretrains on.

use phishinghook_evm::disasm::disasm_iter;
use phishinghook_ml::Matrix;

/// Dimension of the hashed embedding.
pub const EMBED_DIM: usize = 64;

/// Streams one bytecode's hashed-trigram embedding into `out` (which must be
/// zeroed and exactly [`EMBED_DIM`] wide).
pub fn embed_into(code: &[u8], out: &mut [f64]) {
    debug_assert_eq!(out.len(), EMBED_DIM);
    for window in code.windows(3) {
        let mut h = 0xcbf29ce484222325u64; // FNV-1a
        for &b in window {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        out[(h % EMBED_DIM as u64) as usize] += 1.0;
    }
    let norm = out.iter().map(|v| v * v).sum::<f64>().sqrt();
    if norm > 0.0 {
        for v in out {
            *v /= norm;
        }
    }
}

/// Hashed byte-trigram embedding of a bytecode (feature hashing into
/// [`EMBED_DIM`] buckets, L2-normalized).
pub fn embed(code: &[u8]) -> Vec<f64> {
    let mut out = vec![0.0f64; EMBED_DIM];
    embed_into(code, &mut out);
    out
}

/// Embeds many bytecodes into a feature matrix (rows written in place, no
/// intermediate per-row `Vec`s).
pub fn embed_all(codes: &[&[u8]]) -> Matrix {
    let mut out = Matrix::zeros(codes.len(), EMBED_DIM);
    for (i, code) in codes.iter().enumerate() {
        embed_into(code, out.row_mut(i));
    }
    out
}

/// The vulnerability classes ESCORT's trunk pretrains on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VulnerabilityClass {
    /// Contains `SELFDESTRUCT`.
    SelfDestruct,
    /// Contains `DELEGATECALL`.
    DelegateCall,
    /// Writes storage after an external call (the reentrancy shape).
    StateWriteAfterCall,
}

/// All pretraining classes, in label order.
pub const VULN_CLASSES: [VulnerabilityClass; 3] = [
    VulnerabilityClass::SelfDestruct,
    VulnerabilityClass::DelegateCall,
    VulnerabilityClass::StateWriteAfterCall,
];

/// Multi-hot vulnerability pseudo-labels of a bytecode, derived statically
/// from its disassembly (this is what a vulnerability-detection corpus
/// would provide).
pub fn vulnerability_labels(code: &[u8]) -> [bool; 3] {
    let mut has_selfdestruct = false;
    let mut has_delegatecall = false;
    let mut seen_call = false;
    let mut write_after_call = false;
    // Streamed over the opcode bytes (operands are skipped by the iterator,
    // so 0xFF inside a PUSH payload does not count as SELFDESTRUCT).
    for op in disasm_iter(code) {
        match op.byte {
            0xFF => has_selfdestruct = true,              // SELFDESTRUCT
            0xF4 => has_delegatecall = true,              // DELEGATECALL
            0xF1 | 0xF2 | 0xFA => seen_call = true,       // CALL | CALLCODE | STATICCALL
            0x55 if seen_call => write_after_call = true, // SSTORE
            _ => {}
        }
    }
    [has_selfdestruct, has_delegatecall, write_after_call]
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn embedding_is_unit_norm() {
        let v = embed(&[0x60, 0x80, 0x60, 0x40, 0x52, 0x00, 0xFF]);
        let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn short_code_embeds_to_zero() {
        assert_eq!(embed(&[0x60]), vec![0.0; EMBED_DIM]);
    }

    #[test]
    fn labels_detect_selfdestruct() {
        // PUSH0 SELFDESTRUCT
        let labels = vulnerability_labels(&[0x5F, 0xFF]);
        assert_eq!(labels, [true, false, false]);
    }

    #[test]
    fn labels_detect_delegatecall() {
        let labels = vulnerability_labels(&[0xF4]);
        assert_eq!(labels, [false, true, false]);
    }

    #[test]
    fn labels_detect_write_after_call() {
        // CALL … SSTORE = reentrancy shape; SSTORE before CALL is not.
        assert_eq!(vulnerability_labels(&[0xF1, 0x55]), [false, false, true]);
        assert_eq!(vulnerability_labels(&[0x55, 0xF1]), [false, false, false]);
    }

    #[test]
    fn matrix_shape() {
        let a: &[u8] = &[1, 2, 3, 4];
        let b: &[u8] = &[5, 6, 7];
        let m = embed_all(&[a, b]);
        assert_eq!((m.rows(), m.cols()), (2, EMBED_DIM));
    }

    proptest! {
        #[test]
        fn embedding_deterministic(code in proptest::collection::vec(any::<u8>(), 0..128)) {
            prop_assert_eq!(embed(&code), embed(&code));
        }

        #[test]
        fn norm_is_zero_or_one(code in proptest::collection::vec(any::<u8>(), 0..128)) {
            let v = embed(&code);
            let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            prop_assert!(norm.abs() < 1e-9 || (norm - 1.0).abs() < 1e-9);
        }

        #[test]
        fn labels_match_mnemonic_reference(code in proptest::collection::vec(any::<u8>(), 0..256)) {
            // The byte-matched streaming path must agree with the seed's
            // mnemonic-string matching over the collected disassembly.
            use phishinghook_evm::disasm::disassemble;
            let mut sd = false;
            let mut dc = false;
            let mut seen_call = false;
            let mut wac = false;
            for i in disassemble(&code) {
                match i.mnemonic() {
                    "SELFDESTRUCT" => sd = true,
                    "DELEGATECALL" => dc = true,
                    "CALL" | "CALLCODE" | "STATICCALL" => seen_call = true,
                    "SSTORE" if seen_call => wac = true,
                    _ => {}
                }
            }
            prop_assert_eq!(vulnerability_labels(&code), [sd, dc, wac]);
        }
    }
}
