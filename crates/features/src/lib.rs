//! Feature extraction for opcode-based phishing detection.
//!
//! One module per feature path in the paper's model zoo:
//!
//! | Module | Models served | Paper feature |
//! |--------|---------------|---------------|
//! | [`histogram`] | the 7 HSCs | raw opcode-occurrence histograms |
//! | [`image`] | ViT+R2D2, ECA+EfficientNet, ViT+Freq | RGB byte images / frequency-encoded images |
//! | [`ngram`] | SCSGuard | 3-byte ("6 hex chars") bigram vocabulary |
//! | [`tokenize`] | GPT-2α/β, T5α/β | byte tokens, truncation (α) vs sliding window (β) |
//! | [`escort`] | ESCORT | hashed bytecode embedding + vulnerability pseudo-labels |

pub mod escort;
pub mod histogram;
pub mod image;
pub mod ngram;
pub mod tokenize;

pub use histogram::HistogramExtractor;
pub use image::{freq_image, r2d2_image, FreqLookup};
pub use ngram::BigramVocab;
pub use tokenize::{token_windows, tokenize, TokenWindows, Tokenization};
