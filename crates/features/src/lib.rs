#![warn(missing_docs)]

//! Feature extraction for opcode-based phishing detection.
//!
//! One module per feature path in the paper's model zoo:
//!
//! | Module | Models served | Paper feature |
//! |--------|---------------|---------------|
//! | [`histogram`] | the 7 HSCs | raw opcode-occurrence histograms |
//! | [`image`] | ViT+R2D2, ECA+EfficientNet, ViT+Freq | RGB byte images / frequency-encoded images |
//! | [`ngram`] | SCSGuard | 3-byte ("6 hex chars") bigram vocabulary |
//! | [`tokenize`](mod@tokenize) | GPT-2α/β, T5α/β | byte tokens, truncation (α) vs sliding window (β) |
//! | [`escort`] | ESCORT | hashed bytecode embedding + vulnerability pseudo-labels |
//! | [`trace`] | any HSC/ensemble via `features=` | dynamic execution-trace features (beyond the paper) |

pub mod escort;
pub mod histogram;
pub mod image;
pub mod ngram;
pub mod tokenize;
pub mod trace;

pub use histogram::HistogramExtractor;
pub use image::{freq_image, r2d2_image, FreqLookup};
pub use ngram::BigramVocab;
pub use tokenize::{token_windows, tokenize, TokenWindows, Tokenization};
pub use trace::{TraceExtractor, TRACE_COLUMNS};

/// Resolves a mnemonic string back to its interned `&'static str` from the
/// opcode registry — the restore-side inverse of storing `&'static str`
/// column/key names in snapshots.
pub(crate) fn static_mnemonic(name: &str) -> Option<&'static str> {
    (0..phishinghook_evm::opcode::N_MNEMONICS as u16)
        .map(phishinghook_evm::opcode::mnemonic_str)
        .find(|&m| m == name)
}
