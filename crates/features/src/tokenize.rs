//! Byte-level tokenizers for the GPT-2- and T5-style language models.
//!
//! The paper uses HuggingFace's `GPT2Tokenizer`/`T5Tokenizer` over the
//! bytecode text. Offline, the equivalent is a byte-level vocabulary
//! (256 byte ids + specials) with the two sequence policies the paper
//! evaluates:
//!
//! * **α** — "opcode sequences are truncated to fit model token limits":
//!   [`Tokenization::Truncate`];
//! * **β** — "full bytecodes are processed in chunks using a sliding
//!   window": [`Tokenization::SlidingWindow`].

/// Token id offset of raw bytes (`byte b` ⇒ `id b + 2`).
pub const BYTE_OFFSET: usize = 2;
/// Padding token.
pub const PAD: usize = 0;
/// Classification/begin-of-sequence token.
pub const CLS: usize = 1;
/// Total vocabulary size (256 bytes + 2 specials).
pub const VOCAB_SIZE: usize = 258;

/// Sequence policy: the α/β distinction from the paper's Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tokenization {
    /// α: keep the first `max_len` tokens.
    Truncate {
        /// Sequence length (CLS included).
        max_len: usize,
    },
    /// β: split into overlapping windows of `window` tokens advancing by
    /// `stride`.
    SlidingWindow {
        /// Window length (CLS included).
        window: usize,
        /// Window advance; must be positive.
        stride: usize,
    },
}

/// Tokenizes a bytecode into one or more fixed-length id sequences
/// (one for α, possibly several for β). Every sequence starts with [`CLS`]
/// and is padded with [`PAD`].
///
/// Collecting wrapper over [`token_windows`]; prefer the iterator when the
/// windows are consumed once (it allocates one sequence at a time instead
/// of the whole window set).
pub fn tokenize(code: &[u8], policy: Tokenization) -> Vec<Vec<usize>> {
    token_windows(code, policy).collect()
}

/// Streams the fixed-length token windows of a bytecode, one `Vec` per
/// window, without materializing the outer window set.
pub fn token_windows(code: &[u8], policy: Tokenization) -> TokenWindows<'_> {
    match policy {
        Tokenization::Truncate { max_len } => {
            assert!(max_len >= 2, "max_len must fit CLS plus content");
        }
        Tokenization::SlidingWindow { window, stride } => {
            assert!(window >= 2, "window must fit CLS plus content");
            assert!(stride > 0, "stride must be positive");
        }
    }
    TokenWindows {
        code,
        policy,
        next_start: Some(0),
    }
}

/// Streaming iterator over a bytecode's token windows (see
/// [`token_windows`]).
#[derive(Debug, Clone)]
pub struct TokenWindows<'a> {
    code: &'a [u8],
    policy: Tokenization,
    /// Start offset of the next window; `None` once exhausted.
    next_start: Option<usize>,
}

impl Iterator for TokenWindows<'_> {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        let start = self.next_start?;
        match self.policy {
            Tokenization::Truncate { max_len } => {
                self.next_start = None;
                Some(window_tokens(self.code, 0, max_len))
            }
            Tokenization::SlidingWindow { window, stride } => {
                let body = window - 1; // CLS occupies one slot
                self.next_start = if start + body >= self.code.len() {
                    None
                } else {
                    Some(start + stride)
                };
                Some(window_tokens(self.code, start, window))
            }
        }
    }
}

impl std::iter::FusedIterator for TokenWindows<'_> {}

fn window_tokens(code: &[u8], start: usize, len: usize) -> Vec<usize> {
    let mut seq = Vec::with_capacity(len);
    seq.push(CLS);
    seq.extend(
        code.iter()
            .skip(start)
            .take(len - 1)
            .map(|&b| usize::from(b) + BYTE_OFFSET),
    );
    seq.resize(len, PAD);
    seq
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn alpha_truncates_and_pads() {
        let seqs = tokenize(&[0x60, 0x80], Tokenization::Truncate { max_len: 5 });
        assert_eq!(seqs.len(), 1);
        assert_eq!(seqs[0], vec![CLS, 0x60 + 2, 0x80 + 2, PAD, PAD]);

        let long: Vec<u8> = (0..100).collect();
        let seqs = tokenize(&long, Tokenization::Truncate { max_len: 5 });
        assert_eq!(seqs[0].len(), 5);
        assert_eq!(seqs[0][1], 2);
    }

    #[test]
    fn beta_covers_the_whole_bytecode() {
        let code: Vec<u8> = (0..10).collect();
        let seqs = tokenize(
            &code,
            Tokenization::SlidingWindow {
                window: 5,
                stride: 2,
            },
        );
        // Window body = 4 bytes; strides at 0,2,4,6 cover byte 9 (6+4 >= 10).
        assert_eq!(seqs.len(), 4);
        // Every byte appears in at least one window.
        let mut seen = [false; 10];
        for w in &seqs {
            for &t in &w[1..] {
                if t >= BYTE_OFFSET {
                    seen[t - BYTE_OFFSET] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn beta_on_empty_code_yields_one_padded_window() {
        let seqs = tokenize(
            &[],
            Tokenization::SlidingWindow {
                window: 4,
                stride: 2,
            },
        );
        assert_eq!(seqs, vec![vec![CLS, PAD, PAD, PAD]]);
    }

    #[test]
    fn windows_overlap_with_small_stride() {
        let code: Vec<u8> = (0..8).collect();
        let seqs = tokenize(
            &code,
            Tokenization::SlidingWindow {
                window: 5,
                stride: 2,
            },
        );
        // Second window starts at byte 2.
        assert_eq!(seqs[1][1], 2 + BYTE_OFFSET);
    }

    #[test]
    #[should_panic(expected = "stride must be positive")]
    fn zero_stride_panics() {
        let _ = tokenize(
            &[1],
            Tokenization::SlidingWindow {
                window: 4,
                stride: 0,
            },
        );
    }

    proptest! {
        #[test]
        fn all_ids_in_vocab(code in proptest::collection::vec(any::<u8>(), 0..300)) {
            for seq in tokenize(&code, Tokenization::SlidingWindow { window: 16, stride: 8 }) {
                prop_assert_eq!(seq.len(), 16);
                for id in seq {
                    prop_assert!(id < VOCAB_SIZE);
                }
            }
        }

        #[test]
        fn alpha_always_fixed_length(code in proptest::collection::vec(any::<u8>(), 0..300), n in 2usize..64) {
            let seqs = tokenize(&code, Tokenization::Truncate { max_len: n });
            prop_assert_eq!(seqs.len(), 1);
            prop_assert_eq!(seqs[0].len(), n);
        }

        #[test]
        fn streaming_windows_match_collected(code in proptest::collection::vec(any::<u8>(), 0..300), stride in 1usize..32) {
            let policy = Tokenization::SlidingWindow { window: 24, stride };
            let streamed: Vec<Vec<usize>> = token_windows(&code, policy).collect();
            prop_assert_eq!(streamed, tokenize(&code, policy));
        }
    }
}
