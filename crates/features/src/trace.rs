//! Trace features — the dynamic-analysis channel.
//!
//! The dispatcher explorer (`phishinghook_evm::explorer`) executes a
//! contract once per discovered selector plus the fallback path and records
//! what actually happens: reachable `CALL`/`SELFDESTRUCT` sites, value
//! transfers and their targets, storage-gated transfer patterns, revert
//! topology. [`TraceExtractor`] reduces that structured [`Trace`] to a
//! fixed-width feature row, giving any HSC or ensemble a behavioral view
//! that opcode histograms cannot provide (honeypots are *engineered* to be
//! statically indistinguishable from their benign twins — see
//! `phishinghook_data::honeypot`).
//!
//! Unlike [`crate::HistogramExtractor`] the extractor is stateless — the
//! column set is fixed, not fitted — so the same extractor config always
//! produces the same columns, and exploration runs under the
//! deterministic [`NullHost`] environment (fresh storage, fixed caller),
//! keeping train/serve feature rows bit-identical.

use phishinghook_evm::explorer::{Explorer, ExplorerConfig, Trace};
use phishinghook_evm::host::CallKind;
use phishinghook_evm::interp::Status;
use phishinghook_ml::Matrix;

#[allow(unused_imports)] // rustdoc link
use phishinghook_evm::host::NullHost;

/// The fixed trace-feature columns, in row order.
pub const TRACE_COLUMNS: [&str; 20] = [
    "trace.selectors",
    "trace.runs",
    "trace.revert_frac",
    "trace.fallback_revert",
    "trace.halt_frac",
    "trace.calls",
    "trace.value_calls",
    "trace.value_to_caller",
    "trace.value_to_other",
    "trace.call_after_sload",
    "trace.call_after_sstore",
    "trace.delegate_calls",
    "trace.static_calls",
    "trace.selfdestructs",
    "trace.selfdestruct_to_caller",
    "trace.sloads",
    "trace.sstores",
    "trace.logs",
    "trace.mean_steps",
    "trace.payout_reachable",
];

/// Turns explorer traces into fixed-width feature rows.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceExtractor {
    /// Gas budget per selector run.
    pub gas_per_run: u64,
    /// Step budget per selector run.
    pub steps_per_run: u64,
    /// Selector-table truncation bound.
    pub max_selectors: usize,
}

impl Default for TraceExtractor {
    fn default() -> Self {
        let cfg = ExplorerConfig::default();
        TraceExtractor {
            gas_per_run: cfg.gas_per_run,
            steps_per_run: cfg.steps_per_run,
            max_selectors: cfg.max_selectors,
        }
    }
}

impl TraceExtractor {
    /// The extractor with default explorer budgets.
    pub fn new() -> Self {
        TraceExtractor::default()
    }

    /// The column names, in row order.
    pub fn columns(&self) -> &'static [&'static str] {
        &TRACE_COLUMNS
    }

    /// Number of features (fixed).
    pub fn n_features(&self) -> usize {
        TRACE_COLUMNS.len()
    }

    fn explorer(&self) -> Explorer {
        Explorer::new(ExplorerConfig {
            gas_per_run: self.gas_per_run,
            steps_per_run: self.steps_per_run,
            max_selectors: self.max_selectors,
        })
    }

    /// Reduces one already-computed trace to a feature row (in `row`, which
    /// must be [`Self::n_features`] wide).
    pub fn featurize_into(&self, trace: &Trace, row: &mut [f64]) {
        debug_assert_eq!(row.len(), TRACE_COLUMNS.len());
        let n_runs = trace.runs.len();
        let sel_runs: Vec<_> = trace.selector_runs().collect();
        let reverted = sel_runs.iter().filter(|r| r.reverted()).count();
        let halted = trace.runs.iter().filter(|r| r.halted()).count();
        let calls: Vec<_> = trace.calls().collect();
        let value_calls = calls.iter().filter(|c| c.transfers_value).count();
        let value_to_caller = calls
            .iter()
            .filter(|c| c.transfers_value && c.to_caller)
            .count();
        let sd: Vec<_> = trace.selfdestructs().collect();
        let sd_to_caller = sd.iter().filter(|s| s.to_caller).count();
        let steps: u64 = trace.runs.iter().map(|r| r.steps).sum();
        let payout_reachable = value_to_caller > 0 || sd_to_caller > 0;

        row[0] = trace.selectors_total as f64;
        row[1] = n_runs as f64;
        row[2] = reverted as f64 / sel_runs.len().max(1) as f64;
        row[3] = f64::from(u8::from(trace.fallback().status == Status::Revert));
        row[4] = halted as f64 / n_runs.max(1) as f64;
        row[5] = calls.len() as f64;
        row[6] = value_calls as f64;
        row[7] = value_to_caller as f64;
        row[8] = (value_calls - value_to_caller) as f64;
        row[9] = calls
            .iter()
            .filter(|c| c.transfers_value && c.after_sload)
            .count() as f64;
        row[10] = calls.iter().filter(|c| c.after_sstore).count() as f64;
        row[11] = calls
            .iter()
            .filter(|c| c.kind == CallKind::DelegateCall)
            .count() as f64;
        row[12] = calls
            .iter()
            .filter(|c| c.kind == CallKind::StaticCall)
            .count() as f64;
        row[13] = sd.len() as f64;
        row[14] = sd_to_caller as f64;
        row[15] = trace.runs.iter().map(|r| r.sloads).sum::<u64>() as f64;
        row[16] = trace.runs.iter().map(|r| r.sstores).sum::<u64>() as f64;
        row[17] = trace.runs.iter().map(|r| r.logs).sum::<u64>() as f64;
        row[18] = steps as f64 / n_runs.max(1) as f64;
        row[19] = f64::from(u8::from(payout_reachable));
    }

    /// Explores `code` and writes its feature row into `row`.
    pub fn extract_into(&self, code: &[u8], row: &mut [f64]) {
        let trace = self.explorer().explore(code);
        self.featurize_into(&trace, row);
    }

    /// Trace feature row of one bytecode.
    pub fn transform_one(&self, code: &[u8]) -> Vec<f64> {
        let mut row = vec![0.0; self.n_features()];
        self.extract_into(code, &mut row);
        row
    }

    /// Streams every bytecode's trace row into `out`, which must be
    /// `codes.len() × n_features()`.
    ///
    /// # Panics
    /// Panics on a shape mismatch.
    pub fn transform_into(&self, codes: &[&[u8]], out: &mut Matrix) {
        assert_eq!(out.rows(), codes.len(), "one output row per bytecode");
        assert_eq!(out.cols(), self.n_features(), "column count mismatch");
        for (i, code) in codes.iter().enumerate() {
            self.extract_into(code, out.row_mut(i));
        }
    }

    /// Trace features of many bytecodes as a feature matrix.
    pub fn transform(&self, codes: &[&[u8]]) -> Matrix {
        let mut out = Matrix::zeros(codes.len(), self.n_features());
        self.transform_into(codes, &mut out);
        out
    }
}

// --- Persistence -----------------------------------------------------------

use phishinghook_persist::{PersistError, Reader, Restore, Snapshot, Writer};

impl Snapshot for TraceExtractor {
    fn snapshot(&self, w: &mut Writer) {
        w.put_u64(self.gas_per_run);
        w.put_u64(self.steps_per_run);
        w.put_usize(self.max_selectors);
        // Column count pins the feature width a snapshot was trained
        // against; a restore into a build with a different trace schema
        // must fail loudly rather than mis-feed a model.
        w.put_usize(TRACE_COLUMNS.len());
    }
}

impl Restore for TraceExtractor {
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let gas_per_run = r.take_u64()?;
        let steps_per_run = r.take_u64()?;
        let max_selectors = r.take_usize()?;
        let n_cols = r.take_usize()?;
        if n_cols != TRACE_COLUMNS.len() {
            return Err(PersistError::Malformed(format!(
                "trace extractor snapshot has {n_cols} columns, this build has {}",
                TRACE_COLUMNS.len()
            )));
        }
        if gas_per_run == 0 || steps_per_run == 0 {
            return Err(PersistError::Malformed(
                "trace extractor budgets must be nonzero".into(),
            ));
        }
        Ok(TraceExtractor {
            gas_per_run,
            steps_per_run,
            max_selectors,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phishinghook_evm::asm::Asm;
    use phishinghook_persist::{from_envelope, to_envelope};

    /// A dispatcher whose one function pays the caller.
    fn paying_contract() -> Vec<u8> {
        let mut asm = Asm::new();
        asm.op("PUSH0").op("CALLDATALOAD").push_u64(0xE0).op("SHR");
        asm.op("DUP1").push_selector([1, 2, 3, 4]).op("EQ");
        asm.jumpi("pay");
        asm.op("STOP");
        asm.label("pay");
        asm.push_u64(0).push_u64(0).push_u64(0).push_u64(0);
        asm.push_u64(9).op("CALLER").push_u64(30_000).op("CALL");
        asm.op("POP").op("STOP");
        asm.assemble().unwrap()
    }

    #[test]
    fn columns_and_width_agree() {
        let ex = TraceExtractor::new();
        assert_eq!(ex.n_features(), TRACE_COLUMNS.len());
        assert_eq!(ex.columns().len(), ex.n_features());
    }

    #[test]
    fn payout_lights_the_expected_columns() {
        let ex = TraceExtractor::new();
        let row = ex.transform_one(&paying_contract());
        let col = |name: &str| {
            row[TRACE_COLUMNS
                .iter()
                .position(|&c| c == name)
                .unwrap_or_else(|| panic!("{name}"))]
        };
        assert_eq!(col("trace.selectors"), 1.0);
        assert_eq!(col("trace.runs"), 2.0);
        assert_eq!(col("trace.value_calls"), 1.0);
        assert_eq!(col("trace.value_to_caller"), 1.0);
        assert_eq!(col("trace.value_to_other"), 0.0);
        assert_eq!(col("trace.payout_reachable"), 1.0);
    }

    #[test]
    fn extraction_is_deterministic() {
        let ex = TraceExtractor::new();
        let code = paying_contract();
        let a = ex.transform_one(&code);
        let b = ex.transform_one(&code);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a), bits(&b));
    }

    #[test]
    fn matrix_shape_and_rows_match_single_path() {
        let ex = TraceExtractor::new();
        let code = paying_contract();
        let empty: &[u8] = &[];
        let m = ex.transform(&[code.as_slice(), empty]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), ex.n_features());
        assert_eq!(m.row(0), ex.transform_one(&code).as_slice());
        assert_eq!(m.row(1), ex.transform_one(empty).as_slice());
    }

    #[test]
    fn snapshot_round_trip_is_identity() {
        let ex = TraceExtractor {
            gas_per_run: 123_456,
            steps_per_run: 9_999,
            max_selectors: 7,
        };
        let back: TraceExtractor =
            from_envelope("trace", &to_envelope("trace", &ex)).expect("round-trips");
        assert_eq!(back, ex);
    }

    #[test]
    fn corrupt_snapshots_are_rejected_with_typed_errors() {
        let ex = TraceExtractor::new();
        let env = to_envelope("trace", &ex);
        // Truncation inside the payload.
        let cut = &env[..env.len() - 6];
        assert!(matches!(
            from_envelope::<TraceExtractor>("trace", cut),
            Err(PersistError::Truncated { .. } | PersistError::ChecksumMismatch { .. })
        ));
        // Zeroed budget fails the validity check (rebuild a valid envelope
        // around a hand-written bad payload).
        let bad = TraceExtractor {
            gas_per_run: 0,
            ..TraceExtractor::new()
        };
        let env = to_envelope("trace", &bad);
        assert!(matches!(
            from_envelope::<TraceExtractor>("trace", &env),
            Err(PersistError::Malformed(_))
        ));
    }
}
