//! Bytecode-to-image encodings for the vision models.
//!
//! * [`r2d2_image`] — the R2D2 encoding (paper §IV-B, ViT+R2D2 and
//!   ECA+EfficientNet): consecutive bytecode bytes become RGB pixel
//!   channels, arranged into a fixed-size square tensor with zero padding.
//! * [`FreqLookup`] / [`freq_image`] — the ViT+Freq encoding: each
//!   disassembled instruction becomes one pixel whose R/G/B intensities are
//!   the *training-set frequencies* of its mnemonic, operand and gas cost
//!   ("assigning higher pixel intensity values … to the most frequently
//!   encountered mnemonics, operands and gas consumptions"). The lookup
//!   table is built exactly once on the training set.

use phishinghook_evm::disasm::{disasm_iter, Instruction, Op};
use std::collections::HashMap;

/// Encodes bytecode as a `[3, size, size]` channel-first tensor in `[0, 1]`
/// (bytes beyond `3·size²` are truncated; shorter inputs are zero-padded).
pub fn r2d2_image(code: &[u8], size: usize) -> Vec<f32> {
    let hw = size * size;
    let mut out = vec![0.0f32; 3 * hw];
    for (i, &byte) in code.iter().take(3 * hw).enumerate() {
        // Byte stream is interleaved RGB: pixel p channel c at index 3p+c.
        let (pixel, channel) = (i / 3, i % 3);
        out[channel * hw + pixel] = f32::from(byte) / 255.0;
    }
    out
}

/// Frequency lookup table fitted on the training disassemblies.
#[derive(Debug, Clone, PartialEq)]
pub struct FreqLookup {
    mnemonic_freq: HashMap<&'static str, f32>,
    operand_freq: HashMap<Vec<u8>, f32>,
    gas_freq: HashMap<u64, f32>,
}

impl FreqLookup {
    /// Builds the table from training bytecodes ("constructed exactly once
    /// on the entire contract training set").
    pub fn fit(train: &[&[u8]]) -> Self {
        let mut mnemonic_counts: HashMap<&'static str, u64> = HashMap::new();
        let mut operand_counts: HashMap<Vec<u8>, u64> = HashMap::new();
        let mut gas_counts: HashMap<u64, u64> = HashMap::new();
        let mut total = 0u64;
        for code in train {
            for op in disasm_iter(code) {
                *mnemonic_counts.entry(op.mnemonic()).or_default() += 1;
                // Borrowed lookup first: the operand is only copied to the
                // heap the first time a distinct value is seen.
                match operand_counts.get_mut(op.operand) {
                    Some(c) => *c += 1,
                    None => {
                        operand_counts.insert(op.operand.to_vec(), 1);
                    }
                }
                *gas_counts
                    .entry(op.gas().as_u64().unwrap_or(0))
                    .or_default() += 1;
                total += 1;
            }
        }
        fn normalize<K: std::hash::Hash + Eq>(
            max: u64,
            counts: HashMap<K, u64>,
        ) -> HashMap<K, f32> {
            counts
                .into_iter()
                .map(|(k, v)| (k, (v as f32 / max.max(1) as f32).min(1.0)))
                .collect()
        }
        let max_mn = mnemonic_counts.values().copied().max().unwrap_or(1);
        let max_op = operand_counts.values().copied().max().unwrap_or(1);
        let max_gas = gas_counts.values().copied().max().unwrap_or(1);
        let _ = total;
        FreqLookup {
            mnemonic_freq: normalize(max_mn, mnemonic_counts),
            operand_freq: normalize(max_op, operand_counts),
            gas_freq: normalize(max_gas, gas_counts),
        }
    }

    /// The `(R, G, B)` intensity of one instruction (zero for unseen keys).
    pub fn pixel(&self, ins: &Instruction) -> (f32, f32, f32) {
        self.pixel_parts(ins.mnemonic(), &ins.operand, ins.gas().as_u64())
    }

    /// The `(R, G, B)` intensity of one streamed [`Op`] — no allocation, the
    /// operand lookup borrows straight from the bytecode.
    pub fn pixel_op(&self, op: &Op<'_>) -> (f32, f32, f32) {
        self.pixel_parts(op.mnemonic(), op.operand, op.gas().as_u64())
    }

    fn pixel_parts(&self, mnemonic: &str, operand: &[u8], gas: Option<u64>) -> (f32, f32, f32) {
        let r = self.mnemonic_freq.get(mnemonic).copied().unwrap_or(0.0);
        let g = self.operand_freq.get(operand).copied().unwrap_or(0.0);
        let b = self.gas_freq.get(&gas.unwrap_or(0)).copied().unwrap_or(0.0);
        (r, g, b)
    }
}

/// Encodes a bytecode as a `[3, size, size]` frequency image: one pixel per
/// instruction, truncated/zero-padded to `size²` instructions.
pub fn freq_image(code: &[u8], lookup: &FreqLookup, size: usize) -> Vec<f32> {
    let hw = size * size;
    let mut out = vec![0.0f32; 3 * hw];
    for (p, op) in disasm_iter(code).take(hw).enumerate() {
        let (r, g, b) = lookup.pixel_op(&op);
        out[p] = r;
        out[hw + p] = g;
        out[2 * hw + p] = b;
    }
    out
}

// --- Persistence -----------------------------------------------------------

use phishinghook_persist::{PersistError, Reader, Restore, Snapshot, Writer};

impl Snapshot for FreqLookup {
    fn snapshot(&self, w: &mut Writer) {
        // All three maps are sorted by key before writing so equal tables
        // produce byte-identical snapshots despite HashMap iteration order.
        let mut mnemonics: Vec<(&&'static str, &f32)> = self.mnemonic_freq.iter().collect();
        mnemonics.sort_unstable_by_key(|(k, _)| **k);
        w.put_usize(mnemonics.len());
        for (name, &freq) in mnemonics {
            w.put_str(name);
            w.put_f32(freq);
        }

        let mut operands: Vec<(&Vec<u8>, &f32)> = self.operand_freq.iter().collect();
        operands.sort_unstable_by_key(|(k, _)| k.as_slice());
        w.put_usize(operands.len());
        for (operand, &freq) in operands {
            w.put_bytes(operand);
            w.put_f32(freq);
        }

        let mut gas: Vec<(&u64, &f32)> = self.gas_freq.iter().collect();
        gas.sort_unstable_by_key(|(k, _)| **k);
        w.put_usize(gas.len());
        for (&cost, &freq) in gas {
            w.put_u64(cost);
            w.put_f32(freq);
        }
    }
}

impl Restore for FreqLookup {
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let n_mnemonics = r.take_len(1)?;
        let mut mnemonic_freq = HashMap::with_capacity(n_mnemonics);
        for _ in 0..n_mnemonics {
            let name = r.take_str()?;
            let interned = crate::static_mnemonic(name).ok_or_else(|| {
                PersistError::Malformed(format!("unknown opcode mnemonic `{name}`"))
            })?;
            mnemonic_freq.insert(interned, r.take_f32()?);
        }
        let n_operands = r.take_len(1)?;
        let mut operand_freq = HashMap::with_capacity(n_operands);
        for _ in 0..n_operands {
            let operand = r.take_bytes()?.to_vec();
            operand_freq.insert(operand, r.take_f32()?);
        }
        let n_gas = r.take_len(12)?; // 8 key bytes + 4 value bytes per entry
        let mut gas_freq = HashMap::with_capacity(n_gas);
        for _ in 0..n_gas {
            let cost = r.take_u64()?;
            gas_freq.insert(cost, r.take_f32()?);
        }
        Ok(FreqLookup {
            mnemonic_freq,
            operand_freq,
            gas_freq,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phishinghook_evm::disasm::disassemble;
    use proptest::prelude::*;

    #[test]
    fn r2d2_maps_bytes_to_channels() {
        let img = r2d2_image(&[255, 0, 128], 2);
        let hw = 4;
        assert_eq!(img.len(), 12);
        assert_eq!(img[0], 1.0); // R of pixel 0
        assert_eq!(img[hw], 0.0); // G of pixel 0
        assert!((img[2 * hw] - 128.0 / 255.0).abs() < 1e-6); // B of pixel 0
    }

    #[test]
    fn r2d2_zero_pads_and_truncates() {
        let short = r2d2_image(&[10], 4);
        assert_eq!(short.iter().filter(|&&v| v != 0.0).count(), 1);
        let long = r2d2_image(&vec![1u8; 1000], 2); // 3*4 = 12 bytes kept
        assert_eq!(long.len(), 12);
        assert!(long.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn freq_lookup_prefers_frequent_mnemonics() {
        // PUSH1 appears twice as often as MSTORE.
        let train: Vec<&[u8]> = vec![&[0x60, 0x01, 0x60, 0x02, 0x52]];
        let lookup = FreqLookup::fit(&train);
        let ins = disassemble(&[0x60, 0x01, 0x52]);
        let (r_push, _, _) = lookup.pixel(&ins[0]);
        let (r_mstore, _, _) = lookup.pixel(&ins[1]);
        assert!(r_push > r_mstore, "push={r_push} mstore={r_mstore}");
        assert_eq!(r_push, 1.0); // most frequent mnemonic saturates
    }

    #[test]
    fn unseen_keys_are_zero() {
        let train: Vec<&[u8]> = vec![&[0x60, 0x01]];
        let lookup = FreqLookup::fit(&train);
        let ins = disassemble(&[0x00]); // STOP never seen in training
        assert_eq!(lookup.pixel(&ins[0]), (0.0, 0.0, 0.0));
    }

    #[test]
    fn freq_image_places_one_pixel_per_instruction() {
        let code = [0x60, 0x80, 0x60, 0x40, 0x52];
        let lookup = FreqLookup::fit(&[&code]);
        let img = freq_image(&code, &lookup, 4);
        let hw = 16;
        // Three instructions → three non-zero R pixels.
        let r_nonzero = img[..hw].iter().filter(|&&v| v > 0.0).count();
        assert_eq!(r_nonzero, 3);
    }

    #[test]
    fn snapshot_round_trip_is_identity_and_deterministic() {
        use phishinghook_persist::{from_envelope, to_envelope};
        let code = [0x60, 0x80, 0x60, 0x40, 0x52, 0x00, 0x01];
        let lookup = FreqLookup::fit(&[&code]);
        let bytes = to_envelope("freq", &lookup);
        assert_eq!(bytes, to_envelope("freq", &lookup.clone()));
        let back: FreqLookup = from_envelope("freq", &bytes).expect("round-trips");
        assert_eq!(back, lookup);
        assert_eq!(freq_image(&code, &back, 4), freq_image(&code, &lookup, 4));
    }

    proptest! {
        #[test]
        fn images_are_bounded(code in proptest::collection::vec(any::<u8>(), 0..512)) {
            for v in r2d2_image(&code, 8) {
                prop_assert!((0.0..=1.0).contains(&v));
            }
            let lookup = FreqLookup::fit(&[code.as_slice()]);
            for v in freq_image(&code, &lookup, 8) {
                prop_assert!((0.0..=1.0).contains(&v));
            }
        }

        #[test]
        fn image_sizes_are_exact(code in proptest::collection::vec(any::<u8>(), 0..128), size in 1usize..12) {
            prop_assert_eq!(r2d2_image(&code, size).len(), 3 * size * size);
        }

        #[test]
        fn streamed_pixels_match_collected(code in proptest::collection::vec(any::<u8>(), 0..256)) {
            let lookup = FreqLookup::fit(&[code.as_slice()]);
            for (op, ins) in disasm_iter(&code).zip(disassemble(&code)) {
                prop_assert_eq!(lookup.pixel_op(&op), lookup.pixel(&ins));
            }
        }
    }
}
