//! Plain-text table rendering and CSV output for the experiment binaries.

use std::fmt::Write as _;
use std::path::Path;

/// Renders a fixed-width table with a header row.
///
/// # Panics
/// Panics when a row's width differs from the header's.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "ragged table row");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.chars().count());
        }
    }
    let mut out = String::new();
    let write_row = |out: &mut String, cells: &[String]| {
        for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            let pad = w - cell.chars().count();
            out.push_str(cell);
            for _ in 0..pad {
                out.push(' ');
            }
        }
        out.push('\n');
    };
    let header_cells: Vec<String> = header.iter().map(|s| (*s).to_owned()).collect();
    write_row(&mut out, &header_cells);
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    for _ in 0..total {
        out.push('-');
    }
    out.push('\n');
    for row in rows {
        write_row(&mut out, row);
    }
    out
}

/// Serializes rows as CSV (no quoting; cells must not contain commas).
pub fn to_csv(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    writeln!(out, "{}", header.join(",")).expect("write to String");
    for row in rows {
        writeln!(out, "{}", row.join(",")).expect("write to String");
    }
    out
}

/// Writes CSV into `results/<name>.csv` relative to the workspace root
/// (best effort: falls back to the current directory if `results/` cannot
/// be created). Returns the path written.
pub fn save_csv(name: &str, header: &[&str], rows: &[Vec<String>]) -> std::io::Result<String> {
    let dir = if Path::new("results").exists() || std::fs::create_dir_all("results").is_ok() {
        "results"
    } else {
        "."
    };
    let path = format!("{dir}/{name}.csv");
    std::fs::write(&path, to_csv(header, rows))?;
    Ok(path)
}

/// Formats a fraction as a percentage with two decimals (Table II style).
pub fn pct(v: f64) -> String {
    format!("{:.2}", v * 100.0)
}

/// Formats a p-value in scientific notation like the paper's Table III.
pub fn sci(v: f64) -> String {
    if v == 0.0 {
        "0".to_owned()
    } else if v >= 0.001 {
        format!("{v:.4}")
    } else {
        format!("{v:.2e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = render_table(
            &["Model", "Acc"],
            &[
                vec!["Random Forest".into(), "93.63".into()],
                vec!["k-NN".into(), "90.60".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Model"));
        assert!(lines[2].starts_with("Random Forest  93.63"));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_row_panics() {
        let _ = render_table(&["a", "b"], &[vec!["x".into()]]);
    }

    #[test]
    fn csv_roundtrip_shape() {
        let csv = to_csv(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(csv, "a,b\n1,2\n");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.9363), "93.63");
        assert_eq!(sci(0.25), "0.2500");
        assert_eq!(sci(7.35e-70), "7.35e-70");
        assert_eq!(sci(0.0), "0");
    }
}
