//! The model evaluation module (MEM): trains every detector under repeated
//! stratified cross-validation and records the paper's metrics plus wall-
//! clock costs.

use crate::cv::stratified_kfold;
use crate::metrics::BinaryMetrics;
use phishinghook_models::{Category, Detector};
use std::time::Instant;

/// One (model, run, fold) evaluation outcome — the unit of the paper's
/// "30 trials per model".
#[derive(Debug, Clone, PartialEq)]
pub struct TrialResult {
    /// Model name (Table II row).
    pub model: String,
    /// Model category.
    pub category: Category,
    /// Run index (0-based).
    pub run: usize,
    /// Fold index (0-based).
    pub fold: usize,
    /// Test-fold metrics.
    pub metrics: BinaryMetrics,
    /// Training wall-clock seconds.
    pub train_secs: f64,
    /// Inference wall-clock seconds over the test fold.
    pub infer_secs: f64,
}

/// A factory producing fresh detectors for a given seed; models must be
/// rebuilt per fold so no state leaks between folds.
pub type DetectorFactory<'a> = dyn Fn(u64) -> Vec<Box<dyn Detector>> + 'a;

/// Runs the full MEM protocol: `runs` repetitions of stratified `folds`-fold
/// cross-validation for every detector the factory produces.
///
/// # Panics
/// Panics when `codes.len() != labels.len()`.
pub fn evaluate(
    codes: &[&[u8]],
    labels: &[usize],
    factory: &DetectorFactory<'_>,
    folds: usize,
    runs: usize,
    seed: u64,
) -> Vec<TrialResult> {
    assert_eq!(codes.len(), labels.len(), "one label per bytecode");
    let mut results = Vec::new();
    for run in 0..runs {
        let run_seed = seed.wrapping_add(run as u64).wrapping_mul(0x9E37_79B9);
        let splits = stratified_kfold(labels, folds, run_seed);
        for (fold_idx, fold) in splits.iter().enumerate() {
            let train_x: Vec<&[u8]> = fold.train.iter().map(|&i| codes[i]).collect();
            let train_y: Vec<usize> = fold.train.iter().map(|&i| labels[i]).collect();
            let test_x: Vec<&[u8]> = fold.test.iter().map(|&i| codes[i]).collect();
            let test_y: Vec<usize> = fold.test.iter().map(|&i| labels[i]).collect();

            for mut detector in factory(run_seed ^ fold_idx as u64) {
                let t0 = Instant::now();
                detector.fit(&train_x, &train_y);
                let train_secs = t0.elapsed().as_secs_f64();

                let t1 = Instant::now();
                let predictions = detector.predict(&test_x);
                let infer_secs = t1.elapsed().as_secs_f64();

                results.push(TrialResult {
                    model: detector.name().to_owned(),
                    category: detector.category(),
                    run,
                    fold: fold_idx,
                    metrics: BinaryMetrics::from_predictions(&predictions, &test_y),
                    train_secs,
                    infer_secs,
                });
            }
        }
    }
    results
}

/// Per-model averages over all trials — the rows of the paper's Table II.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSummary {
    /// Model name.
    pub model: String,
    /// Model category.
    pub category: Category,
    /// Mean metrics over trials.
    pub metrics: BinaryMetrics,
    /// Mean training seconds.
    pub train_secs: f64,
    /// Mean inference seconds.
    pub infer_secs: f64,
    /// Number of trials aggregated.
    pub trials: usize,
}

/// Aggregates trials into per-model summaries, preserving first-seen order.
pub fn summarize(results: &[TrialResult]) -> Vec<ModelSummary> {
    let mut order: Vec<String> = Vec::new();
    for r in results {
        if !order.contains(&r.model) {
            order.push(r.model.clone());
        }
    }
    order
        .into_iter()
        .map(|name| {
            let trials: Vec<&TrialResult> = results.iter().filter(|r| r.model == name).collect();
            let n = trials.len() as f64;
            let mean = |f: fn(&TrialResult) -> f64| trials.iter().map(|t| f(t)).sum::<f64>() / n;
            ModelSummary {
                category: trials[0].category,
                metrics: BinaryMetrics {
                    accuracy: mean(|t| t.metrics.accuracy),
                    precision: mean(|t| t.metrics.precision),
                    recall: mean(|t| t.metrics.recall),
                    f1: mean(|t| t.metrics.f1),
                },
                train_secs: mean(|t| t.train_secs),
                infer_secs: mean(|t| t.infer_secs),
                trials: trials.len(),
                model: name,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use phishinghook_data::{Corpus, CorpusConfig};
    use phishinghook_models::HscDetector;

    fn corpus(n: usize) -> (Vec<Vec<u8>>, Vec<usize>) {
        let c = Corpus::generate(&CorpusConfig {
            n_contracts: n,
            seed: 12,
            ..Default::default()
        });
        (
            c.records.iter().map(|r| r.bytecode.clone()).collect(),
            c.records.iter().map(|r| r.label.as_index()).collect(),
        )
    }

    #[test]
    fn evaluate_produces_folds_times_runs_trials() {
        let (codes, labels) = corpus(120);
        let refs: Vec<&[u8]> = codes.iter().map(Vec::as_slice).collect();
        let factory = |seed: u64| -> Vec<Box<dyn Detector>> {
            vec![
                Box::new(HscDetector::random_forest(seed)),
                Box::new(HscDetector::knn()),
            ]
        };
        let results = evaluate(&refs, &labels, &factory, 3, 2, 7);
        assert_eq!(results.len(), 3 * 2 * 2);
        assert!(results.iter().all(|r| r.metrics.accuracy > 0.5));
        assert!(results
            .iter()
            .all(|r| r.train_secs >= 0.0 && r.infer_secs >= 0.0));
    }

    #[test]
    fn summaries_average_trials() {
        let (codes, labels) = corpus(120);
        let refs: Vec<&[u8]> = codes.iter().map(Vec::as_slice).collect();
        let factory = |seed: u64| -> Vec<Box<dyn Detector>> {
            vec![Box::new(HscDetector::random_forest(seed))]
        };
        let results = evaluate(&refs, &labels, &factory, 3, 2, 7);
        let summaries = summarize(&results);
        assert_eq!(summaries.len(), 1);
        assert_eq!(summaries[0].trials, 6);
        let manual: f64 =
            results.iter().map(|r| r.metrics.accuracy).sum::<f64>() / results.len() as f64;
        assert!((summaries[0].metrics.accuracy - manual).abs() < 1e-12);
    }

    #[test]
    fn deterministic_for_deterministic_models() {
        let (codes, labels) = corpus(100);
        let refs: Vec<&[u8]> = codes.iter().map(Vec::as_slice).collect();
        let factory = |seed: u64| -> Vec<Box<dyn Detector>> {
            vec![Box::new(HscDetector::random_forest(seed))]
        };
        let a = evaluate(&refs, &labels, &factory, 3, 1, 9);
        let b = evaluate(&refs, &labels, &factory, 3, 1, 9);
        let ma: Vec<f64> = a.iter().map(|r| r.metrics.accuracy).collect();
        let mb: Vec<f64> = b.iter().map(|r| r.metrics.accuracy).collect();
        assert_eq!(ma, mb);
    }
}
