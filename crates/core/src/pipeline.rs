//! The model evaluation module (MEM): trains every detector under repeated
//! stratified cross-validation and records the paper's metrics plus wall-
//! clock costs.

use crate::cv::stratified_kfold;
use crate::metrics::BinaryMetrics;
use phishinghook_models::{Category, Detector, FoldFeatures};
use std::time::Instant;

/// One (model, run, fold) evaluation outcome — the unit of the paper's
/// "30 trials per model".
#[derive(Debug, Clone, PartialEq)]
pub struct TrialResult {
    /// Model name (Table II row).
    pub model: String,
    /// Model category.
    pub category: Category,
    /// Run index (0-based).
    pub run: usize,
    /// Fold index (0-based).
    pub fold: usize,
    /// Test-fold metrics.
    pub metrics: BinaryMetrics,
    /// Training wall-clock seconds. For detectors on a shared feature
    /// family (the HSCs), this includes the fold's one-time feature
    /// extraction — of both splits — whether this model built it or reused
    /// it, so timings stay comparable across models.
    pub train_secs: f64,
    /// Inference wall-clock seconds over the test fold. For shared-feature
    /// detectors this is pure model inference (the test-split transform is
    /// part of `train_secs`' extraction term).
    pub infer_secs: f64,
}

/// A factory producing fresh detectors for a given seed; models must be
/// rebuilt per fold so no state leaks between folds. `Sync` because the
/// evaluation pipeline invokes it from worker threads, one call per
/// (run, fold) cell.
pub type DetectorFactory<'a> = dyn Fn(u64) -> Vec<Box<dyn Detector>> + Sync + 'a;

/// One independent (run, fold) unit of work.
struct Cell {
    run: usize,
    run_seed: u64,
    fold_idx: usize,
    fold: crate::cv::Fold,
}

/// Evaluates every detector of one cell, sharing feature extraction through
/// a [`FoldFeatures`] store so detectors of one family (e.g. the seven
/// HSCs) disassemble and featurize the fold once instead of once each.
///
/// Timing attribution: a detector that *reuses* already-built shared
/// features has the one-time build cost added to its `train_secs`, so the
/// per-model timing columns stay comparable to a detector extracting for
/// itself (the seed semantics) — the extraction is only *performed* once,
/// but *reported* for every model that depends on it.
fn evaluate_cell(
    codes: &[&[u8]],
    labels: &[usize],
    factory: &DetectorFactory<'_>,
    cell: &Cell,
) -> Vec<TrialResult> {
    let train_x: Vec<&[u8]> = cell.fold.train.iter().map(|&i| codes[i]).collect();
    let train_y: Vec<usize> = cell.fold.train.iter().map(|&i| labels[i]).collect();
    let test_x: Vec<&[u8]> = cell.fold.test.iter().map(|&i| codes[i]).collect();
    let test_y: Vec<usize> = cell.fold.test.iter().map(|&i| labels[i]).collect();

    let features = FoldFeatures::new(&train_x, &test_x);
    let mut results = Vec::new();
    for mut detector in factory(cell.run_seed ^ cell.fold_idx as u64) {
        let (hits_before, _) = features.histogram_usage();
        let t0 = Instant::now();
        detector.fit_fold(&features, &train_y);
        let mut train_secs = t0.elapsed().as_secs_f64();
        let (hits_after, build_secs) = features.histogram_usage();
        let reused_shared = hits_after > hits_before && hits_before > 0;
        if reused_shared {
            // The builder's elapsed time already contains the build.
            train_secs += build_secs;
        }

        let t1 = Instant::now();
        let predictions = detector.predict_fold(&features);
        let infer_secs = t1.elapsed().as_secs_f64();

        results.push(TrialResult {
            model: detector.name().to_owned(),
            category: detector.category(),
            run: cell.run,
            fold: cell.fold_idx,
            metrics: BinaryMetrics::from_predictions(&predictions, &test_y),
            train_secs,
            infer_secs,
        });
    }
    results
}

/// Runs the full MEM protocol: `runs` repetitions of stratified `folds`-fold
/// cross-validation for every detector the factory produces.
///
/// The (run, fold) cells are independent; they are dispatched across
/// [`std::thread::available_parallelism`] worker threads with
/// [`std::thread::scope`]. Results are assembled in (run, fold, detector)
/// order regardless of scheduling, so the output is deterministic for
/// deterministic detectors. Note that detectors with internal thread pools
/// (e.g. random forests) run nested inside cell workers, so wall-clock
/// timing columns measured on a saturated machine include scheduling
/// contention; the reported *metrics* are unaffected.
///
/// # Panics
/// Panics when `codes.len() != labels.len()`.
pub fn evaluate(
    codes: &[&[u8]],
    labels: &[usize],
    factory: &DetectorFactory<'_>,
    folds: usize,
    runs: usize,
    seed: u64,
) -> Vec<TrialResult> {
    assert_eq!(codes.len(), labels.len(), "one label per bytecode");
    let mut cells = Vec::with_capacity(runs * folds);
    for run in 0..runs {
        let run_seed = seed.wrapping_add(run as u64).wrapping_mul(0x9E37_79B9);
        for (fold_idx, fold) in stratified_kfold(labels, folds, run_seed)
            .into_iter()
            .enumerate()
        {
            cells.push(Cell {
                run,
                run_seed,
                fold_idx,
                fold,
            });
        }
    }

    let threads = std::thread::available_parallelism()
        .map_or(1, std::num::NonZeroUsize::get)
        .min(cells.len().max(1));
    let mut slots: Vec<Option<Vec<TrialResult>>> = (0..cells.len()).map(|_| None).collect();
    if threads <= 1 {
        for (slot, cell) in slots.iter_mut().zip(&cells) {
            *slot = Some(evaluate_cell(codes, labels, factory, cell));
        }
    } else {
        let per_thread = cells.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for (chunk_id, chunk) in slots.chunks_mut(per_thread).enumerate() {
                let cells = &cells;
                scope.spawn(move || {
                    for (k, slot) in chunk.iter_mut().enumerate() {
                        let cell = &cells[chunk_id * per_thread + k];
                        *slot = Some(evaluate_cell(codes, labels, factory, cell));
                    }
                });
            }
        });
    }
    slots
        .into_iter()
        .flat_map(|s| s.expect("all cells evaluated"))
        .collect()
}

/// Per-model averages over all trials — the rows of the paper's Table II.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSummary {
    /// Model name.
    pub model: String,
    /// Model category.
    pub category: Category,
    /// Mean metrics over trials.
    pub metrics: BinaryMetrics,
    /// Mean training seconds.
    pub train_secs: f64,
    /// Mean inference seconds.
    pub infer_secs: f64,
    /// Number of trials aggregated.
    pub trials: usize,
}

/// Aggregates trials into per-model summaries, preserving first-seen order.
pub fn summarize(results: &[TrialResult]) -> Vec<ModelSummary> {
    let mut order: Vec<String> = Vec::new();
    for r in results {
        if !order.contains(&r.model) {
            order.push(r.model.clone());
        }
    }
    order
        .into_iter()
        .map(|name| {
            let trials: Vec<&TrialResult> = results.iter().filter(|r| r.model == name).collect();
            let n = trials.len() as f64;
            let mean = |f: fn(&TrialResult) -> f64| trials.iter().map(|t| f(t)).sum::<f64>() / n;
            ModelSummary {
                category: trials[0].category,
                metrics: BinaryMetrics {
                    accuracy: mean(|t| t.metrics.accuracy),
                    precision: mean(|t| t.metrics.precision),
                    recall: mean(|t| t.metrics.recall),
                    f1: mean(|t| t.metrics.f1),
                },
                train_secs: mean(|t| t.train_secs),
                infer_secs: mean(|t| t.infer_secs),
                trials: trials.len(),
                model: name,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use phishinghook_data::{Corpus, CorpusConfig};
    use phishinghook_models::HscDetector;

    fn corpus(n: usize) -> (Vec<Vec<u8>>, Vec<usize>) {
        let c = Corpus::generate(&CorpusConfig {
            n_contracts: n,
            seed: 12,
            ..Default::default()
        });
        (
            c.records.iter().map(|r| r.bytecode.clone()).collect(),
            c.records.iter().map(|r| r.label.as_index()).collect(),
        )
    }

    #[test]
    fn evaluate_produces_folds_times_runs_trials() {
        let (codes, labels) = corpus(120);
        let refs: Vec<&[u8]> = codes.iter().map(Vec::as_slice).collect();
        let factory = |seed: u64| -> Vec<Box<dyn Detector>> {
            vec![
                Box::new(HscDetector::random_forest(seed)),
                Box::new(HscDetector::knn()),
            ]
        };
        let results = evaluate(&refs, &labels, &factory, 3, 2, 7);
        assert_eq!(results.len(), 3 * 2 * 2);
        assert!(results.iter().all(|r| r.metrics.accuracy > 0.5));
        assert!(results
            .iter()
            .all(|r| r.train_secs >= 0.0 && r.infer_secs >= 0.0));
    }

    #[test]
    fn summaries_average_trials() {
        let (codes, labels) = corpus(120);
        let refs: Vec<&[u8]> = codes.iter().map(Vec::as_slice).collect();
        let factory = |seed: u64| -> Vec<Box<dyn Detector>> {
            vec![Box::new(HscDetector::random_forest(seed))]
        };
        let results = evaluate(&refs, &labels, &factory, 3, 2, 7);
        let summaries = summarize(&results);
        assert_eq!(summaries.len(), 1);
        assert_eq!(summaries[0].trials, 6);
        let manual: f64 =
            results.iter().map(|r| r.metrics.accuracy).sum::<f64>() / results.len() as f64;
        assert!((summaries[0].metrics.accuracy - manual).abs() < 1e-12);
    }

    #[test]
    fn deterministic_for_deterministic_models() {
        let (codes, labels) = corpus(100);
        let refs: Vec<&[u8]> = codes.iter().map(Vec::as_slice).collect();
        let factory = |seed: u64| -> Vec<Box<dyn Detector>> {
            vec![Box::new(HscDetector::random_forest(seed))]
        };
        let a = evaluate(&refs, &labels, &factory, 3, 1, 9);
        let b = evaluate(&refs, &labels, &factory, 3, 1, 9);
        let ma: Vec<f64> = a.iter().map(|r| r.metrics.accuracy).collect();
        let mb: Vec<f64> = b.iter().map(|r| r.metrics.accuracy).collect();
        assert_eq!(ma, mb);
    }
}
