//! Hyperparameter search (the paper's Optuna substitute).
//!
//! The paper "conducted grid search over an arbitrary search space on the
//! same task as the main evaluation, using 10-fold cross-validation". This
//! module provides deterministic grid and random search over named numeric
//! parameters with any user-supplied objective (typically CV accuracy).

use phishinghook_ml::SplitMix;
use std::collections::BTreeMap;

/// One hyperparameter assignment (name → value).
pub type Params = BTreeMap<String, f64>;

/// A search space: each parameter with its candidate values.
#[derive(Debug, Clone, Default)]
pub struct SearchSpace {
    dims: Vec<(String, Vec<f64>)>,
}

impl SearchSpace {
    /// Creates an empty space.
    pub fn new() -> Self {
        SearchSpace::default()
    }

    /// Adds a parameter with candidate values (builder style).
    pub fn with(mut self, name: &str, values: &[f64]) -> Self {
        assert!(!values.is_empty(), "parameter `{name}` needs candidates");
        self.dims.push((name.to_owned(), values.to_vec()));
        self
    }

    /// Number of grid points.
    pub fn grid_size(&self) -> usize {
        self.dims.iter().map(|(_, v)| v.len()).product()
    }

    /// Enumerates the full Cartesian grid, in deterministic order.
    pub fn grid(&self) -> Vec<Params> {
        let mut combos = vec![Params::new()];
        for (name, values) in &self.dims {
            let mut next = Vec::with_capacity(combos.len() * values.len());
            for combo in &combos {
                for &v in values {
                    let mut c = combo.clone();
                    c.insert(name.clone(), v);
                    next.push(c);
                }
            }
            combos = next;
        }
        combos
    }

    /// Samples `n` random grid points (with replacement), deterministic
    /// under `seed`.
    pub fn sample(&self, n: usize, seed: u64) -> Vec<Params> {
        let mut rng = SplitMix::new(seed);
        (0..n)
            .map(|_| {
                self.dims
                    .iter()
                    .map(|(name, values)| (name.clone(), values[rng.below(values.len())]))
                    .collect()
            })
            .collect()
    }
}

/// Outcome of a search.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResult {
    /// The best assignment found.
    pub best_params: Params,
    /// Its objective value.
    pub best_score: f64,
    /// Every `(params, score)` trial, in evaluation order.
    pub trials: Vec<(Params, f64)>,
}

/// Exhaustive grid search maximizing `objective`.
///
/// # Panics
/// Panics on an empty search space.
pub fn grid_search(space: &SearchSpace, mut objective: impl FnMut(&Params) -> f64) -> SearchResult {
    run_search(space.grid(), &mut objective)
}

/// Random search over `n` sampled points, maximizing `objective`.
pub fn random_search(
    space: &SearchSpace,
    n: usize,
    seed: u64,
    mut objective: impl FnMut(&Params) -> f64,
) -> SearchResult {
    run_search(space.sample(n, seed), &mut objective)
}

fn run_search(candidates: Vec<Params>, objective: &mut dyn FnMut(&Params) -> f64) -> SearchResult {
    assert!(!candidates.is_empty(), "empty search space");
    let mut trials = Vec::with_capacity(candidates.len());
    let mut best: Option<(Params, f64)> = None;
    for params in candidates {
        let score = objective(&params);
        trials.push((params.clone(), score));
        if best.as_ref().is_none_or(|(_, s)| score > *s) {
            best = Some((params, score));
        }
    }
    let (best_params, best_score) = best.expect("at least one candidate");
    SearchResult {
        best_params,
        best_score,
        trials,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> SearchSpace {
        SearchSpace::new()
            .with("depth", &[2.0, 4.0, 8.0])
            .with("lr", &[0.1, 0.2])
    }

    #[test]
    fn grid_enumerates_cartesian_product() {
        let s = space();
        assert_eq!(s.grid_size(), 6);
        let grid = s.grid();
        assert_eq!(grid.len(), 6);
        // All combinations distinct.
        for i in 0..grid.len() {
            for j in i + 1..grid.len() {
                assert_ne!(grid[i], grid[j]);
            }
        }
    }

    #[test]
    fn grid_search_finds_known_optimum() {
        // Objective peaks at depth=4, lr=0.2.
        let result = grid_search(&space(), |p| {
            -(p["depth"] - 4.0).powi(2) - (p["lr"] - 0.2).powi(2)
        });
        assert_eq!(result.best_params["depth"], 4.0);
        assert_eq!(result.best_params["lr"], 0.2);
        assert_eq!(result.trials.len(), 6);
    }

    #[test]
    fn random_search_is_deterministic() {
        let a = random_search(&space(), 10, 42, |p| p["depth"]);
        let b = random_search(&space(), 10, 42, |p| p["depth"]);
        assert_eq!(a.trials, b.trials);
        assert_eq!(a.best_params["depth"], 8.0);
    }

    #[test]
    fn best_score_is_max_of_trials() {
        let result = grid_search(&space(), |p| p["depth"] * p["lr"]);
        let max = result
            .trials
            .iter()
            .map(|(_, s)| *s)
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(result.best_score, max);
    }

    #[test]
    #[should_panic(expected = "needs candidates")]
    fn empty_parameter_panics() {
        let _ = SearchSpace::new().with("x", &[]);
    }
}
