//! Stratified k-fold cross-validation (the paper's 10-fold × 3-run
//! evaluation protocol).

use phishinghook_ml::SplitMix;

/// One train/test index split.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fold {
    /// Indices of training samples.
    pub train: Vec<usize>,
    /// Indices of test samples.
    pub test: Vec<usize>,
}

/// Produces `k` stratified folds: each fold's test set preserves the class
/// balance of `labels`.
///
/// # Panics
/// Panics when `k < 2` or `k` exceeds the size of the smallest class.
pub fn stratified_kfold(labels: &[usize], k: usize, seed: u64) -> Vec<Fold> {
    assert!(k >= 2, "k-fold needs k >= 2");
    let mut rng = SplitMix::new(seed);
    // Shuffle within each class, then deal class members round-robin.
    let mut per_class: Vec<Vec<usize>> = Vec::new();
    for (i, &y) in labels.iter().enumerate() {
        if y >= per_class.len() {
            per_class.resize_with(y + 1, Vec::new);
        }
        per_class[y].push(i);
    }
    for class in &per_class {
        assert!(
            class.is_empty() || class.len() >= k,
            "class with {} samples cannot fill {k} folds",
            class.len()
        );
    }
    let mut fold_of = vec![0usize; labels.len()];
    for class in &mut per_class {
        rng.shuffle(class);
        for (pos, &idx) in class.iter().enumerate() {
            fold_of[idx] = pos % k;
        }
    }
    (0..k)
        .map(|f| {
            let test: Vec<usize> = (0..labels.len()).filter(|&i| fold_of[i] == f).collect();
            let train: Vec<usize> = (0..labels.len()).filter(|&i| fold_of[i] != f).collect();
            Fold { train, test }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(n: usize) -> Vec<usize> {
        (0..n).map(|i| i % 2).collect()
    }

    #[test]
    fn folds_partition_the_dataset() {
        let y = labels(100);
        let folds = stratified_kfold(&y, 10, 1);
        assert_eq!(folds.len(), 10);
        let mut seen = [false; 100];
        for f in &folds {
            for &i in &f.test {
                assert!(!seen[i], "index {i} in two test folds");
                seen[i] = true;
            }
            assert_eq!(f.train.len() + f.test.len(), 100);
            // Train and test are disjoint.
            for &i in &f.test {
                assert!(!f.train.contains(&i));
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn folds_are_stratified() {
        // 60/40 imbalance must be preserved in every test fold.
        let y: Vec<usize> = (0..100).map(|i| usize::from(i < 40)).collect();
        for f in stratified_kfold(&y, 5, 2) {
            let positives = f.test.iter().filter(|&&i| y[i] == 1).count();
            assert_eq!(positives, 8, "test fold has {positives} positives");
            assert_eq!(f.test.len(), 20);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let y = labels(50);
        assert_eq!(stratified_kfold(&y, 5, 3), stratified_kfold(&y, 5, 3));
        assert_ne!(stratified_kfold(&y, 5, 3), stratified_kfold(&y, 5, 4));
    }

    #[test]
    #[should_panic(expected = "cannot fill")]
    fn too_many_folds_panics() {
        let y = vec![0, 0, 0, 1, 1, 1];
        let _ = stratified_kfold(&y, 4, 1);
    }

    #[test]
    fn uneven_sizes_differ_by_at_most_one() {
        let y = labels(103);
        let folds = stratified_kfold(&y, 10, 5);
        let sizes: Vec<usize> = folds.iter().map(|f| f.test.len()).collect();
        let min = sizes.iter().min().unwrap();
        let max = sizes.iter().max().unwrap();
        assert!(max - min <= 2, "{sizes:?}");
    }
}
