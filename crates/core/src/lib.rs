//! The PhishingHook framework: pipelines, evaluation protocol, tuning and
//! the experiment drivers that regenerate every table and figure of the
//! paper.
//!
//! Architecture (paper Fig. 1): data gathering and the bytecode extraction
//! module live in `phishinghook-data`; the bytecode disassembler module in
//! `phishinghook-evm`; the 16 models in `phishinghook-models`; the post hoc
//! statistics in `phishinghook-stats`. This crate is the conductor:
//!
//! * [`cv`] — stratified k-fold cross-validation (10-fold × 3 runs at paper
//!   scale);
//! * [`metrics`] — accuracy / precision / recall / F1;
//! * [`pipeline`] — the model evaluation module (MEM): trains every
//!   detector per fold and records metrics and wall-clock costs;
//! * [`tuning`] — grid/random hyperparameter search (Optuna substitute);
//! * [`experiments`] — one driver per table/figure (II, III, 2–9);
//! * [`report`] — fixed-width tables and CSV output for the binaries.
//!
//! # Quickstart
//!
//! ```
//! use phishinghook_core::experiments::{dataset_stats, ExperimentScale};
//!
//! let scale = ExperimentScale { n_contracts: 120, ..ExperimentScale::smoke() };
//! let stats = dataset_stats::run(&scale);
//! assert_eq!(stats.monthly.len(), 13);
//! ```

pub mod cv;
pub mod experiments;
pub mod metrics;
pub mod pipeline;
pub mod report;
pub mod tuning;

pub use cv::stratified_kfold;
pub use metrics::{BinaryMetrics, Confusion, METRIC_NAMES};
pub use pipeline::{evaluate, summarize, ModelSummary, TrialResult};
pub use tuning::{grid_search, random_search, SearchSpace};
