//! Table II: averaged performance metrics for all 16 models.

use super::ExperimentScale;
use crate::pipeline::{evaluate, summarize, ModelSummary, TrialResult};
use phishinghook_data::{Corpus, CorpusConfig};
use phishinghook_models::{all_detectors, Detector};

/// The paper's Table II reference values: `(model, accuracy %, f1 %,
/// precision %, recall %)`. Used by the harness to report paper-vs-measured
/// side by side.
pub const PAPER_TABLE2: [(&str, f64, f64, f64, f64); 16] = [
    ("Random Forest", 93.63, 93.49, 94.23, 92.76),
    ("k-NN", 90.60, 90.62, 89.31, 91.99),
    ("SVM", 92.60, 92.32, 94.53, 90.21),
    ("Logistic Regression", 83.91, 84.13, 82.03, 86.38),
    ("XGBoost", 93.43, 93.30, 93.74, 92.88),
    ("LightGBM", 93.39, 93.26, 93.80, 92.73),
    ("CatBoost", 93.10, 92.95, 93.62, 92.30),
    ("ECA+EfficientNet", 86.63, 86.16, 86.88, 85.52),
    ("ViT+R2D2", 85.52, 85.14, 85.20, 85.15),
    ("ViT+Freq", 79.11, 78.90, 77.71, 80.23),
    ("SCSGuard", 90.46, 90.12, 90.95, 89.35),
    ("GPT-2α", 89.95, 89.60, 90.39, 88.91),
    ("T5α", 89.67, 89.28, 90.25, 88.35),
    ("GPT-2β", 88.65, 88.36, 88.40, 88.36),
    ("T5β", 85.41, 83.47, 87.49, 85.40),
    ("ESCORT", 55.91, 55.82, 55.78, 55.91),
];

/// Outcome of the Table II experiment.
#[derive(Debug, Clone)]
pub struct MainEvaluation {
    /// Every (model, run, fold) trial.
    pub trials: Vec<TrialResult>,
    /// Per-model averages (Table II rows).
    pub summaries: Vec<ModelSummary>,
}

/// Runs the full 16-model evaluation at the given scale.
pub fn run(scale: &ExperimentScale) -> MainEvaluation {
    let corpus = Corpus::generate(&CorpusConfig {
        n_contracts: scale.n_contracts,
        seed: scale.seed,
        ..Default::default()
    });
    let (codes, labels) = corpus.as_dataset();
    run_on(&codes, &labels, scale)
}

/// Runs the evaluation over an externally supplied dataset.
pub fn run_on(codes: &[&[u8]], labels: &[usize], scale: &ExperimentScale) -> MainEvaluation {
    let preset = scale.preset;
    let factory = move |seed: u64| -> Vec<Box<dyn Detector>> { all_detectors(preset, seed) };
    let trials = evaluate(codes, labels, &factory, scale.folds, scale.runs, scale.seed);
    let summaries = summarize(&trials);
    MainEvaluation { trials, summaries }
}

/// The paper's headline category ordering check: HSC mean accuracy ≥ LM
/// mean ≥ VM mean, with ESCORT far below.
pub fn category_means(summaries: &[ModelSummary]) -> Vec<(phishinghook_models::Category, f64)> {
    use phishinghook_models::Category;
    [
        Category::Histogram,
        Category::Language,
        Category::Vision,
        Category::VulnerabilityDetection,
    ]
    .into_iter()
    .map(|cat| {
        let of_cat: Vec<f64> = summaries
            .iter()
            .filter(|s| s.category == cat)
            .map(|s| s.metrics.accuracy)
            .collect();
        let mean = of_cat.iter().sum::<f64>() / of_cat.len().max(1) as f64;
        (cat, mean)
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use phishinghook_models::Category;

    #[test]
    fn paper_reference_has_all_models() {
        assert_eq!(PAPER_TABLE2.len(), 16);
        assert_eq!(PAPER_TABLE2[0].0, "Random Forest");
        assert_eq!(PAPER_TABLE2[15].0, "ESCORT");
    }

    #[test]
    fn hsc_only_smoke_run() {
        // Full 16-model runs live in the experiment binaries; here we check
        // the driver end to end with the HSC subset for speed.
        let corpus = Corpus::generate(&CorpusConfig {
            n_contracts: 160,
            seed: 1,
            ..Default::default()
        });
        let (codes, labels) = corpus.as_dataset();
        let factory = |seed: u64| -> Vec<Box<dyn Detector>> {
            let registry = phishinghook_models::DetectorRegistry::global();
            registry
                .hsc_specs()
                .iter()
                .map(|spec| Box::new(registry.build(spec, seed)) as Box<dyn Detector>)
                .collect()
        };
        let trials = evaluate(&codes, &labels, &factory, 3, 1, 5);
        assert_eq!(trials.len(), 7 * 3);
        let summaries = summarize(&trials);
        assert_eq!(summaries.len(), 7);
        // HSCs should comfortably beat chance on the corpus.
        for s in &summaries {
            assert!(
                s.metrics.accuracy > 0.7,
                "{} at {}",
                s.model,
                s.metrics.accuracy
            );
            assert_eq!(s.category, Category::Histogram);
        }
    }
}
