//! Table III + Fig. 4: the post hoc analysis over the Table II trials.
//!
//! Mirrors the paper's PAM protocol exactly: Shapiro-Wilk normality per
//! model-metric pair; Kruskal-Wallis per metric with Holm-Bonferroni across
//! the four metrics; Dunn's pairwise test per metric, with the
//! within-category vs cross-category significance breakdown the paper
//! reports (65.4% of pairs significant overall; ~37% within category,
//! ~80% across categories).

use crate::metrics::METRIC_NAMES;
use crate::pipeline::TrialResult;
use phishinghook_models::Category;
use phishinghook_stats::{
    dunn_test, holm_bonferroni, kruskal_wallis, shapiro_wilk, DunnComparison,
};

/// Models the paper excludes from the post hoc analysis.
pub const EXCLUDED: [&str; 3] = ["ESCORT", "GPT-2β", "T5β"];

/// Kruskal-Wallis row (one per metric) — the paper's Table III.
#[derive(Debug, Clone, PartialEq)]
pub struct KruskalRow {
    /// Metric name.
    pub metric: &'static str,
    /// H statistic.
    pub h: f64,
    /// Raw p-value.
    pub p: f64,
    /// Holm-adjusted p-value (across the four metrics).
    pub p_adjusted: f64,
}

/// One Dunn comparison annotated with model names and categories.
#[derive(Debug, Clone, PartialEq)]
pub struct PairwiseRow {
    /// Metric the comparison is on.
    pub metric: &'static str,
    /// First model.
    pub model_a: String,
    /// Second model.
    pub model_b: String,
    /// Whether the two models share a category.
    pub same_category: bool,
    /// Holm-adjusted p-value.
    pub p_adjusted: f64,
}

/// Aggregate significance rates (the percentages quoted in §IV-E).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SignificanceRates {
    /// Fraction of all pairs with adjusted p < 0.05.
    pub overall: f64,
    /// Fraction among same-category pairs.
    pub within_category: f64,
    /// Fraction among cross-category pairs.
    pub cross_category: f64,
}

/// Full post hoc analysis output.
#[derive(Debug, Clone)]
pub struct PosthocAnalysis {
    /// Models analyzed, in first-seen order (13 at paper scale).
    pub models: Vec<(String, Category)>,
    /// Count of model-metric pairs where Shapiro-Wilk rejected normality
    /// (p < 0.05), out of `models × 4` pairs.
    pub normality_violations: usize,
    /// Total model-metric pairs tested.
    pub normality_tests: usize,
    /// Table III rows.
    pub kruskal: Vec<KruskalRow>,
    /// All Dunn comparisons for all four metrics (Fig. 4's cells).
    pub pairwise: Vec<PairwiseRow>,
    /// Significance rates per metric, `(metric, rates)`.
    pub rates: Vec<(&'static str, SignificanceRates)>,
}

/// Runs the post hoc analysis on main-evaluation trials.
///
/// # Panics
/// Panics when fewer than two models remain after exclusions or a model has
/// fewer than 4 trials (Shapiro-Wilk's minimum).
pub fn run(trials: &[TrialResult]) -> PosthocAnalysis {
    let mut models: Vec<(String, Category)> = Vec::new();
    for t in trials {
        if EXCLUDED.contains(&t.model.as_str()) {
            continue;
        }
        if !models.iter().any(|(m, _)| *m == t.model) {
            models.push((t.model.clone(), t.category));
        }
    }
    assert!(models.len() >= 2, "post hoc needs at least two models");

    let series = |model: &str, metric: &str| -> Vec<f64> {
        trials
            .iter()
            .filter(|t| t.model == model)
            .map(|t| t.metrics.by_name(metric))
            .collect()
    };

    // Shapiro-Wilk per model-metric pair (constant series count as
    // violations of usability, not normality; the paper had 20/52 rejected).
    let mut normality_violations = 0;
    let mut normality_tests = 0;
    for (model, _) in &models {
        for metric in METRIC_NAMES {
            let xs = series(model, metric);
            normality_tests += 1;
            let range = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                - xs.iter().cloned().fold(f64::INFINITY, f64::min);
            if range <= 0.0 {
                continue; // constant: SW undefined, not counted as rejection
            }
            if shapiro_wilk(&xs).p_value < 0.05 {
                normality_violations += 1;
            }
        }
    }

    // Kruskal-Wallis per metric, Holm across the four metrics (Table III).
    let mut raw_ps = Vec::with_capacity(4);
    let mut hs = Vec::with_capacity(4);
    for metric in METRIC_NAMES {
        let groups: Vec<Vec<f64>> = models.iter().map(|(m, _)| series(m, metric)).collect();
        let kw = kruskal_wallis(&groups);
        raw_ps.push(kw.p_value);
        hs.push(kw.h);
    }
    let adjusted = holm_bonferroni(&raw_ps);
    let kruskal: Vec<KruskalRow> = METRIC_NAMES
        .iter()
        .zip(hs)
        .zip(raw_ps.iter().zip(&adjusted))
        .map(|((metric, h), (&p, &p_adjusted))| KruskalRow {
            metric,
            h,
            p,
            p_adjusted,
        })
        .collect();

    // Dunn's pairwise tests per metric (Fig. 4).
    let mut pairwise = Vec::new();
    let mut rates = Vec::new();
    for metric in METRIC_NAMES {
        let groups: Vec<Vec<f64>> = models.iter().map(|(m, _)| series(m, metric)).collect();
        let comparisons: Vec<DunnComparison> = dunn_test(&groups);
        let mut overall = (0usize, 0usize);
        let mut within = (0usize, 0usize);
        let mut cross = (0usize, 0usize);
        for c in &comparisons {
            let (ma, ca) = &models[c.group_a];
            let (mb, cb) = &models[c.group_b];
            let same = ca == cb;
            let sig = c.significant();
            overall.1 += 1;
            overall.0 += usize::from(sig);
            if same {
                within.1 += 1;
                within.0 += usize::from(sig);
            } else {
                cross.1 += 1;
                cross.0 += usize::from(sig);
            }
            pairwise.push(PairwiseRow {
                metric,
                model_a: ma.clone(),
                model_b: mb.clone(),
                same_category: same,
                p_adjusted: c.p_adjusted,
            });
        }
        let rate = |(s, n): (usize, usize)| if n == 0 { 0.0 } else { s as f64 / n as f64 };
        rates.push((
            metric,
            SignificanceRates {
                overall: rate(overall),
                within_category: rate(within),
                cross_category: rate(cross),
            },
        ));
    }

    PosthocAnalysis {
        models,
        normality_violations,
        normality_tests,
        kruskal,
        pairwise,
        rates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::BinaryMetrics;
    use phishinghook_ml::SplitMix;

    /// Synthesizes trials for named models with given mean accuracy.
    fn fake_trials(specs: &[(&str, Category, f64)], n: usize, seed: u64) -> Vec<TrialResult> {
        let mut rng = SplitMix::new(seed);
        let mut out = Vec::new();
        for (model, category, mean) in specs {
            for i in 0..n {
                let jitter = rng.normal() * 0.01;
                let v = (mean + jitter).clamp(0.01, 0.99);
                out.push(TrialResult {
                    model: (*model).to_owned(),
                    category: *category,
                    run: i / 10,
                    fold: i % 10,
                    metrics: BinaryMetrics {
                        accuracy: v,
                        precision: v,
                        recall: v,
                        f1: v,
                    },
                    train_secs: 0.1,
                    infer_secs: 0.01,
                });
            }
        }
        out
    }

    #[test]
    fn separated_models_yield_significant_tests() {
        let trials = fake_trials(
            &[
                ("A", Category::Histogram, 0.93),
                ("B", Category::Histogram, 0.92),
                ("C", Category::Vision, 0.80),
            ],
            30,
            1,
        );
        let analysis = run(&trials);
        assert_eq!(analysis.models.len(), 3);
        for row in &analysis.kruskal {
            assert!(row.p_adjusted < 0.05, "{row:?}");
            assert!(row.p_adjusted >= row.p);
        }
        // Cross-category pairs (A-C, B-C) should be significant far more
        // often than the within-category A-B pair.
        for (_, r) in &analysis.rates {
            assert!(r.cross_category >= r.within_category);
        }
    }

    #[test]
    fn excluded_models_are_dropped() {
        let trials = fake_trials(
            &[
                ("A", Category::Histogram, 0.9),
                ("ESCORT", Category::VulnerabilityDetection, 0.55),
                ("GPT-2β", Category::Language, 0.88),
                ("B", Category::Language, 0.89),
            ],
            30,
            2,
        );
        let analysis = run(&trials);
        let names: Vec<&str> = analysis.models.iter().map(|(m, _)| m.as_str()).collect();
        assert_eq!(names, vec!["A", "B"]);
    }

    #[test]
    fn pairwise_count_matches_combinatorics() {
        let trials = fake_trials(
            &[
                ("A", Category::Histogram, 0.93),
                ("B", Category::Histogram, 0.91),
                ("C", Category::Vision, 0.85),
                ("D", Category::Language, 0.88),
            ],
            30,
            3,
        );
        let analysis = run(&trials);
        // 4 models → 6 pairs × 4 metrics.
        assert_eq!(analysis.pairwise.len(), 24);
        assert_eq!(analysis.normality_tests, 16);
    }
}
