//! Figs. 2 and 3: dataset statistics.
//!
//! Fig. 2 plots obtained vs unique phishing contracts per month; Fig. 3
//! shows, for the 20 most influential opcodes, that benign and phishing
//! contracts use each opcode at similar rates (single-opcode frequency is
//! not a reliable filter).

use super::ExperimentScale;
use phishinghook_data::{Corpus, CorpusConfig, Label, Month};
use phishinghook_evm::disasm::disassemble;

/// The 20 opcodes of the paper's Fig. 3/Fig. 9 axis.
pub const FIG3_OPCODES: [&str; 20] = [
    "RETURNDATASIZE",
    "RETURNDATACOPY",
    "GAS",
    "OR",
    "ADDRESS",
    "STATICCALL",
    "LT",
    "SHL",
    "LOG3",
    "RETURN",
    "PUSH1",
    "SWAP3",
    "REVERT",
    "MLOAD",
    "CALLDATALOAD",
    "POP",
    "ISZERO",
    "SELFBALANCE",
    "MSTORE",
    "AND",
];

/// Fig. 2 row: one month's obtained/unique phishing counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonthlyRow {
    /// Month.
    pub month: Month,
    /// Obtained (duplicate-inclusive) phishing deployments.
    pub obtained: usize,
    /// Unique phishing bytecodes.
    pub unique: usize,
}

/// Fig. 3 row: per-class usage distribution of one opcode.
#[derive(Debug, Clone, PartialEq)]
pub struct OpcodeUsageRow {
    /// Opcode mnemonic.
    pub opcode: &'static str,
    /// (q1, median, q3) of per-contract usage counts among benign samples.
    pub benign_quartiles: (f64, f64, f64),
    /// (q1, median, q3) among phishing samples.
    pub phishing_quartiles: (f64, f64, f64),
}

/// Dataset statistics output.
#[derive(Debug, Clone)]
pub struct DatasetStats {
    /// Fig. 2 series.
    pub monthly: Vec<MonthlyRow>,
    /// Fig. 3 rows.
    pub usage: Vec<OpcodeUsageRow>,
    /// Total unique / obtained phishing counts (paper: 3,458 / 17,455).
    pub unique_phishing: usize,
    /// Total obtained phishing deployments.
    pub obtained_phishing: usize,
}

fn quartiles(mut xs: Vec<f64>) -> (f64, f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite counts"));
    let q = |p: f64| xs[((xs.len() - 1) as f64 * p).round() as usize];
    (q(0.25), q(0.5), q(0.75))
}

/// Computes dataset statistics at the given scale.
pub fn run(scale: &ExperimentScale) -> DatasetStats {
    let corpus = Corpus::generate(&CorpusConfig {
        n_contracts: scale.n_contracts,
        seed: scale.seed,
        ..Default::default()
    });

    let monthly: Vec<MonthlyRow> = corpus
        .monthly_phishing_counts()
        .into_iter()
        .map(|(month, obtained, unique)| MonthlyRow {
            month,
            obtained,
            unique,
        })
        .collect();

    // Per-contract opcode usage counts by class.
    let mut usage = Vec::with_capacity(FIG3_OPCODES.len());
    let counts_for = |label: Label, opcode: &str| -> Vec<f64> {
        corpus
            .records
            .iter()
            .filter(|r| r.label == label)
            .map(|r| {
                disassemble(&r.bytecode)
                    .iter()
                    .filter(|i| i.mnemonic() == opcode)
                    .count() as f64
            })
            .collect()
    };
    for opcode in FIG3_OPCODES {
        usage.push(OpcodeUsageRow {
            opcode,
            benign_quartiles: quartiles(counts_for(Label::Benign, opcode)),
            phishing_quartiles: quartiles(counts_for(Label::Phishing, opcode)),
        });
    }

    DatasetStats {
        unique_phishing: corpus.phishing().count(),
        obtained_phishing: corpus.raw_phishing.len(),
        monthly,
        usage,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One shared run for the module at the scale the monthly test needs
    /// (the usage/overlap checks hold at any scale).
    fn shared_stats() -> &'static DatasetStats {
        use std::sync::OnceLock;
        static RESULT: OnceLock<DatasetStats> = OnceLock::new();
        RESULT.get_or_init(|| {
            run(&ExperimentScale {
                n_contracts: 400,
                ..ExperimentScale::smoke()
            })
        })
    }

    #[test]
    fn monthly_series_covers_window() {
        let stats = shared_stats();
        assert_eq!(stats.monthly.len(), 13);
        assert_eq!(stats.unique_phishing, 200);
        assert!(stats.obtained_phishing > stats.unique_phishing);
        let total: usize = stats.monthly.iter().map(|r| r.unique).sum();
        assert_eq!(total, stats.unique_phishing);
    }

    #[test]
    fn usage_rows_cover_all_20_opcodes() {
        let stats = shared_stats();
        assert_eq!(stats.usage.len(), 20);
        // Quartiles are ordered.
        for row in &stats.usage {
            let (q1, q2, q3) = row.benign_quartiles;
            assert!(q1 <= q2 && q2 <= q3, "{row:?}");
        }
    }

    #[test]
    fn classes_overlap_on_common_opcodes() {
        // Fig. 3's message: both classes use the common opcodes. PUSH1 and
        // MSTORE medians must be positive for both classes.
        let stats = shared_stats();
        for opcode in ["PUSH1", "MSTORE", "POP"] {
            let row = stats
                .usage
                .iter()
                .find(|r| r.opcode == opcode)
                .expect("row exists");
            assert!(row.benign_quartiles.1 > 0.0, "{opcode} benign median 0");
            assert!(row.phishing_quartiles.1 > 0.0, "{opcode} phishing median 0");
        }
    }
}
