//! Figs. 5–7: model scalability across data splits.
//!
//! Trains the best model of each category (Random Forest, ECA+EfficientNet,
//! SCSGuard) on 1/3, 2/3 and 3/3 of the corpus, recording metrics (Fig. 5),
//! training/inference wall-clock time (Fig. 7), and the Friedman/Wilcoxon/
//! Cliff's-δ critical-difference analysis (Fig. 6).

use super::ExperimentScale;
use crate::cv::stratified_kfold;
use crate::metrics::{BinaryMetrics, METRIC_NAMES};
use phishinghook_data::{Corpus, CorpusConfig};
use phishinghook_models::{Detector, HscDetector, ScsGuardDetector, VisionDetector};
use phishinghook_stats::{cliffs_delta, critical_difference, CriticalDifference};
use std::time::Instant;

/// The three models of the experiment, in the paper's order.
pub const MODELS: [&str; 3] = ["Random Forest", "ECA+EfficientNet", "SCSGuard"];

/// The data-split ratios.
pub const SPLITS: [f64; 3] = [1.0 / 3.0, 2.0 / 3.0, 1.0];

/// One (model, split) measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitMeasurement {
    /// Model name.
    pub model: &'static str,
    /// Fraction of the corpus used.
    pub split: f64,
    /// Held-out metrics.
    pub metrics: BinaryMetrics,
    /// Training seconds.
    pub train_secs: f64,
    /// Inference seconds over the held-out set.
    pub infer_secs: f64,
}

/// Cliff's δ between two models on one metric (over the split series).
#[derive(Debug, Clone, PartialEq)]
pub struct EffectSize {
    /// Metric name.
    pub metric: &'static str,
    /// First model.
    pub model_a: &'static str,
    /// Second model.
    pub model_b: &'static str,
    /// Cliff's δ of a's series vs b's.
    pub delta: f64,
}

/// Full scalability experiment output.
#[derive(Debug, Clone)]
pub struct ScalabilityResult {
    /// All nine (model, split) measurements.
    pub measurements: Vec<SplitMeasurement>,
    /// Critical-difference data per metric (Fig. 6's four rows).
    pub cdd: Vec<(&'static str, CriticalDifference)>,
    /// Cliff's δ for every model pair and metric.
    pub effect_sizes: Vec<EffectSize>,
}

fn make_model(name: &str, scale: &ExperimentScale, seed: u64) -> Box<dyn Detector> {
    match name {
        "Random Forest" => Box::new(HscDetector::random_forest(seed)),
        "ECA+EfficientNet" => Box::new(VisionDetector::eca_efficientnet(
            scale.preset.vision_cnn(seed),
        )),
        "SCSGuard" => Box::new(ScsGuardDetector::new(scale.preset.language(seed))),
        other => panic!("unknown scalability model `{other}`"),
    }
}

/// Runs the scalability experiment.
pub fn run(scale: &ExperimentScale) -> ScalabilityResult {
    let corpus = Corpus::generate(&CorpusConfig {
        n_contracts: scale.n_contracts,
        seed: scale.seed ^ 0x5CA1E,
        ..Default::default()
    });
    let (codes, labels) = corpus.as_dataset();

    // A fixed stratified 80/20 split; the training side is subsampled per
    // ratio so splits are nested (1/3 ⊂ 2/3 ⊂ 3/3), as in a data-growth
    // study.
    let folds = stratified_kfold(&labels, 5, scale.seed);
    let eval_fold = &folds[0];
    let train_pool: Vec<usize> = eval_fold.train.clone();
    let test_idx: Vec<usize> = eval_fold.test.clone();
    let test_x: Vec<&[u8]> = test_idx.iter().map(|&i| codes[i]).collect();
    let test_y: Vec<usize> = test_idx.iter().map(|&i| labels[i]).collect();

    let mut measurements = Vec::new();
    for &split in &SPLITS {
        let n = ((train_pool.len() as f64) * split).round() as usize;
        let subset: Vec<usize> = train_pool[..n].to_vec();
        let train_x: Vec<&[u8]> = subset.iter().map(|&i| codes[i]).collect();
        let train_y: Vec<usize> = subset.iter().map(|&i| labels[i]).collect();
        for model in MODELS {
            let mut det = make_model(model, scale, scale.seed ^ (split * 100.0) as u64);
            let t0 = Instant::now();
            det.fit(&train_x, &train_y);
            let train_secs = t0.elapsed().as_secs_f64();
            let t1 = Instant::now();
            let preds = det.predict(&test_x);
            let infer_secs = t1.elapsed().as_secs_f64();
            measurements.push(SplitMeasurement {
                model,
                split,
                metrics: BinaryMetrics::from_predictions(&preds, &test_y),
                train_secs,
                infer_secs,
            });
        }
    }

    // Fig. 6: per metric, blocks = splits, treatments = models.
    let mut cdd = Vec::new();
    let mut effect_sizes = Vec::new();
    for metric in METRIC_NAMES {
        let series = |model: &str| -> Vec<f64> {
            SPLITS
                .iter()
                .map(|&s| {
                    measurements
                        .iter()
                        .find(|m| m.model == model && m.split == s)
                        .expect("measurement exists")
                        .metrics
                        .by_name(metric)
                })
                .collect()
        };
        let blocks: Vec<Vec<f64>> = SPLITS
            .iter()
            .map(|&s| {
                MODELS
                    .iter()
                    .map(|model| {
                        measurements
                            .iter()
                            .find(|m| m.model == *model && m.split == s)
                            .expect("measurement exists")
                            .metrics
                            .by_name(metric)
                    })
                    .collect()
            })
            .collect();
        cdd.push((metric, critical_difference(&blocks, 0.05)));
        for (a, model_a) in MODELS.iter().enumerate() {
            for model_b in &MODELS[a + 1..] {
                effect_sizes.push(EffectSize {
                    metric,
                    model_a,
                    model_b,
                    delta: cliffs_delta(&series(model_a), &series(model_b)),
                });
            }
        }
    }

    ScalabilityResult {
        measurements,
        cdd,
        effect_sizes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One shared run for the module — the experiment is deterministic, so
    /// each test re-running it would train the same models again.
    fn shared_result() -> &'static ScalabilityResult {
        use std::sync::OnceLock;
        static RESULT: OnceLock<ScalabilityResult> = OnceLock::new();
        RESULT.get_or_init(|| {
            run(&ExperimentScale {
                n_contracts: 240,
                ..ExperimentScale::smoke()
            })
        })
    }

    #[test]
    fn smoke_run_has_expected_shape() {
        let result = shared_result();
        assert_eq!(result.measurements.len(), 9);
        assert_eq!(result.cdd.len(), 4);
        assert_eq!(result.effect_sizes.len(), 12); // 3 pairs × 4 metrics
                                                   // Larger splits never shrink the training time for SCSGuard (the
                                                   // cost-scaling claim of Fig. 7) — allow small timer noise.
        let scs: Vec<&SplitMeasurement> = result
            .measurements
            .iter()
            .filter(|m| m.model == "SCSGuard")
            .collect();
        assert!(scs[2].train_secs > scs[0].train_secs * 0.8);
        // Every Cliff's delta is in [-1, 1].
        for e in &result.effect_sizes {
            assert!((-1.0..=1.0).contains(&e.delta));
        }
    }

    #[test]
    fn random_forest_metrics_present_per_split() {
        let result = shared_result();
        for &s in &SPLITS {
            let m = result
                .measurements
                .iter()
                .find(|m| m.model == "Random Forest" && m.split == s)
                .expect("missing measurement");
            assert!(m.metrics.accuracy > 0.5);
        }
    }
}
