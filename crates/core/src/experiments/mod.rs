//! Experiment drivers — one module per paper table/figure group.
//!
//! | Module | Reproduces |
//! |--------|-----------|
//! | [`dataset_stats`] | Fig. 2 (monthly phishing counts), Fig. 3 (opcode usage by class) |
//! | [`main_eval`] | Table II (16 models × 4 metrics) |
//! | [`posthoc`] | Table III (Kruskal-Wallis), Fig. 4 (Dunn's pairwise tests) |
//! | [`scalability`] | Fig. 5 (metrics vs data split), Fig. 6 (CDD), Fig. 7 (time costs) |
//! | [`time_resistance`] | Fig. 8 (temporal decay + AUT) |
//! | [`shap_analysis`] | Fig. 9 (SHAP values of the best HSC) |

pub mod dataset_stats;
pub mod main_eval;
pub mod posthoc;
pub mod scalability;
pub mod shap_analysis;
pub mod time_resistance;

use phishinghook_models::Preset;

/// How big an experiment run should be. The paper's full protocol (7,000
/// contracts × 10 folds × 3 runs, GPU-trained deep models) is impractical
/// on CPU; these presets keep the *shape* of every experiment while scaling
/// compute. Binaries accept `--scale {smoke|small|medium|paper}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentScale {
    /// Corpus size (balanced).
    pub n_contracts: usize,
    /// Cross-validation folds.
    pub folds: usize,
    /// Repeated runs.
    pub runs: usize,
    /// Deep-model preset.
    pub preset: Preset,
    /// Base seed.
    pub seed: u64,
}

impl ExperimentScale {
    /// Tiny smoke-test scale (CI).
    pub fn smoke() -> Self {
        ExperimentScale {
            n_contracts: 240,
            folds: 3,
            runs: 1,
            preset: Preset::Fast,
            seed: 0xF00D,
        }
    }

    /// Small scale: minutes on a laptop, all 16 models.
    pub fn small() -> Self {
        ExperimentScale {
            n_contracts: 700,
            folds: 5,
            runs: 1,
            preset: Preset::Fast,
            seed: 0xF00D,
        }
    }

    /// Medium scale: tens of minutes.
    pub fn medium() -> Self {
        ExperimentScale {
            n_contracts: 2000,
            folds: 5,
            runs: 2,
            preset: Preset::Standard,
            seed: 0xF00D,
        }
    }

    /// The paper's protocol (7,000 contracts, 10-fold × 3 runs).
    pub fn paper() -> Self {
        ExperimentScale {
            n_contracts: 7000,
            folds: 10,
            runs: 3,
            preset: Preset::Standard,
            seed: 0xF00D,
        }
    }

    /// Parses `--scale <name>` style CLI args (first match wins); defaults
    /// to [`ExperimentScale::small`].
    pub fn from_args(args: &[String]) -> Self {
        let mut scale = ExperimentScale::small();
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--scale" => {
                    if let Some(v) = iter.next() {
                        scale = match v.as_str() {
                            "smoke" => ExperimentScale::smoke(),
                            "small" => ExperimentScale::small(),
                            "medium" => ExperimentScale::medium(),
                            "paper" => ExperimentScale::paper(),
                            other => {
                                eprintln!("unknown scale `{other}`, using small");
                                ExperimentScale::small()
                            }
                        };
                    }
                }
                "--contracts" => {
                    if let Some(v) = iter.next().and_then(|v| v.parse().ok()) {
                        scale.n_contracts = v;
                    }
                }
                "--folds" => {
                    if let Some(v) = iter.next().and_then(|v| v.parse().ok()) {
                        scale.folds = v;
                    }
                }
                "--runs" => {
                    if let Some(v) = iter.next().and_then(|v| v.parse().ok()) {
                        scale.runs = v;
                    }
                }
                "--seed" => {
                    if let Some(v) = iter.next().and_then(|v| v.parse().ok()) {
                        scale.seed = v;
                    }
                }
                _ => {}
            }
        }
        scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_parsing() {
        let args: Vec<String> = ["--scale", "medium", "--contracts", "500", "--seed", "9"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let s = ExperimentScale::from_args(&args);
        assert_eq!(s.folds, ExperimentScale::medium().folds);
        assert_eq!(s.n_contracts, 500);
        assert_eq!(s.seed, 9);
    }

    #[test]
    fn default_is_small() {
        assert_eq!(ExperimentScale::from_args(&[]), ExperimentScale::small());
    }

    #[test]
    fn paper_scale_matches_protocol() {
        let p = ExperimentScale::paper();
        assert_eq!((p.n_contracts, p.folds, p.runs), (7000, 10, 3));
    }
}
