//! Fig. 9: SHAP values of the best classifier (Random Forest HSC).
//!
//! Trains a random forest on opcode histograms, computes exact TreeSHAP
//! values for a held-out test fold, and summarizes the most influential
//! opcodes — including the paper's headline observation that *low* GAS
//! usage pushes the prediction toward phishing.

use super::ExperimentScale;
use crate::cv::stratified_kfold;
use phishinghook_data::{Corpus, CorpusConfig};
use phishinghook_features::HistogramExtractor;
use phishinghook_ml::classical::forest::ForestConfig;
use phishinghook_ml::{Classifier, RandomForest};
use phishinghook_stats::{forest_expected_value, forest_shap};

/// Per-opcode SHAP summary over the test fold.
#[derive(Debug, Clone, PartialEq)]
pub struct OpcodeInfluence {
    /// Opcode mnemonic (histogram feature).
    pub opcode: &'static str,
    /// Mean |SHAP| — the influence ranking key.
    pub mean_abs_shap: f64,
    /// Mean SHAP among samples using the opcode *less* than the median.
    pub low_usage_mean_shap: f64,
    /// Mean SHAP among samples using the opcode *at least* the median.
    pub high_usage_mean_shap: f64,
}

/// Full SHAP experiment output.
#[derive(Debug, Clone)]
pub struct ShapAnalysis {
    /// Opcodes ranked by mean |SHAP| descending (top 20 kept, as in Fig. 9).
    pub top: Vec<OpcodeInfluence>,
    /// SHAP base value (mean phishing probability — "the base value (i.e.,
    /// the mean probability of phishing across all contracts)").
    pub base_value: f64,
    /// Largest additivity residual |Σφ + base − f(x)| observed (sanity).
    pub max_additivity_error: f64,
    /// Number of test samples explained.
    pub n_explained: usize,
}

/// Runs the SHAP analysis at the given scale.
pub fn run(scale: &ExperimentScale) -> ShapAnalysis {
    let corpus = Corpus::generate(&CorpusConfig {
        n_contracts: scale.n_contracts,
        seed: scale.seed ^ 0x54A9,
        ..Default::default()
    });
    let (codes, labels) = corpus.as_dataset();

    // One stratified fold, as the paper does ("the test set of a random
    // fold from §IV-D").
    let folds = stratified_kfold(&labels, scale.folds.max(2), scale.seed);
    let fold = &folds[0];
    let train_x: Vec<&[u8]> = fold.train.iter().map(|&i| codes[i]).collect();
    let train_y: Vec<usize> = fold.train.iter().map(|&i| labels[i]).collect();
    // Cap explained samples: TreeSHAP is O(trees · leaves · depth²) per row.
    let test_idx: Vec<usize> = fold.test.iter().copied().take(400).collect();

    let extractor = HistogramExtractor::fit(&train_x);
    let x_train = extractor.transform(&train_x);
    // A moderate forest keeps exact SHAP affordable without hurting
    // accuracy much.
    let mut forest = RandomForest::new(ForestConfig {
        n_trees: 40,
        max_depth: 12,
        seed: scale.seed,
        ..ForestConfig::default()
    });
    forest.fit(&x_train, &train_y);

    let base_value = forest_expected_value(&forest);
    let mut shap_rows: Vec<Vec<f64>> = Vec::with_capacity(test_idx.len());
    let mut feature_rows: Vec<Vec<f64>> = Vec::with_capacity(test_idx.len());
    let mut max_additivity_error = 0.0f64;
    for &i in &test_idx {
        let features = extractor.transform_one(codes[i]);
        let phi = forest_shap(&forest, &features);
        let prediction = forest.predict_proba(&phishinghook_ml::Matrix::from_rows(
            std::slice::from_ref(&features),
        ))[0];
        let residual = (phi.iter().sum::<f64>() + base_value - prediction).abs();
        max_additivity_error = max_additivity_error.max(residual);
        shap_rows.push(phi);
        feature_rows.push(features);
    }

    // Aggregate per opcode.
    let n = shap_rows.len().max(1) as f64;
    let d = extractor.n_features();
    let mut influences = Vec::with_capacity(d);
    for j in 0..d {
        let shap_j: Vec<f64> = shap_rows.iter().map(|r| r[j]).collect();
        let usage_j: Vec<f64> = feature_rows.iter().map(|r| r[j]).collect();
        let mut sorted = usage_j.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite counts"));
        let median = sorted[sorted.len() / 2];
        let (mut low_sum, mut low_n, mut high_sum, mut high_n) = (0.0, 0usize, 0.0, 0usize);
        for (&s, &u) in shap_j.iter().zip(&usage_j) {
            if u < median {
                low_sum += s;
                low_n += 1;
            } else {
                high_sum += s;
                high_n += 1;
            }
        }
        influences.push(OpcodeInfluence {
            opcode: extractor.columns()[j],
            mean_abs_shap: shap_j.iter().map(|v| v.abs()).sum::<f64>() / n,
            low_usage_mean_shap: if low_n == 0 {
                0.0
            } else {
                low_sum / low_n as f64
            },
            high_usage_mean_shap: if high_n == 0 {
                0.0
            } else {
                high_sum / high_n as f64
            },
        });
    }
    influences.sort_by(|a, b| {
        b.mean_abs_shap
            .partial_cmp(&a.mean_abs_shap)
            .expect("finite SHAP")
    });
    influences.truncate(20);

    ShapAnalysis {
        top: influences,
        base_value,
        max_additivity_error,
        n_explained: test_idx.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One shared analysis for the module at the scale the GAS-direction
    /// check needs; additivity holds at any scale, so both tests read it.
    fn shared_analysis() -> &'static ShapAnalysis {
        use std::sync::OnceLock;
        static RESULT: OnceLock<ShapAnalysis> = OnceLock::new();
        RESULT.get_or_init(|| {
            run(&ExperimentScale {
                n_contracts: 400,
                ..ExperimentScale::smoke()
            })
        })
    }

    #[test]
    fn additivity_holds_and_top_is_ranked() {
        let analysis = shared_analysis();
        assert!(
            analysis.max_additivity_error < 1e-9,
            "{}",
            analysis.max_additivity_error
        );
        assert!(!analysis.top.is_empty());
        for w in analysis.top.windows(2) {
            assert!(w[0].mean_abs_shap >= w[1].mean_abs_shap);
        }
        assert!((0.0..=1.0).contains(&analysis.base_value));
    }

    #[test]
    fn gas_under_use_leans_phishing() {
        // The paper's Fig. 9 reading: contracts that rarely use GAS get
        // positive (phishing-leaning) SHAP contributions from the GAS
        // feature, because benign code checks gas before external calls.
        let analysis = shared_analysis();
        if let Some(gas) = analysis.top.iter().find(|o| o.opcode == "GAS") {
            assert!(
                gas.low_usage_mean_shap > gas.high_usage_mean_shap,
                "low={} high={}",
                gas.low_usage_mean_shap,
                gas.high_usage_mean_shap
            );
        }
    }
}
