//! Fig. 8: time-resistance analysis (TESSERACT-style temporal evaluation).
//!
//! A second 7,000-sample dataset is built with benign deployments matching
//! the phishing monthly profile. Models train on October 2023 – January 2024
//! and are evaluated on nine monthly test sets (February – October 2024);
//! stability is summarized by the AUT of the phishing-class F1 curve.

use super::ExperimentScale;
use crate::metrics::BinaryMetrics;
use phishinghook_data::{Corpus, CorpusConfig, Month};
use phishinghook_models::{Detector, HscDetector, ScsGuardDetector, VisionDetector};
use phishinghook_stats::area_under_time;

/// Last month (inclusive) of the training window: January 2024.
pub const TRAIN_END: u8 = 3;

/// Metrics of one monthly test period.
#[derive(Debug, Clone, PartialEq)]
pub struct MonthlyMetrics {
    /// The test month.
    pub month: Month,
    /// Phishing-class precision/recall/F1.
    pub phishing: BinaryMetrics,
    /// Benign-class precision/recall/F1.
    pub benign: BinaryMetrics,
    /// Number of test samples that month.
    pub n_samples: usize,
}

/// One model's temporal decay curve.
#[derive(Debug, Clone)]
pub struct DecayCurve {
    /// Model name.
    pub model: &'static str,
    /// Metrics per test month, February through October 2024.
    pub months: Vec<MonthlyMetrics>,
    /// Area under the phishing-class F1 curve.
    pub aut_f1: f64,
}

/// Full time-resistance output.
#[derive(Debug, Clone)]
pub struct TimeResistance {
    /// One decay curve per evaluated model.
    pub curves: Vec<DecayCurve>,
}

/// Runs the time-resistance experiment for the three best-in-category
/// models.
pub fn run(scale: &ExperimentScale) -> TimeResistance {
    let corpus = Corpus::generate(&CorpusConfig {
        n_contracts: scale.n_contracts,
        seed: scale.seed ^ 0x7173,
        benign_months_match_phishing: true,
        ..Default::default()
    });

    let train: Vec<(&[u8], usize)> = corpus
        .records
        .iter()
        .filter(|r| r.month.0 <= TRAIN_END)
        .map(|r| (r.bytecode.as_slice(), r.label.as_index()))
        .collect();
    let train_x: Vec<&[u8]> = train.iter().map(|(c, _)| *c).collect();
    let train_y: Vec<usize> = train.iter().map(|(_, y)| *y).collect();

    let models: Vec<(&'static str, Box<dyn Detector>)> = vec![
        (
            "Random Forest",
            Box::new(HscDetector::random_forest(scale.seed)),
        ),
        (
            "ECA+EfficientNet",
            Box::new(VisionDetector::eca_efficientnet(
                scale.preset.vision_cnn(scale.seed ^ 1),
            )),
        ),
        (
            "SCSGuard",
            Box::new(ScsGuardDetector::new(scale.preset.language(scale.seed ^ 2))),
        ),
    ];

    let mut curves = Vec::new();
    for (name, mut det) in models {
        det.fit(&train_x, &train_y);
        let mut months = Vec::new();
        for m in (TRAIN_END + 1)..Month::COUNT as u8 {
            let month = Month(m);
            let test: Vec<(&[u8], usize)> = corpus
                .records
                .iter()
                .filter(|r| r.month == month)
                .map(|r| (r.bytecode.as_slice(), r.label.as_index()))
                .collect();
            if test.is_empty() {
                continue;
            }
            let test_x: Vec<&[u8]> = test.iter().map(|(c, _)| *c).collect();
            let test_y: Vec<usize> = test.iter().map(|(_, y)| *y).collect();
            let preds = det.predict(&test_x);
            months.push(MonthlyMetrics {
                month,
                phishing: BinaryMetrics::from_predictions_for_class(&preds, &test_y, 1),
                benign: BinaryMetrics::from_predictions_for_class(&preds, &test_y, 0),
                n_samples: test.len(),
            });
        }
        let f1_series: Vec<f64> = months.iter().map(|m| m.phishing.f1).collect();
        let aut_f1 = if f1_series.len() >= 2 {
            area_under_time(&f1_series)
        } else {
            0.0
        };
        curves.push(DecayCurve {
            model: name,
            months,
            aut_f1,
        });
    }
    TimeResistance { curves }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One shared experiment run for the whole module: the scale is the
    /// smallest that leaves every monthly test period populated, and
    /// retraining three models per test would only re-measure the same
    /// deterministic output.
    fn shared_result() -> &'static TimeResistance {
        use std::sync::OnceLock;
        static RESULT: OnceLock<TimeResistance> = OnceLock::new();
        RESULT.get_or_init(|| {
            // 600 contracts spread over 13 months leaves enough per month.
            run(&ExperimentScale {
                n_contracts: 600,
                ..ExperimentScale::smoke()
            })
        })
    }

    #[test]
    fn produces_nine_monthly_periods_at_reasonable_scale() {
        let result = shared_result();
        assert_eq!(result.curves.len(), 3);
        for curve in &result.curves {
            assert_eq!(curve.months.len(), 9, "{}", curve.model);
            assert!((0.0..=1.0).contains(&curve.aut_f1), "{}", curve.model);
            for m in &curve.months {
                assert!(m.n_samples > 0);
            }
        }
    }

    #[test]
    fn random_forest_stays_predictive_over_time() {
        let rf = shared_result()
            .curves
            .iter()
            .find(|c| c.model == "Random Forest")
            .expect("RF curve");
        assert!(rf.aut_f1 > 0.6, "AUT = {}", rf.aut_f1);
    }
}
