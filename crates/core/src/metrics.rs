//! Binary classification metrics (phishing = positive class).

/// Confusion counts for a binary task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Confusion {
    /// Phishing predicted phishing.
    pub tp: usize,
    /// Benign predicted benign.
    pub tn: usize,
    /// Benign predicted phishing.
    pub fp: usize,
    /// Phishing predicted benign.
    pub fn_: usize,
}

impl Confusion {
    /// Tallies predictions against ground truth.
    ///
    /// # Panics
    /// Panics when lengths differ.
    pub fn from_predictions(predictions: &[usize], labels: &[usize]) -> Self {
        assert_eq!(predictions.len(), labels.len(), "one prediction per label");
        let mut c = Confusion::default();
        for (&p, &y) in predictions.iter().zip(labels) {
            match (y, p) {
                (1, 1) => c.tp += 1,
                (0, 0) => c.tn += 1,
                (0, 1) => c.fp += 1,
                _ => c.fn_ += 1,
            }
        }
        c
    }

    /// Total sample count.
    pub fn total(&self) -> usize {
        self.tp + self.tn + self.fp + self.fn_
    }
}

/// The four metrics of the paper's Table II.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BinaryMetrics {
    /// Fraction of correct predictions.
    pub accuracy: f64,
    /// `TP / (TP + FP)` (1.0 when no positive predictions exist).
    pub precision: f64,
    /// `TP / (TP + FN)` (1.0 when no positives exist).
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
}

impl BinaryMetrics {
    /// Computes metrics from a confusion matrix.
    pub fn from_confusion(c: &Confusion) -> Self {
        let total = c.total().max(1) as f64;
        let accuracy = (c.tp + c.tn) as f64 / total;
        let precision = if c.tp + c.fp == 0 {
            1.0
        } else {
            c.tp as f64 / (c.tp + c.fp) as f64
        };
        let recall = if c.tp + c.fn_ == 0 {
            1.0
        } else {
            c.tp as f64 / (c.tp + c.fn_) as f64
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        BinaryMetrics {
            accuracy,
            precision,
            recall,
            f1,
        }
    }

    /// Computes metrics directly from predictions.
    pub fn from_predictions(predictions: &[usize], labels: &[usize]) -> Self {
        Self::from_confusion(&Confusion::from_predictions(predictions, labels))
    }

    /// Metrics with the class polarity flipped (benign as positive) — the
    /// Fig. 8 plot reports the benign class' curves alongside phishing's.
    pub fn from_predictions_for_class(
        predictions: &[usize],
        labels: &[usize],
        positive: usize,
    ) -> Self {
        let flip = |v: usize| usize::from(v == positive);
        let p: Vec<usize> = predictions.iter().map(|&v| flip(v)).collect();
        let y: Vec<usize> = labels.iter().map(|&v| flip(v)).collect();
        Self::from_predictions(&p, &y)
    }

    /// The metric by paper column name (`"Accuracy"`, `"F1 Score"`,
    /// `"Precision"`, `"Recall"`).
    ///
    /// # Panics
    /// Panics on an unknown name.
    pub fn by_name(&self, name: &str) -> f64 {
        match name {
            "Accuracy" => self.accuracy,
            "F1 Score" => self.f1,
            "Precision" => self.precision,
            "Recall" => self.recall,
            _ => panic!("unknown metric `{name}`"),
        }
    }
}

/// The paper's metric column names, in Table II order.
pub const METRIC_NAMES: [&str; 4] = ["Accuracy", "F1 Score", "Precision", "Recall"];

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_predictions() {
        let m = BinaryMetrics::from_predictions(&[1, 0, 1, 0], &[1, 0, 1, 0]);
        assert_eq!(m.accuracy, 1.0);
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.f1, 1.0);
    }

    #[test]
    fn hand_computed_example() {
        // tp=2 fp=1 fn=1 tn=1 → acc 3/5, prec 2/3, rec 2/3, f1 2/3.
        let m = BinaryMetrics::from_predictions(&[1, 1, 1, 0, 0], &[1, 1, 0, 1, 0]);
        assert!((m.accuracy - 0.6).abs() < 1e-12);
        assert!((m.precision - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.recall - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.f1 - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn all_negative_predictions() {
        let m = BinaryMetrics::from_predictions(&[0, 0, 0], &[1, 0, 1]);
        assert_eq!(m.precision, 1.0); // vacuous
        assert_eq!(m.recall, 0.0);
        assert_eq!(m.f1, 0.0);
    }

    #[test]
    fn class_flip() {
        let preds = [1, 0, 0, 0];
        let labels = [1, 1, 0, 0];
        let phishing = BinaryMetrics::from_predictions_for_class(&preds, &labels, 1);
        let benign = BinaryMetrics::from_predictions_for_class(&preds, &labels, 0);
        assert_eq!(phishing.recall, 0.5);
        assert_eq!(benign.recall, 1.0);
        assert_eq!(phishing.accuracy, benign.accuracy);
    }

    #[test]
    fn metric_lookup() {
        let m = BinaryMetrics::from_predictions(&[1, 0], &[1, 0]);
        for name in METRIC_NAMES {
            assert_eq!(m.by_name(name), 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "unknown metric")]
    fn unknown_metric_panics() {
        let m = BinaryMetrics::from_predictions(&[1], &[1]);
        let _ = m.by_name("AUC");
    }

    proptest! {
        #[test]
        fn metrics_are_bounded(
            preds in proptest::collection::vec(0usize..2, 1..50),
            seed in any::<u64>()
        ) {
            let labels: Vec<usize> = preds
                .iter()
                .enumerate()
                .map(|(i, _)| usize::from((seed >> (i % 60)) & 1 == 1))
                .collect();
            let m = BinaryMetrics::from_predictions(&preds, &labels);
            for v in [m.accuracy, m.precision, m.recall, m.f1] {
                prop_assert!((0.0..=1.0).contains(&v));
            }
        }

        #[test]
        fn confusion_totals(preds in proptest::collection::vec(0usize..2, 1..50)) {
            let labels: Vec<usize> = preds.iter().rev().copied().collect();
            let c = Confusion::from_predictions(&preds, &labels);
            prop_assert_eq!(c.total(), preds.len());
        }
    }
}
