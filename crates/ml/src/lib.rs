#![warn(missing_docs)]

//! From-scratch machine-learning substrate for the PhishingHook reproduction.
//!
//! The paper's model evaluation module (MEM) is built on scikit-learn,
//! XGBoost, LightGBM, CatBoost and PyTorch. None of those exist natively in
//! Rust, so this crate implements the required subset from first principles:
//!
//! * [`matrix`] — a dense row-major `f64` matrix and the dataset plumbing
//!   shared by all classical models.
//! * [`classical`] — CART decision trees, bagged random forests, k-NN,
//!   logistic regression, SVMs (linear Pegasos and RBF via random Fourier
//!   features) and a gradient-boosting engine with three faithful variants
//!   (exact second-order / histogram leaf-wise / oblivious trees) standing in
//!   for XGBoost, LightGBM and CatBoost.
//! * [`nn`] — a reverse-mode autograd tensor engine with the layers needed by
//!   the paper's deep models (dense, embedding, layer norm, multi-head
//!   attention, GRU, convolutions) and SGD/Adam optimizers.
//!
//! Everything is deterministic under a fixed seed, CPU-only, and tested
//! against hand-computed values, closed-form gradients and property-based
//! invariants.

pub mod classical;
pub mod matrix;
pub mod nn;

pub use classical::{
    forest::RandomForest,
    gbdt::{BoostVariant, GradientBoosting},
    knn::KNearestNeighbors,
    linear::{LinearSvm, LogisticRegression},
    svm::RbfSvm,
    tree::DecisionTree,
    SplitMix,
};
pub use matrix::Matrix;

/// A binary classifier over dense feature matrices.
///
/// All seven histogram similarity classifiers (HSCs) implement this trait;
/// the framework trains them through it.
pub trait Classifier {
    /// Fits the model to feature rows `x` and binary labels `y`
    /// (`y[i]` is `0` or `1`).
    ///
    /// # Panics
    /// Implementations may panic when `x.rows() != y.len()` or when `x` is
    /// empty — those are caller bugs, not recoverable conditions.
    fn fit(&mut self, x: &Matrix, y: &[usize]);

    /// Predicts the probability of class `1` for every row.
    fn predict_proba(&self, x: &Matrix) -> Vec<f64>;

    /// Predicts hard labels by thresholding [`Classifier::predict_proba`]
    /// at 0.5.
    fn predict(&self, x: &Matrix) -> Vec<usize> {
        self.predict_proba(x)
            .into_iter()
            .map(|p| usize::from(p >= 0.5))
            .collect()
    }

    /// Short human-readable model name.
    fn name(&self) -> &'static str;
}
