//! Neural-network stack: autograd tensors, layers, convolutions, optimizers.
//!
//! See [`tensor::Tensor`] for the autodiff engine and [`layers`] for the
//! building blocks the paper's deep models are assembled from.

pub mod conv;
pub mod layers;
pub mod optim;
pub mod tensor;

pub use layers::{Dense, Embedding, Gru, LayerNorm, MultiHeadAttention, TransformerBlock};
pub use optim::{Adam, Optimizer, Sgd};
pub use tensor::Tensor;
