//! Convolution and pooling ops for the vision models.
//!
//! Implements `conv2d` (im2col), `depthwise_conv2d` (per-channel conv, the
//! ECA/EfficientNet building block) and `global_avg_pool` as custom autograd
//! ops on [`Tensor`]. Layouts follow PyTorch: activations are `[B, C, H, W]`,
//! conv weights `[O, C, kH, kW]`, depthwise weights `[C, kH, kW]`.

use super::tensor::Tensor;

fn out_dim(input: usize, kernel: usize, stride: usize, padding: usize) -> usize {
    (input + 2 * padding - kernel) / stride + 1
}

impl Tensor {
    /// 2-D convolution: `self` is `[B, C, H, W]`, `weight` is `[O, C, kH, kW]`.
    /// Produces `[B, O, H', W']`.
    ///
    /// # Panics
    /// Panics on rank/shape mismatch or when the kernel does not fit.
    pub fn conv2d(&self, weight: &Tensor, stride: usize, padding: usize) -> Tensor {
        assert_eq!(self.shape().len(), 4, "conv2d input must be [B, C, H, W]");
        assert_eq!(
            weight.shape().len(),
            4,
            "conv2d weight must be [O, C, kH, kW]"
        );
        let (b, c, h, w) = (
            self.shape()[0],
            self.shape()[1],
            self.shape()[2],
            self.shape()[3],
        );
        let (o, wc, kh, kw) = (
            weight.shape()[0],
            weight.shape()[1],
            weight.shape()[2],
            weight.shape()[3],
        );
        assert_eq!(c, wc, "conv2d channel mismatch");
        assert!(stride > 0, "stride must be positive");
        let oh = out_dim(h, kh, stride, padding);
        let ow = out_dim(w, kw, stride, padding);

        let x = self.to_vec();
        let wv = weight.to_vec();
        let mut out = vec![0.0f32; b * o * oh * ow];
        let get = |x: &[f32], bi: usize, ci: usize, yi: isize, xi: isize| -> f32 {
            if yi < 0 || xi < 0 || yi >= h as isize || xi >= w as isize {
                0.0
            } else {
                x[((bi * c + ci) * h + yi as usize) * w + xi as usize]
            }
        };
        for bi in 0..b {
            for oi in 0..o {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = 0.0;
                        for ci in 0..c {
                            for ky in 0..kh {
                                for kx in 0..kw {
                                    let iy = (oy * stride + ky) as isize - padding as isize;
                                    let ix = (ox * stride + kx) as isize - padding as isize;
                                    acc += get(&x, bi, ci, iy, ix)
                                        * wv[((oi * c + ci) * kh + ky) * kw + kx];
                                }
                            }
                        }
                        out[((bi * o + oi) * oh + oy) * ow + ox] = acc;
                    }
                }
            }
        }

        let (tx, tw) = (self.clone(), weight.clone());
        Tensor::from_op(
            out,
            &[b, o, oh, ow],
            vec![self.clone(), weight.clone()],
            Box::new(move |g| {
                let x = tx.to_vec();
                let wv = tw.to_vec();
                if tx.requires_grad() {
                    let mut dx = vec![0.0f32; x.len()];
                    for bi in 0..b {
                        for oi in 0..o {
                            for oy in 0..oh {
                                for ox in 0..ow {
                                    let gv = g[((bi * o + oi) * oh + oy) * ow + ox];
                                    if gv == 0.0 {
                                        continue;
                                    }
                                    for ci in 0..c {
                                        for ky in 0..kh {
                                            for kx in 0..kw {
                                                let iy =
                                                    (oy * stride + ky) as isize - padding as isize;
                                                let ix =
                                                    (ox * stride + kx) as isize - padding as isize;
                                                if iy >= 0
                                                    && ix >= 0
                                                    && iy < h as isize
                                                    && ix < w as isize
                                                {
                                                    dx[((bi * c + ci) * h + iy as usize) * w
                                                        + ix as usize] += gv
                                                        * wv[((oi * c + ci) * kh + ky) * kw + kx];
                                                }
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                    tx.accumulate_grad(&dx);
                }
                if tw.requires_grad() {
                    let mut dw = vec![0.0f32; wv.len()];
                    for bi in 0..b {
                        for oi in 0..o {
                            for oy in 0..oh {
                                for ox in 0..ow {
                                    let gv = g[((bi * o + oi) * oh + oy) * ow + ox];
                                    if gv == 0.0 {
                                        continue;
                                    }
                                    for ci in 0..c {
                                        for ky in 0..kh {
                                            for kx in 0..kw {
                                                let iy =
                                                    (oy * stride + ky) as isize - padding as isize;
                                                let ix =
                                                    (ox * stride + kx) as isize - padding as isize;
                                                if iy >= 0
                                                    && ix >= 0
                                                    && iy < h as isize
                                                    && ix < w as isize
                                                {
                                                    dw[((oi * c + ci) * kh + ky) * kw + kx] += gv
                                                        * x[((bi * c + ci) * h + iy as usize) * w
                                                            + ix as usize];
                                                }
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                    tw.accumulate_grad(&dw);
                }
            }),
        )
    }

    /// Depthwise 2-D convolution: `self` is `[B, C, H, W]`, `weight` is
    /// `[C, kH, kW]` (one kernel per channel). Produces `[B, C, H', W']`.
    ///
    /// # Panics
    /// Panics on rank/shape mismatch.
    pub fn depthwise_conv2d(&self, weight: &Tensor, stride: usize, padding: usize) -> Tensor {
        assert_eq!(
            self.shape().len(),
            4,
            "depthwise input must be [B, C, H, W]"
        );
        assert_eq!(
            weight.shape().len(),
            3,
            "depthwise weight must be [C, kH, kW]"
        );
        let (b, c, h, w) = (
            self.shape()[0],
            self.shape()[1],
            self.shape()[2],
            self.shape()[3],
        );
        let (wc, kh, kw) = (weight.shape()[0], weight.shape()[1], weight.shape()[2]);
        assert_eq!(c, wc, "depthwise channel mismatch");
        let oh = out_dim(h, kh, stride, padding);
        let ow = out_dim(w, kw, stride, padding);

        let x = self.to_vec();
        let wv = weight.to_vec();
        let mut out = vec![0.0f32; b * c * oh * ow];
        for bi in 0..b {
            for ci in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = 0.0;
                        for ky in 0..kh {
                            for kx in 0..kw {
                                let iy = (oy * stride + ky) as isize - padding as isize;
                                let ix = (ox * stride + kx) as isize - padding as isize;
                                if iy >= 0 && ix >= 0 && iy < h as isize && ix < w as isize {
                                    acc += x[((bi * c + ci) * h + iy as usize) * w + ix as usize]
                                        * wv[(ci * kh + ky) * kw + kx];
                                }
                            }
                        }
                        out[((bi * c + ci) * oh + oy) * ow + ox] = acc;
                    }
                }
            }
        }

        let (tx, tw) = (self.clone(), weight.clone());
        Tensor::from_op(
            out,
            &[b, c, oh, ow],
            vec![self.clone(), weight.clone()],
            Box::new(move |g| {
                let x = tx.to_vec();
                let wv = tw.to_vec();
                if tx.requires_grad() {
                    let mut dx = vec![0.0f32; x.len()];
                    for bi in 0..b {
                        for ci in 0..c {
                            for oy in 0..oh {
                                for ox in 0..ow {
                                    let gv = g[((bi * c + ci) * oh + oy) * ow + ox];
                                    if gv == 0.0 {
                                        continue;
                                    }
                                    for ky in 0..kh {
                                        for kx in 0..kw {
                                            let iy = (oy * stride + ky) as isize - padding as isize;
                                            let ix = (ox * stride + kx) as isize - padding as isize;
                                            if iy >= 0
                                                && ix >= 0
                                                && iy < h as isize
                                                && ix < w as isize
                                            {
                                                dx[((bi * c + ci) * h + iy as usize) * w
                                                    + ix as usize] +=
                                                    gv * wv[(ci * kh + ky) * kw + kx];
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                    tx.accumulate_grad(&dx);
                }
                if tw.requires_grad() {
                    let mut dw = vec![0.0f32; wv.len()];
                    for bi in 0..b {
                        for ci in 0..c {
                            for oy in 0..oh {
                                for ox in 0..ow {
                                    let gv = g[((bi * c + ci) * oh + oy) * ow + ox];
                                    if gv == 0.0 {
                                        continue;
                                    }
                                    for ky in 0..kh {
                                        for kx in 0..kw {
                                            let iy = (oy * stride + ky) as isize - padding as isize;
                                            let ix = (ox * stride + kx) as isize - padding as isize;
                                            if iy >= 0
                                                && ix >= 0
                                                && iy < h as isize
                                                && ix < w as isize
                                            {
                                                dw[(ci * kh + ky) * kw + kx] += gv
                                                    * x[((bi * c + ci) * h + iy as usize) * w
                                                        + ix as usize];
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                    tw.accumulate_grad(&dw);
                }
            }),
        )
    }

    /// Global average pooling: `[B, C, H, W] -> [B, C]`.
    ///
    /// # Panics
    /// Panics when the tensor is not 4-D.
    pub fn global_avg_pool(&self) -> Tensor {
        assert_eq!(
            self.shape().len(),
            4,
            "global_avg_pool input must be [B, C, H, W]"
        );
        let (b, c, h, w) = (
            self.shape()[0],
            self.shape()[1],
            self.shape()[2],
            self.shape()[3],
        );
        let hw = (h * w) as f32;
        let x = self.data();
        let mut out = vec![0.0f32; b * c];
        for bi in 0..b {
            for ci in 0..c {
                let base = (bi * c + ci) * h * w;
                out[bi * c + ci] = x[base..base + h * w].iter().sum::<f32>() / hw;
            }
        }
        drop(x);
        let t = self.clone();
        Tensor::from_op(
            out,
            &[b, c],
            vec![self.clone()],
            Box::new(move |g| {
                if t.requires_grad() {
                    let mut dx = vec![0.0f32; b * c * h * w];
                    for bi in 0..b {
                        for ci in 0..c {
                            let gv = g[bi * c + ci] / hw;
                            let base = (bi * c + ci) * h * w;
                            for v in &mut dx[base..base + h * w] {
                                *v = gv;
                            }
                        }
                    }
                    t.accumulate_grad(&dx);
                }
            }),
        )
    }

    /// Channel-wise scaling: multiplies `[B, C, H, W]` activations by a
    /// `[B, C]` gate (the ECA attention apply step).
    ///
    /// # Panics
    /// Panics on rank/shape mismatch.
    pub fn scale_channels(&self, gate: &Tensor) -> Tensor {
        assert_eq!(
            self.shape().len(),
            4,
            "scale_channels input must be [B, C, H, W]"
        );
        assert_eq!(gate.shape().len(), 2, "gate must be [B, C]");
        let (b, c, h, w) = (
            self.shape()[0],
            self.shape()[1],
            self.shape()[2],
            self.shape()[3],
        );
        assert_eq!(gate.shape(), &[b, c], "gate shape mismatch");
        let hw = h * w;
        let mut out = vec![0.0f32; b * c * hw];
        {
            let x = self.data();
            let g = gate.data();
            for bi in 0..b {
                for ci in 0..c {
                    let gv = g[bi * c + ci];
                    let base = (bi * c + ci) * hw;
                    for k in 0..hw {
                        out[base + k] = x[base + k] * gv;
                    }
                }
            }
        }
        let (tx, tg) = (self.clone(), gate.clone());
        Tensor::from_op(
            out,
            self.shape(),
            vec![self.clone(), gate.clone()],
            Box::new(move |grad| {
                if tx.requires_grad() {
                    let g = tg.to_vec();
                    let mut dx = vec![0.0f32; b * c * hw];
                    for bi in 0..b {
                        for ci in 0..c {
                            let gv = g[bi * c + ci];
                            let base = (bi * c + ci) * hw;
                            for k in 0..hw {
                                dx[base + k] = grad[base + k] * gv;
                            }
                        }
                    }
                    tx.accumulate_grad(&dx);
                }
                if tg.requires_grad() {
                    let x = tx.to_vec();
                    let mut dg = vec![0.0f32; b * c];
                    for bi in 0..b {
                        for ci in 0..c {
                            let base = (bi * c + ci) * hw;
                            let mut s = 0.0;
                            for k in 0..hw {
                                s += grad[base + k] * x[base + k];
                            }
                            dg[bi * c + ci] = s;
                        }
                    }
                    tg.accumulate_grad(&dg);
                }
            }),
        )
    }

    /// Extracts row `i` of a 2-D tensor as a `[1, D]` tensor; the gradient
    /// scatters back into that row. Used by the GRU timestep loop.
    ///
    /// # Panics
    /// Panics when the tensor is not 2-D or `i` is out of bounds.
    pub fn row_slice(&self, i: usize) -> Tensor {
        assert_eq!(self.shape().len(), 2, "row_slice expects a 2-D tensor");
        let (n, d) = (self.shape()[0], self.shape()[1]);
        assert!(i < n, "row {i} out of bounds ({n} rows)");
        let data = self.data()[i * d..(i + 1) * d].to_vec();
        let t = self.clone();
        Tensor::from_op(
            data,
            &[1, d],
            vec![self.clone()],
            Box::new(move |g| {
                if t.requires_grad() {
                    let mut dx = vec![0.0f32; n * d];
                    dx[i * d..(i + 1) * d].copy_from_slice(g);
                    t.accumulate_grad(&dx);
                }
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_grad(t: &Tensor, loss_fn: impl Fn() -> Tensor, tol: f32) {
        t.zero_grad();
        let loss = loss_fn();
        loss.backward();
        let analytic = t.grad();
        let eps = 1e-2;
        for i in 0..t.len() {
            let orig = t.data()[i];
            t.update_data(|d| d[i] = orig + eps);
            let up = loss_fn().item();
            t.update_data(|d| d[i] = orig - eps);
            let down = loss_fn().item();
            t.update_data(|d| d[i] = orig);
            let numeric = (up - down) / (2.0 * eps);
            assert!(
                (analytic[i] - numeric).abs() < tol,
                "grad[{i}]: analytic={} numeric={}",
                analytic[i],
                numeric
            );
        }
    }

    #[test]
    fn conv2d_identity_kernel() {
        // 1x1 kernel of weight 1.0 = identity.
        let x = Tensor::new((0..9).map(|i| i as f32).collect(), &[1, 1, 3, 3], false);
        let w = Tensor::new(vec![1.0], &[1, 1, 1, 1], false);
        let y = x.conv2d(&w, 1, 0);
        assert_eq!(y.shape(), &[1, 1, 3, 3]);
        assert_eq!(y.to_vec(), x.to_vec());
    }

    #[test]
    fn conv2d_known_sum_kernel() {
        // 2x2 all-ones kernel computes sliding-window sums.
        let x = Tensor::new(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2], false);
        let w = Tensor::new(vec![1.0; 4], &[1, 1, 2, 2], false);
        let y = x.conv2d(&w, 1, 0);
        assert_eq!(y.shape(), &[1, 1, 1, 1]);
        assert_eq!(y.to_vec(), vec![10.0]);
    }

    #[test]
    fn conv2d_stride_and_padding_shapes() {
        let x = Tensor::zeros(&[2, 3, 8, 8], false);
        let w = Tensor::zeros(&[4, 3, 3, 3], false);
        assert_eq!(x.conv2d(&w, 2, 1).shape(), &[2, 4, 4, 4]);
        assert_eq!(x.conv2d(&w, 1, 1).shape(), &[2, 4, 8, 8]);
    }

    #[test]
    fn conv2d_grads() {
        let x = Tensor::new(
            (0..16).map(|i| 0.1 * i as f32 - 0.8).collect(),
            &[1, 1, 4, 4],
            true,
        );
        let w = Tensor::new(vec![0.5, -0.3, 0.2, 0.7], &[1, 1, 2, 2], true);
        check_grad(&x, || x.conv2d(&w, 1, 0).sum_all(), 5e-2);
        check_grad(&w, || x.conv2d(&w, 1, 0).sum_all(), 5e-2);
        // With stride+padding too.
        check_grad(&x, || x.conv2d(&w, 2, 1).sum_all(), 5e-2);
    }

    #[test]
    fn depthwise_keeps_channels_independent() {
        // Two channels, kernel scales channel 0 by 1 and channel 1 by 2.
        let x = Tensor::new(
            vec![1.0, 1.0, 1.0, 1.0, 3.0, 3.0, 3.0, 3.0],
            &[1, 2, 2, 2],
            false,
        );
        let w = Tensor::new(vec![1.0, 2.0], &[2, 1, 1], false);
        let y = x.depthwise_conv2d(&w, 1, 0);
        assert_eq!(y.to_vec(), vec![1.0, 1.0, 1.0, 1.0, 6.0, 6.0, 6.0, 6.0]);
    }

    #[test]
    fn depthwise_grads() {
        let x = Tensor::new(
            (0..18).map(|i| 0.1 * i as f32).collect(),
            &[1, 2, 3, 3],
            true,
        );
        let w = Tensor::new(
            vec![0.3, -0.2, 0.5, 0.1, 0.9, -0.4, 0.2, 0.8],
            &[2, 2, 2],
            true,
        );
        check_grad(&x, || x.depthwise_conv2d(&w, 1, 0).sum_all(), 5e-2);
        check_grad(&w, || x.depthwise_conv2d(&w, 1, 0).sum_all(), 5e-2);
    }

    #[test]
    fn global_avg_pool_values_and_grads() {
        let x = Tensor::new(
            vec![1.0, 2.0, 3.0, 4.0, 10.0, 10.0, 10.0, 10.0],
            &[1, 2, 2, 2],
            true,
        );
        let y = x.global_avg_pool();
        assert_eq!(y.to_vec(), vec![2.5, 10.0]);
        check_grad(&x, || x.global_avg_pool().sum_all(), 1e-2);
    }

    #[test]
    fn scale_channels_values_and_grads() {
        let x = Tensor::new(
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0],
            &[1, 2, 2, 2],
            true,
        );
        let g = Tensor::new(vec![2.0, 0.5], &[1, 2], true);
        let y = x.scale_channels(&g);
        assert_eq!(y.to_vec(), vec![2.0, 4.0, 6.0, 8.0, 2.5, 3.0, 3.5, 4.0]);
        check_grad(&x, || x.scale_channels(&g).sum_all(), 1e-2);
        check_grad(&g, || x.scale_channels(&g).sum_all(), 5e-2);
    }

    #[test]
    fn row_slice_gathers_and_scatters() {
        let x = Tensor::new(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2], true);
        let r = x.row_slice(1);
        assert_eq!(r.to_vec(), vec![3.0, 4.0]);
        r.sum_all().backward();
        assert_eq!(x.grad(), vec![0.0, 0.0, 1.0, 1.0, 0.0, 0.0]);
    }
}
