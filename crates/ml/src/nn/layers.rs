//! Neural-network layers built on the autograd [`Tensor`].
//!
//! Covers exactly what the paper's deep models need: dense projections,
//! token/patch embeddings, layer norm, multi-head self-attention (with an
//! optional causal mask for the GPT-2-style model), a GRU (SCSGuard's
//! recurrent core) and a full pre-norm transformer encoder block.

use super::tensor::Tensor;
use crate::classical::SplitMix;

/// Glorot-uniform initialized weight tensor.
pub fn glorot(rng: &mut SplitMix, shape: &[usize]) -> Tensor {
    let fan_in = shape[0] as f64;
    let fan_out = *shape.last().expect("non-empty shape") as f64;
    let limit = (6.0 / (fan_in + fan_out)).sqrt();
    let n: usize = shape.iter().product();
    let data: Vec<f32> = (0..n)
        .map(|_| ((rng.unit() * 2.0 - 1.0) * limit) as f32)
        .collect();
    Tensor::new(data, shape, true)
}

/// Normal(0, σ)-initialized weight tensor.
pub fn normal_init(rng: &mut SplitMix, shape: &[usize], sigma: f64) -> Tensor {
    let n: usize = shape.iter().product();
    let data: Vec<f32> = (0..n).map(|_| (rng.normal() * sigma) as f32).collect();
    Tensor::new(data, shape, true)
}

/// A fully connected layer `y = xW + b`.
#[derive(Debug, Clone)]
pub struct Dense {
    /// Weight `[in, out]`.
    pub w: Tensor,
    /// Bias `[out]`.
    pub b: Tensor,
}

impl Dense {
    /// Creates a Glorot-initialized layer.
    pub fn new(rng: &mut SplitMix, input: usize, output: usize) -> Self {
        Dense {
            w: glorot(rng, &[input, output]),
            b: Tensor::zeros(&[output], true),
        }
    }

    /// Applies the layer to `[N, in]`, producing `[N, out]`.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        x.matmul(&self.w).add_bias(&self.b)
    }

    /// The trainable parameters.
    pub fn params(&self) -> Vec<Tensor> {
        vec![self.w.clone(), self.b.clone()]
    }
}

/// A learned embedding table.
#[derive(Debug, Clone)]
pub struct Embedding {
    /// Table `[vocab, dim]`.
    pub table: Tensor,
}

impl Embedding {
    /// Creates an N(0, 0.02)-initialized table (GPT-2 convention).
    pub fn new(rng: &mut SplitMix, vocab: usize, dim: usize) -> Self {
        Embedding {
            table: normal_init(rng, &[vocab, dim], 0.02),
        }
    }

    /// Gathers rows: `ids -> [ids.len(), dim]`.
    pub fn forward(&self, ids: &[usize]) -> Tensor {
        self.table.embedding(ids)
    }

    /// The trainable parameters.
    pub fn params(&self) -> Vec<Tensor> {
        vec![self.table.clone()]
    }
}

/// Layer normalization with learnable affine parameters.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    /// Scale `[dim]`, initialized to ones.
    pub gamma: Tensor,
    /// Shift `[dim]`, initialized to zeros.
    pub beta: Tensor,
    eps: f32,
}

impl LayerNorm {
    /// Creates an identity-initialized layer norm.
    pub fn new(dim: usize) -> Self {
        LayerNorm {
            gamma: Tensor::new(vec![1.0; dim], &[dim], true),
            beta: Tensor::zeros(&[dim], true),
            eps: 1e-5,
        }
    }

    /// Normalizes the last axis.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        x.layer_norm(&self.gamma, &self.beta, self.eps)
    }

    /// The trainable parameters.
    pub fn params(&self) -> Vec<Tensor> {
        vec![self.gamma.clone(), self.beta.clone()]
    }
}

/// Multi-head self-attention over a `[T, D]` sequence.
#[derive(Debug, Clone)]
pub struct MultiHeadAttention {
    wq: Dense,
    wk: Dense,
    wv: Dense,
    wo: Dense,
    n_heads: usize,
    head_dim: usize,
}

impl MultiHeadAttention {
    /// Creates an attention block with `n_heads` heads over model dim `dim`.
    ///
    /// # Panics
    /// Panics when `dim % n_heads != 0`.
    pub fn new(rng: &mut SplitMix, dim: usize, n_heads: usize) -> Self {
        assert_eq!(dim % n_heads, 0, "dim must be divisible by n_heads");
        MultiHeadAttention {
            wq: Dense::new(rng, dim, dim),
            wk: Dense::new(rng, dim, dim),
            wv: Dense::new(rng, dim, dim),
            wo: Dense::new(rng, dim, dim),
            n_heads,
            head_dim: dim / n_heads,
        }
    }

    /// Self-attention. With `causal = true`, position `t` only attends to
    /// positions `<= t` (the GPT-2 mask).
    pub fn forward(&self, x: &Tensor, causal: bool) -> Tensor {
        let t = x.shape()[0];
        let d = x.shape()[1];
        let (h, dh) = (self.n_heads, self.head_dim);

        // [T, D] -> [T, H, Dh] -> [H, T, Dh]
        let split = |y: Tensor| y.reshape(&[t, h, dh]).swap_axes01();
        let q = split(self.wq.forward(x));
        let k = split(self.wk.forward(x));
        let v = split(self.wv.forward(x));

        // Scores [H, T, T].
        let mut scores = q.matmul(&k.transpose()).scale(1.0 / (dh as f32).sqrt());
        if causal {
            // Additive mask: -1e9 above the diagonal, replicated per head.
            let mut mask = vec![0.0f32; h * t * t];
            for head in 0..h {
                for i in 0..t {
                    for j in (i + 1)..t {
                        mask[(head * t + i) * t + j] = -1e9;
                    }
                }
            }
            scores = scores.add(&Tensor::new(mask, &[h, t, t], false));
        }
        let attn = scores.softmax_last();
        // [H, T, Dh] -> [T, H, Dh] -> [T, D]
        let ctx = attn.matmul(&v).swap_axes01().reshape(&[t, d]);
        self.wo.forward(&ctx)
    }

    /// The trainable parameters.
    pub fn params(&self) -> Vec<Tensor> {
        [&self.wq, &self.wk, &self.wv, &self.wo]
            .iter()
            .flat_map(|d| d.params())
            .collect()
    }
}

/// A pre-norm transformer encoder block (LN → MHA → residual, LN → MLP →
/// residual), the unit shared by the ViT, GPT-2-style and T5-style models.
#[derive(Debug, Clone)]
pub struct TransformerBlock {
    ln1: LayerNorm,
    attn: MultiHeadAttention,
    ln2: LayerNorm,
    fc1: Dense,
    fc2: Dense,
}

impl TransformerBlock {
    /// Creates a block with hidden MLP width `mlp_dim`.
    pub fn new(rng: &mut SplitMix, dim: usize, n_heads: usize, mlp_dim: usize) -> Self {
        TransformerBlock {
            ln1: LayerNorm::new(dim),
            attn: MultiHeadAttention::new(rng, dim, n_heads),
            ln2: LayerNorm::new(dim),
            fc1: Dense::new(rng, dim, mlp_dim),
            fc2: Dense::new(rng, mlp_dim, dim),
        }
    }

    /// Applies the block to a `[T, D]` sequence.
    pub fn forward(&self, x: &Tensor, causal: bool) -> Tensor {
        let attended = self.attn.forward(&self.ln1.forward(x), causal);
        let x = x.add(&attended);
        let mlp = self
            .fc2
            .forward(&self.fc1.forward(&self.ln2.forward(&x)).gelu());
        x.add(&mlp)
    }

    /// The trainable parameters.
    pub fn params(&self) -> Vec<Tensor> {
        let mut p = self.ln1.params();
        p.extend(self.attn.params());
        p.extend(self.ln2.params());
        p.extend(self.fc1.params());
        p.extend(self.fc2.params());
        p
    }
}

/// A gated recurrent unit layer (SCSGuard's sequence core).
#[derive(Debug, Clone)]
pub struct Gru {
    wz: Dense,
    uz: Dense,
    wr: Dense,
    ur: Dense,
    wh: Dense,
    uh: Dense,
    hidden: usize,
}

impl Gru {
    /// Creates a GRU mapping `input`-dim vectors to `hidden`-dim state.
    pub fn new(rng: &mut SplitMix, input: usize, hidden: usize) -> Self {
        Gru {
            wz: Dense::new(rng, input, hidden),
            uz: Dense::new(rng, hidden, hidden),
            wr: Dense::new(rng, input, hidden),
            ur: Dense::new(rng, hidden, hidden),
            wh: Dense::new(rng, input, hidden),
            uh: Dense::new(rng, hidden, hidden),
            hidden,
        }
    }

    /// Runs the GRU over a `[T, D]` sequence, returning the final hidden
    /// state `[1, H]`.
    pub fn forward_last(&self, x: &Tensor) -> Tensor {
        let t = x.shape()[0];
        let mut hstate = Tensor::zeros(&[1, self.hidden], false);
        for step in 0..t {
            let xt = x.row_slice(step);
            let z = self
                .wz
                .forward(&xt)
                .add(&self.uz.forward(&hstate))
                .sigmoid();
            let r = self
                .wr
                .forward(&xt)
                .add(&self.ur.forward(&hstate))
                .sigmoid();
            let h_cand = self
                .wh
                .forward(&xt)
                .add(&self.uh.forward(&r.mul(&hstate)))
                .tanh();
            // h = (1 - z) * h + z * h_cand
            let one_minus_z = z.scale(-1.0).add_scalar(1.0);
            hstate = one_minus_z.mul(&hstate).add(&z.mul(&h_cand));
        }
        hstate
    }

    /// The trainable parameters.
    pub fn params(&self) -> Vec<Tensor> {
        [&self.wz, &self.uz, &self.wr, &self.ur, &self.wh, &self.uh]
            .iter()
            .flat_map(|d| d.params())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn::optim::{Adam, Optimizer};

    fn rng() -> SplitMix {
        SplitMix::new(99)
    }

    #[test]
    fn dense_shapes() {
        let mut r = rng();
        let d = Dense::new(&mut r, 4, 3);
        let x = Tensor::zeros(&[5, 4], false);
        assert_eq!(d.forward(&x).shape(), &[5, 3]);
        assert_eq!(d.params().len(), 2);
    }

    #[test]
    fn attention_shapes_and_softmax_rows() {
        let mut r = rng();
        let mha = MultiHeadAttention::new(&mut r, 8, 2);
        let x = Tensor::new((0..32).map(|i| 0.01 * i as f32).collect(), &[4, 8], false);
        let y = mha.forward(&x, false);
        assert_eq!(y.shape(), &[4, 8]);
    }

    #[test]
    fn causal_mask_blocks_future() {
        // With a causal mask, the output at position 0 must not change when
        // we perturb tokens at positions > 0.
        let mut r = rng();
        let mha = MultiHeadAttention::new(&mut r, 8, 2);
        let base: Vec<f32> = (0..24).map(|i| 0.05 * i as f32).collect();
        let x1 = Tensor::new(base.clone(), &[3, 8], false);
        let mut perturbed = base;
        for v in &mut perturbed[8..] {
            *v += 10.0;
        }
        let x2 = Tensor::new(perturbed, &[3, 8], false);
        let y1 = mha.forward(&x1, true).to_vec();
        let y2 = mha.forward(&x2, true).to_vec();
        for j in 0..8 {
            assert!(
                (y1[j] - y2[j]).abs() < 1e-4,
                "position 0 leaked future info"
            );
        }
        // Sanity: without the mask it must change.
        let y1u = mha.forward(&x1, false).to_vec();
        let y2u = mha.forward(&x2, false).to_vec();
        assert!((y1u[0] - y2u[0]).abs() > 1e-4);
    }

    #[test]
    fn transformer_block_preserves_shape() {
        let mut r = rng();
        let block = TransformerBlock::new(&mut r, 8, 2, 16);
        let x = Tensor::new((0..40).map(|i| 0.02 * i as f32).collect(), &[5, 8], false);
        assert_eq!(block.forward(&x, false).shape(), &[5, 8]);
        assert_eq!(block.params().len(), 2 + 8 + 2 + 2 + 2);
    }

    #[test]
    fn gru_final_state_shape() {
        let mut r = rng();
        let gru = Gru::new(&mut r, 6, 4);
        let x = Tensor::new((0..18).map(|i| 0.1 * i as f32).collect(), &[3, 6], false);
        assert_eq!(gru.forward_last(&x).shape(), &[1, 4]);
    }

    #[test]
    fn gru_learns_first_token_rule() {
        // Task: label = (first element of first token > 0). The GRU must
        // carry information across the whole sequence.
        let mut r = rng();
        let gru = Gru::new(&mut r, 2, 6);
        let head = Dense::new(&mut r, 6, 2);
        let mut params = gru.params();
        params.extend(head.params());
        let mut opt = Adam::new(params, 0.02);

        let make = |flag: bool, r: &mut SplitMix| {
            let mut seq = vec![0.0f32; 10];
            seq[0] = if flag { 1.0 } else { -1.0 };
            for v in seq.iter_mut().skip(2) {
                *v = r.normal() as f32 * 0.1;
            }
            Tensor::new(seq, &[5, 2], false)
        };

        for _ in 0..120 {
            let flag = r.unit() > 0.5;
            let x = make(flag, &mut r);
            let logits = head.forward(&gru.forward_last(&x));
            let loss = logits.cross_entropy_logits(&[usize::from(flag)]);
            opt.zero_grad();
            loss.backward();
            opt.step();
        }
        // Evaluate.
        let mut correct = 0;
        for i in 0..20 {
            let flag = i % 2 == 0;
            let x = make(flag, &mut r);
            let logits = head.forward(&gru.forward_last(&x)).to_vec();
            let pred = usize::from(logits[1] > logits[0]);
            if pred == usize::from(flag) {
                correct += 1;
            }
        }
        assert!(correct >= 18, "GRU failed to learn: {correct}/20");
    }

    #[test]
    fn transformer_learns_token_presence() {
        // Task: does token id 3 appear in the sequence?
        let mut r = rng();
        let emb = Embedding::new(&mut r, 8, 16);
        let block = TransformerBlock::new(&mut r, 16, 2, 32);
        let head = Dense::new(&mut r, 16, 2);
        let mut params = emb.params();
        params.extend(block.params());
        params.extend(head.params());
        let mut opt = Adam::new(params, 0.01);

        let make = |has: bool, r: &mut SplitMix| {
            let mut ids: Vec<usize> = (0..6).map(|_| 4 + r.below(4)).collect();
            if has {
                ids[r.below(6)] = 3;
            }
            ids
        };

        for _ in 0..150 {
            let has = r.unit() > 0.5;
            let ids = make(has, &mut r);
            let x = emb.forward(&ids);
            let enc = block.forward(&x, false);
            let pooled = enc.mean_rows().reshape(&[1, 16]);
            let loss = head
                .forward(&pooled)
                .cross_entropy_logits(&[usize::from(has)]);
            opt.zero_grad();
            loss.backward();
            opt.step();
        }
        let mut correct = 0;
        for i in 0..20 {
            let has = i % 2 == 0;
            let ids = make(has, &mut r);
            let x = emb.forward(&ids);
            let enc = block.forward(&x, false);
            let pooled = enc.mean_rows().reshape(&[1, 16]);
            let logits = head.forward(&pooled).to_vec();
            if usize::from(logits[1] > logits[0]) == usize::from(has) {
                correct += 1;
            }
        }
        assert!(correct >= 18, "transformer failed to learn: {correct}/20");
    }
}
