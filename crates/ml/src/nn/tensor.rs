//! Reverse-mode autograd tensors.
//!
//! A small tape-based autodiff engine sufficient for the paper's deep
//! models: dense layers, embeddings, layer norm, multi-head attention
//! (batched matmul + softmax), GRUs (elementwise gates through time) and
//! convolutions (im2col). Tensors are `f32`, shapes are explicit, and the
//! graph is destroyed after each backward pass (define-by-run).
//!
//! Gradients are verified against central finite differences in the tests.

use std::cell::{Ref, RefCell};
use std::fmt;
use std::rc::Rc;
use std::sync::atomic::{AtomicUsize, Ordering};

static NEXT_ID: AtomicUsize = AtomicUsize::new(0);

pub(crate) type BackwardFn = Box<dyn Fn(&[f32])>;

struct Inner {
    id: usize,
    shape: Vec<usize>,
    data: RefCell<Vec<f32>>,
    grad: RefCell<Vec<f32>>,
    parents: Vec<Tensor>,
    backward_fn: Option<BackwardFn>,
    requires_grad: bool,
}

/// A reference-counted tensor node in the autograd graph.
///
/// Cloning is cheap (it clones the handle, not the buffer).
#[derive(Clone)]
pub struct Tensor {
    inner: Rc<Inner>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Tensor(id={}, shape={:?})",
            self.inner.id, self.inner.shape
        )
    }
}

fn numel(shape: &[usize]) -> usize {
    shape.iter().product()
}

impl Tensor {
    /// Creates a tensor from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics when `data.len()` does not match the shape's element count.
    pub fn new(data: Vec<f32>, shape: &[usize], requires_grad: bool) -> Self {
        assert_eq!(data.len(), numel(shape), "buffer/shape mismatch");
        let n = data.len();
        Tensor {
            inner: Rc::new(Inner {
                id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
                shape: shape.to_vec(),
                data: RefCell::new(data),
                grad: RefCell::new(vec![0.0; n]),
                parents: Vec::new(),
                backward_fn: None,
                requires_grad,
            }),
        }
    }

    pub(crate) fn from_op(
        data: Vec<f32>,
        shape: &[usize],
        parents: Vec<Tensor>,
        f: BackwardFn,
    ) -> Self {
        assert_eq!(data.len(), numel(shape), "op produced wrong element count");
        let n = data.len();
        let requires_grad = parents.iter().any(Tensor::requires_grad);
        Tensor {
            inner: Rc::new(Inner {
                id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
                shape: shape.to_vec(),
                data: RefCell::new(data),
                grad: RefCell::new(vec![0.0; n]),
                parents,
                backward_fn: if requires_grad { Some(f) } else { None },
                requires_grad,
            }),
        }
    }

    /// A tensor of zeros.
    pub fn zeros(shape: &[usize], requires_grad: bool) -> Self {
        Tensor::new(vec![0.0; numel(shape)], shape, requires_grad)
    }

    /// A scalar constant.
    pub fn scalar(v: f32) -> Self {
        Tensor::new(vec![v], &[1], false)
    }

    /// The shape.
    pub fn shape(&self) -> &[usize] {
        &self.inner.shape
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        numel(&self.inner.shape)
    }

    /// `true` when the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether gradients flow to this tensor.
    pub fn requires_grad(&self) -> bool {
        self.inner.requires_grad
    }

    /// Borrow of the value buffer.
    pub fn data(&self) -> Ref<'_, Vec<f32>> {
        self.inner.data.borrow()
    }

    /// Copies the value buffer out.
    pub fn to_vec(&self) -> Vec<f32> {
        self.inner.data.borrow().clone()
    }

    /// The single value of a scalar tensor.
    ///
    /// # Panics
    /// Panics when the tensor is not a scalar.
    pub fn item(&self) -> f32 {
        assert_eq!(self.len(), 1, "item() on non-scalar tensor");
        self.inner.data.borrow()[0]
    }

    /// Copies the gradient buffer out.
    pub fn grad(&self) -> Vec<f32> {
        self.inner.grad.borrow().clone()
    }

    /// Zeroes the gradient buffer.
    pub fn zero_grad(&self) {
        for g in self.inner.grad.borrow_mut().iter_mut() {
            *g = 0.0;
        }
    }

    /// Applies `f` to the raw value buffer (optimizer updates).
    pub fn update_data(&self, f: impl FnOnce(&mut [f32])) {
        f(&mut self.inner.data.borrow_mut());
    }

    pub(crate) fn accumulate_grad(&self, delta: &[f32]) {
        let mut g = self.inner.grad.borrow_mut();
        debug_assert_eq!(g.len(), delta.len());
        for (gi, di) in g.iter_mut().zip(delta) {
            *gi += di;
        }
    }

    /// Runs reverse-mode autodiff from this (scalar) tensor.
    ///
    /// # Panics
    /// Panics when called on a non-scalar tensor.
    pub fn backward(&self) {
        assert_eq!(self.len(), 1, "backward() requires a scalar loss");
        // Topological order: node ids are monotonically increasing with
        // creation, so sorting reachable nodes by id descending gives a
        // valid reverse topological order.
        let mut visited = std::collections::HashSet::new();
        let mut nodes: Vec<Tensor> = Vec::new();
        fn collect(
            t: &Tensor,
            visited: &mut std::collections::HashSet<usize>,
            out: &mut Vec<Tensor>,
        ) {
            if !visited.insert(t.inner.id) {
                return;
            }
            for p in &t.inner.parents {
                collect(p, visited, out);
            }
            out.push(t.clone());
        }
        collect(self, &mut visited, &mut nodes);
        nodes.sort_by_key(|n| std::cmp::Reverse(n.inner.id));

        self.inner.grad.borrow_mut()[0] = 1.0;
        for node in &nodes {
            if let Some(f) = &node.inner.backward_fn {
                let grad = node.inner.grad.borrow().clone();
                f(&grad);
            }
        }
    }

    // ---- elementwise ops ---------------------------------------------

    fn same_shape(&self, other: &Tensor, op: &str) {
        assert_eq!(self.shape(), other.shape(), "{op}: shape mismatch");
    }

    /// Elementwise addition.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.same_shape(other, "add");
        let data: Vec<f32> = self
            .data()
            .iter()
            .zip(other.data().iter())
            .map(|(a, b)| a + b)
            .collect();
        let (a, b) = (self.clone(), other.clone());
        Tensor::from_op(
            data,
            self.shape(),
            vec![self.clone(), other.clone()],
            Box::new(move |g| {
                if a.requires_grad() {
                    a.accumulate_grad(g);
                }
                if b.requires_grad() {
                    b.accumulate_grad(g);
                }
            }),
        )
    }

    /// Elementwise subtraction.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.add(&other.scale(-1.0))
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.same_shape(other, "mul");
        let data: Vec<f32> = self
            .data()
            .iter()
            .zip(other.data().iter())
            .map(|(a, b)| a * b)
            .collect();
        let (a, b) = (self.clone(), other.clone());
        Tensor::from_op(
            data,
            self.shape(),
            vec![self.clone(), other.clone()],
            Box::new(move |g| {
                if a.requires_grad() {
                    let delta: Vec<f32> = {
                        let bd = b.data();
                        g.iter().zip(bd.iter()).map(|(gi, bi)| gi * bi).collect()
                    };
                    a.accumulate_grad(&delta);
                }
                if b.requires_grad() {
                    let delta: Vec<f32> = {
                        let ad = a.data();
                        g.iter().zip(ad.iter()).map(|(gi, ai)| gi * ai).collect()
                    };
                    b.accumulate_grad(&delta);
                }
            }),
        )
    }

    /// Multiplies every element by a constant.
    pub fn scale(&self, c: f32) -> Tensor {
        let data: Vec<f32> = self.data().iter().map(|a| a * c).collect();
        let a = self.clone();
        Tensor::from_op(
            data,
            self.shape(),
            vec![self.clone()],
            Box::new(move |g| {
                if a.requires_grad() {
                    let delta: Vec<f32> = g.iter().map(|gi| gi * c).collect();
                    a.accumulate_grad(&delta);
                }
            }),
        )
    }

    /// Adds a constant to every element.
    pub fn add_scalar(&self, c: f32) -> Tensor {
        let data: Vec<f32> = self.data().iter().map(|a| a + c).collect();
        let a = self.clone();
        Tensor::from_op(
            data,
            self.shape(),
            vec![self.clone()],
            Box::new(move |g| {
                if a.requires_grad() {
                    a.accumulate_grad(g);
                }
            }),
        )
    }

    /// Broadcast-adds a `[D]` vector over the last dimension.
    pub fn add_bias(&self, bias: &Tensor) -> Tensor {
        let d = *self.shape().last().expect("add_bias on 0-d tensor");
        assert_eq!(bias.shape(), &[d], "bias must be [last_dim]");
        let bd = bias.to_vec();
        let data: Vec<f32> = self
            .data()
            .iter()
            .enumerate()
            .map(|(i, a)| a + bd[i % d])
            .collect();
        let (a, b) = (self.clone(), bias.clone());
        Tensor::from_op(
            data,
            self.shape(),
            vec![self.clone(), bias.clone()],
            Box::new(move |g| {
                if a.requires_grad() {
                    a.accumulate_grad(g);
                }
                if b.requires_grad() {
                    let mut delta = vec![0.0; d];
                    for (i, gi) in g.iter().enumerate() {
                        delta[i % d] += gi;
                    }
                    b.accumulate_grad(&delta);
                }
            }),
        )
    }

    /// ReLU.
    pub fn relu(&self) -> Tensor {
        let data: Vec<f32> = self.data().iter().map(|&a| a.max(0.0)).collect();
        let a = self.clone();
        let mask: Vec<f32> = self.data().iter().map(|&v| f32::from(v > 0.0)).collect();
        Tensor::from_op(
            data,
            self.shape(),
            vec![self.clone()],
            Box::new(move |g| {
                if a.requires_grad() {
                    let delta: Vec<f32> = g.iter().zip(&mask).map(|(gi, m)| gi * m).collect();
                    a.accumulate_grad(&delta);
                }
            }),
        )
    }

    /// GELU (tanh approximation, as used by GPT-2).
    pub fn gelu(&self) -> Tensor {
        const C: f32 = 0.797_884_6; // sqrt(2/pi)
        let xs = self.to_vec();
        let data: Vec<f32> = xs
            .iter()
            .map(|&x| 0.5 * x * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh()))
            .collect();
        let a = self.clone();
        Tensor::from_op(
            data,
            self.shape(),
            vec![self.clone()],
            Box::new(move |g| {
                if a.requires_grad() {
                    let delta: Vec<f32> = g
                        .iter()
                        .zip(&xs)
                        .map(|(gi, &x)| {
                            let u = C * (x + 0.044715 * x * x * x);
                            let t = u.tanh();
                            let du = C * (1.0 + 3.0 * 0.044715 * x * x);
                            gi * (0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du)
                        })
                        .collect();
                    a.accumulate_grad(&delta);
                }
            }),
        )
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&self) -> Tensor {
        let data: Vec<f32> = self
            .data()
            .iter()
            .map(|&x| {
                if x >= 0.0 {
                    1.0 / (1.0 + (-x).exp())
                } else {
                    let e = x.exp();
                    e / (1.0 + e)
                }
            })
            .collect();
        let out_vals = data.clone();
        let a = self.clone();
        Tensor::from_op(
            data,
            self.shape(),
            vec![self.clone()],
            Box::new(move |g| {
                if a.requires_grad() {
                    let delta: Vec<f32> = g
                        .iter()
                        .zip(&out_vals)
                        .map(|(gi, &s)| gi * s * (1.0 - s))
                        .collect();
                    a.accumulate_grad(&delta);
                }
            }),
        )
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self) -> Tensor {
        let data: Vec<f32> = self.data().iter().map(|&x| x.tanh()).collect();
        let out_vals = data.clone();
        let a = self.clone();
        Tensor::from_op(
            data,
            self.shape(),
            vec![self.clone()],
            Box::new(move |g| {
                if a.requires_grad() {
                    let delta: Vec<f32> = g
                        .iter()
                        .zip(&out_vals)
                        .map(|(gi, &t)| gi * (1.0 - t * t))
                        .collect();
                    a.accumulate_grad(&delta);
                }
            }),
        )
    }

    // ---- reductions ----------------------------------------------------

    /// Sum of all elements (scalar output).
    pub fn sum_all(&self) -> Tensor {
        let s: f32 = self.data().iter().sum();
        let a = self.clone();
        let n = self.len();
        Tensor::from_op(
            vec![s],
            &[1],
            vec![self.clone()],
            Box::new(move |g| {
                if a.requires_grad() {
                    a.accumulate_grad(&vec![g[0]; n]);
                }
            }),
        )
    }

    /// Mean of all elements (scalar output).
    pub fn mean_all(&self) -> Tensor {
        self.sum_all().scale(1.0 / self.len() as f32)
    }

    /// Mean over the first axis: `[N, D] -> [D]`.
    pub fn mean_rows(&self) -> Tensor {
        assert_eq!(self.shape().len(), 2, "mean_rows expects a 2-D tensor");
        let (n, d) = (self.shape()[0], self.shape()[1]);
        let mut out = vec![0.0; d];
        {
            let src = self.data();
            for i in 0..n {
                for j in 0..d {
                    out[j] += src[i * d + j];
                }
            }
        }
        let inv = 1.0 / n as f32;
        for o in &mut out {
            *o *= inv;
        }
        let a = self.clone();
        Tensor::from_op(
            out,
            &[d],
            vec![self.clone()],
            Box::new(move |g| {
                if a.requires_grad() {
                    let mut delta = vec![0.0; n * d];
                    for i in 0..n {
                        for j in 0..d {
                            delta[i * d + j] = g[j] * inv;
                        }
                    }
                    a.accumulate_grad(&delta);
                }
            }),
        )
    }

    // ---- shape ops ------------------------------------------------------

    /// Reinterprets the buffer with a new shape (same element count).
    ///
    /// # Panics
    /// Panics when element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        assert_eq!(self.len(), numel(shape), "reshape element count mismatch");
        let a = self.clone();
        Tensor::from_op(
            self.to_vec(),
            shape,
            vec![self.clone()],
            Box::new(move |g| {
                if a.requires_grad() {
                    a.accumulate_grad(g);
                }
            }),
        )
    }

    /// Transposes a 2-D tensor, or the last two axes of a 3-D tensor.
    ///
    /// # Panics
    /// Panics for other ranks.
    pub fn transpose(&self) -> Tensor {
        match self.shape().len() {
            2 => {
                let (r, c) = (self.shape()[0], self.shape()[1]);
                let mut out = vec![0.0; r * c];
                {
                    let src = self.data();
                    for i in 0..r {
                        for j in 0..c {
                            out[j * r + i] = src[i * c + j];
                        }
                    }
                }
                let a = self.clone();
                Tensor::from_op(
                    out,
                    &[c, r],
                    vec![self.clone()],
                    Box::new(move |g| {
                        if a.requires_grad() {
                            let mut delta = vec![0.0; r * c];
                            for i in 0..r {
                                for j in 0..c {
                                    delta[i * c + j] = g[j * r + i];
                                }
                            }
                            a.accumulate_grad(&delta);
                        }
                    }),
                )
            }
            3 => {
                let (b, r, c) = (self.shape()[0], self.shape()[1], self.shape()[2]);
                let mut out = vec![0.0; b * r * c];
                {
                    let src = self.data();
                    for k in 0..b {
                        for i in 0..r {
                            for j in 0..c {
                                out[k * r * c + j * r + i] = src[k * r * c + i * c + j];
                            }
                        }
                    }
                }
                let a = self.clone();
                Tensor::from_op(
                    out,
                    &[b, c, r],
                    vec![self.clone()],
                    Box::new(move |g| {
                        if a.requires_grad() {
                            let mut delta = vec![0.0; b * r * c];
                            for k in 0..b {
                                for i in 0..r {
                                    for j in 0..c {
                                        delta[k * r * c + i * c + j] = g[k * r * c + j * r + i];
                                    }
                                }
                            }
                            a.accumulate_grad(&delta);
                        }
                    }),
                )
            }
            n => panic!("transpose expects 2-D or 3-D tensor, got {n}-D"),
        }
    }

    /// Swaps the first two axes of a 3-D tensor: `[A, B, C] -> [B, A, C]`.
    /// Used to regroup `[T, H, Dh]` token-major attention heads into
    /// `[H, T, Dh]` head-major batches.
    ///
    /// # Panics
    /// Panics when the tensor is not 3-D.
    pub fn swap_axes01(&self) -> Tensor {
        assert_eq!(self.shape().len(), 3, "swap_axes01 expects a 3-D tensor");
        let (a0, a1, a2) = (self.shape()[0], self.shape()[1], self.shape()[2]);
        let mut out = vec![0.0; a0 * a1 * a2];
        {
            let src = self.data();
            for i in 0..a0 {
                for j in 0..a1 {
                    let s = (i * a1 + j) * a2;
                    let d = (j * a0 + i) * a2;
                    out[d..d + a2].copy_from_slice(&src[s..s + a2]);
                }
            }
        }
        let t = self.clone();
        Tensor::from_op(
            out,
            &[a1, a0, a2],
            vec![self.clone()],
            Box::new(move |g| {
                if t.requires_grad() {
                    let mut delta = vec![0.0; a0 * a1 * a2];
                    for i in 0..a0 {
                        for j in 0..a1 {
                            let s = (i * a1 + j) * a2;
                            let d = (j * a0 + i) * a2;
                            delta[s..s + a2].copy_from_slice(&g[d..d + a2]);
                        }
                    }
                    t.accumulate_grad(&delta);
                }
            }),
        )
    }

    // ---- matmul ---------------------------------------------------------

    /// Matrix product. Supports `[M,K]·[K,N]` and batched `[B,M,K]·[B,K,N]`.
    ///
    /// # Panics
    /// Panics on rank or dimension mismatch.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        match (self.shape().len(), other.shape().len()) {
            (2, 2) => self.matmul2(other),
            (3, 3) => self.matmul3(other),
            (a, b) => panic!("matmul expects 2-Dx2-D or 3-Dx3-D, got {a}-D x {b}-D"),
        }
    }

    fn matmul2(&self, other: &Tensor) -> Tensor {
        let (m, k) = (self.shape()[0], self.shape()[1]);
        let (k2, n) = (other.shape()[0], other.shape()[1]);
        assert_eq!(k, k2, "matmul inner dimension mismatch");
        let mut out = vec![0.0; m * n];
        matmul_kernel(&self.data(), &other.data(), &mut out, m, k, n);
        let (ta, tb) = (self.clone(), other.clone());
        Tensor::from_op(
            out,
            &[m, n],
            vec![self.clone(), other.clone()],
            Box::new(move |g| {
                // dA = g · Bᵀ ; dB = Aᵀ · g
                if ta.requires_grad() {
                    let mut delta = vec![0.0; m * k];
                    matmul_nt(g, &tb.data(), &mut delta, m, n, k);
                    ta.accumulate_grad(&delta);
                }
                if tb.requires_grad() {
                    let mut delta = vec![0.0; k * n];
                    matmul_tn(&ta.data(), g, &mut delta, m, k, n);
                    tb.accumulate_grad(&delta);
                }
            }),
        )
    }

    fn matmul3(&self, other: &Tensor) -> Tensor {
        let (bsz, m, k) = (self.shape()[0], self.shape()[1], self.shape()[2]);
        let (bsz2, k2, n) = (other.shape()[0], other.shape()[1], other.shape()[2]);
        assert_eq!(bsz, bsz2, "batched matmul batch mismatch");
        assert_eq!(k, k2, "matmul inner dimension mismatch");
        let mut out = vec![0.0; bsz * m * n];
        {
            let a = self.data();
            let b = other.data();
            for i in 0..bsz {
                matmul_kernel(
                    &a[i * m * k..(i + 1) * m * k],
                    &b[i * k * n..(i + 1) * k * n],
                    &mut out[i * m * n..(i + 1) * m * n],
                    m,
                    k,
                    n,
                );
            }
        }
        let (ta, tb) = (self.clone(), other.clone());
        Tensor::from_op(
            out,
            &[bsz, m, n],
            vec![self.clone(), other.clone()],
            Box::new(move |g| {
                if ta.requires_grad() {
                    let mut delta = vec![0.0; bsz * m * k];
                    {
                        let b = tb.data();
                        for i in 0..bsz {
                            matmul_nt(
                                &g[i * m * n..(i + 1) * m * n],
                                &b[i * k * n..(i + 1) * k * n],
                                &mut delta[i * m * k..(i + 1) * m * k],
                                m,
                                n,
                                k,
                            );
                        }
                    }
                    ta.accumulate_grad(&delta);
                }
                if tb.requires_grad() {
                    let mut delta = vec![0.0; bsz * k * n];
                    {
                        let a = ta.data();
                        for i in 0..bsz {
                            matmul_tn(
                                &a[i * m * k..(i + 1) * m * k],
                                &g[i * m * n..(i + 1) * m * n],
                                &mut delta[i * k * n..(i + 1) * k * n],
                                m,
                                k,
                                n,
                            );
                        }
                    }
                    tb.accumulate_grad(&delta);
                }
            }),
        )
    }

    // ---- softmax & losses -------------------------------------------------

    /// Softmax over the last axis.
    pub fn softmax_last(&self) -> Tensor {
        let d = *self.shape().last().expect("softmax on 0-d tensor");
        let src = self.to_vec();
        let mut out = vec![0.0; src.len()];
        for (row_in, row_out) in src.chunks_exact(d).zip(out.chunks_exact_mut(d)) {
            let max = row_in.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for (o, &x) in row_out.iter_mut().zip(row_in) {
                *o = (x - max).exp();
                sum += *o;
            }
            for o in row_out.iter_mut() {
                *o /= sum;
            }
        }
        let out_vals = out.clone();
        let a = self.clone();
        Tensor::from_op(
            out,
            self.shape(),
            vec![self.clone()],
            Box::new(move |g| {
                if a.requires_grad() {
                    let mut delta = vec![0.0; g.len()];
                    for ((grow, srow), drow) in g
                        .chunks_exact(d)
                        .zip(out_vals.chunks_exact(d))
                        .zip(delta.chunks_exact_mut(d))
                    {
                        let dot: f32 = grow.iter().zip(srow).map(|(gi, si)| gi * si).sum();
                        for ((di, &gi), &si) in drow.iter_mut().zip(grow).zip(srow) {
                            *di = si * (gi - dot);
                        }
                    }
                    a.accumulate_grad(&delta);
                }
            }),
        )
    }

    /// Mean cross-entropy between `[B, C]` logits and integer labels.
    ///
    /// # Panics
    /// Panics when the tensor is not 2-D or `labels.len() != B`.
    pub fn cross_entropy_logits(&self, labels: &[usize]) -> Tensor {
        assert_eq!(self.shape().len(), 2, "cross entropy expects [B, C] logits");
        let (bsz, c) = (self.shape()[0], self.shape()[1]);
        assert_eq!(labels.len(), bsz, "one label per row");
        let logits = self.to_vec();
        let mut probs = vec![0.0; logits.len()];
        let mut loss = 0.0;
        for (i, (row, prow)) in logits
            .chunks_exact(c)
            .zip(probs.chunks_exact_mut(c))
            .enumerate()
        {
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for (p, &x) in prow.iter_mut().zip(row) {
                *p = (x - max).exp();
                sum += *p;
            }
            for p in prow.iter_mut() {
                *p /= sum;
            }
            loss -= prow[labels[i]].max(1e-12).ln();
        }
        loss /= bsz as f32;
        let labels = labels.to_vec();
        let a = self.clone();
        Tensor::from_op(
            vec![loss],
            &[1],
            vec![self.clone()],
            Box::new(move |g| {
                if a.requires_grad() {
                    let scale = g[0] / bsz as f32;
                    let mut delta = probs.clone();
                    for (i, row) in delta.chunks_exact_mut(c).enumerate() {
                        row[labels[i]] -= 1.0;
                        for v in row.iter_mut() {
                            *v *= scale;
                        }
                    }
                    a.accumulate_grad(&delta);
                }
            }),
        )
    }

    // ---- gather / embedding ---------------------------------------------

    /// Treats `self` as an embedding table `[V, D]` and gathers rows by id,
    /// producing `[ids.len(), D]`. The gradient scatters back into the table.
    ///
    /// # Panics
    /// Panics when an id is out of range or the table is not 2-D.
    pub fn embedding(&self, ids: &[usize]) -> Tensor {
        assert_eq!(self.shape().len(), 2, "embedding table must be [V, D]");
        let (v, d) = (self.shape()[0], self.shape()[1]);
        let mut out = vec![0.0; ids.len() * d];
        {
            let table = self.data();
            for (k, &id) in ids.iter().enumerate() {
                assert!(id < v, "embedding id {id} out of range {v}");
                out[k * d..(k + 1) * d].copy_from_slice(&table[id * d..(id + 1) * d]);
            }
        }
        let ids_cl = ids.to_vec();
        let a = self.clone();
        let rows = ids.len();
        Tensor::from_op(
            out,
            &[rows, d],
            vec![self.clone()],
            Box::new(move |g| {
                if a.requires_grad() {
                    let mut delta = vec![0.0; v * d];
                    for (k, &id) in ids_cl.iter().enumerate() {
                        for j in 0..d {
                            delta[id * d + j] += g[k * d + j];
                        }
                    }
                    a.accumulate_grad(&delta);
                }
            }),
        )
    }

    /// Layer normalization over the last axis with learnable `gamma`/`beta`.
    ///
    /// # Panics
    /// Panics when `gamma`/`beta` are not `[last_dim]`.
    pub fn layer_norm(&self, gamma: &Tensor, beta: &Tensor, eps: f32) -> Tensor {
        let d = *self.shape().last().expect("layer_norm on 0-d tensor");
        assert_eq!(gamma.shape(), &[d], "gamma must be [last_dim]");
        assert_eq!(beta.shape(), &[d], "beta must be [last_dim]");
        let x = self.to_vec();
        let gv = gamma.to_vec();
        let bv = beta.to_vec();
        let rows = x.len() / d;
        let mut out = vec![0.0; x.len()];
        let mut xhat = vec![0.0; x.len()];
        let mut inv_stds = vec![0.0; rows];
        for r in 0..rows {
            let row = &x[r * d..(r + 1) * d];
            let mean = row.iter().sum::<f32>() / d as f32;
            let var = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            let inv_std = 1.0 / (var + eps).sqrt();
            inv_stds[r] = inv_std;
            for j in 0..d {
                let h = (row[j] - mean) * inv_std;
                xhat[r * d + j] = h;
                out[r * d + j] = h * gv[j] + bv[j];
            }
        }
        let (tx, tg, tb) = (self.clone(), gamma.clone(), beta.clone());
        Tensor::from_op(
            out,
            self.shape(),
            vec![self.clone(), gamma.clone(), beta.clone()],
            Box::new(move |g| {
                let gv = tg.to_vec();
                if tg.requires_grad() {
                    let mut dg = vec![0.0; d];
                    for r in 0..rows {
                        for j in 0..d {
                            dg[j] += g[r * d + j] * xhat[r * d + j];
                        }
                    }
                    tg.accumulate_grad(&dg);
                }
                if tb.requires_grad() {
                    let mut db = vec![0.0; d];
                    for r in 0..rows {
                        for j in 0..d {
                            db[j] += g[r * d + j];
                        }
                    }
                    tb.accumulate_grad(&db);
                }
                if tx.requires_grad() {
                    let mut dx = vec![0.0; rows * d];
                    for r in 0..rows {
                        let mut sum_dxhat = 0.0;
                        let mut sum_dxhat_x = 0.0;
                        for j in 0..d {
                            let dxh = g[r * d + j] * gv[j];
                            sum_dxhat += dxh;
                            sum_dxhat_x += dxh * xhat[r * d + j];
                        }
                        let inv_std = inv_stds[r];
                        for j in 0..d {
                            let dxh = g[r * d + j] * gv[j];
                            dx[r * d + j] = inv_std
                                * (dxh
                                    - sum_dxhat / d as f32
                                    - xhat[r * d + j] * sum_dxhat_x / d as f32);
                        }
                    }
                    tx.accumulate_grad(&dx);
                }
            }),
        )
    }

    /// Concatenates 2-D tensors along axis 0.
    ///
    /// # Panics
    /// Panics on empty input or mismatched widths.
    pub fn concat_rows(tensors: &[Tensor]) -> Tensor {
        assert!(!tensors.is_empty(), "concat of nothing");
        let d = tensors[0].shape()[1];
        let mut total_rows = 0;
        let mut data = Vec::new();
        for t in tensors {
            assert_eq!(t.shape().len(), 2, "concat_rows expects 2-D tensors");
            assert_eq!(t.shape()[1], d, "concat width mismatch");
            total_rows += t.shape()[0];
            data.extend_from_slice(&t.data());
        }
        let parents: Vec<Tensor> = tensors.to_vec();
        let row_counts: Vec<usize> = tensors.iter().map(|t| t.shape()[0]).collect();
        let parents_cl = parents.clone();
        Tensor::from_op(
            data,
            &[total_rows, d],
            parents,
            Box::new(move |g| {
                let mut offset = 0;
                for (t, &rows) in parents_cl.iter().zip(&row_counts) {
                    let n = rows * d;
                    if t.requires_grad() {
                        t.accumulate_grad(&g[offset..offset + n]);
                    }
                    offset += n;
                }
            }),
        )
    }
}

// --- Persistence -----------------------------------------------------------

impl phishinghook_persist::Snapshot for Tensor {
    /// Serializes shape, `requires_grad` and the data buffer. Autograd
    /// history (parents, backward functions, accumulated gradients) is
    /// deliberately dropped: a snapshot stores *weights*, and a restored
    /// tensor is a fresh leaf exactly like one built with [`Tensor::new`].
    fn snapshot(&self, w: &mut phishinghook_persist::Writer) {
        self.shape().to_vec().snapshot(w);
        w.put_bool(self.requires_grad());
        w.put_usize(self.len());
        for &v in self.data().iter() {
            w.put_f32(v);
        }
    }
}

impl phishinghook_persist::Restore for Tensor {
    fn restore(
        r: &mut phishinghook_persist::Reader<'_>,
    ) -> Result<Self, phishinghook_persist::PersistError> {
        let shape: Vec<usize> = Vec::restore(r)?;
        let requires_grad = r.take_bool()?;
        let len = r.take_len(4)?;
        if len != numel(&shape) {
            return Err(phishinghook_persist::PersistError::Malformed(format!(
                "tensor shape {shape:?} expects {} elements, snapshot has {len}",
                numel(&shape)
            )));
        }
        let mut data = Vec::with_capacity(len);
        for _ in 0..len {
            data.push(r.take_f32()?);
        }
        Ok(Tensor::new(data, &shape, requires_grad))
    }
}

/// `out += A(m×k) · B(k×n)` — plain ikj kernel.
fn matmul_kernel(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        for p in 0..k {
            let av = a[i * k + p];
            if av == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            let orow = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

/// `out += A(m×n) · B(k×n)ᵀ` → (m×k).
fn matmul_nt(a: &[f32], b: &[f32], out: &mut [f32], m: usize, n: usize, k: usize) {
    for i in 0..m {
        for j in 0..k {
            let mut s = 0.0;
            let arow = &a[i * n..(i + 1) * n];
            let brow = &b[j * n..(j + 1) * n];
            for (x, y) in arow.iter().zip(brow) {
                s += x * y;
            }
            out[i * k + j] += s;
        }
    }
}

/// `out += A(m×k)ᵀ · B(m×n)` → (k×n).
fn matmul_tn(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    for p in 0..m {
        for i in 0..k {
            let av = a[p * k + i];
            if av == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            let orow = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Central finite-difference check of `loss_fn` gradients w.r.t. `t`.
    fn check_grad(t: &Tensor, loss_fn: impl Fn() -> Tensor, tol: f32) {
        t.zero_grad();
        let loss = loss_fn();
        loss.backward();
        let analytic = t.grad();
        let eps = 1e-3;
        for i in 0..t.len() {
            let orig = t.data()[i];
            t.update_data(|d| d[i] = orig + eps);
            let up = loss_fn().item();
            t.update_data(|d| d[i] = orig - eps);
            let down = loss_fn().item();
            t.update_data(|d| d[i] = orig);
            let numeric = (up - down) / (2.0 * eps);
            assert!(
                (analytic[i] - numeric).abs() < tol,
                "grad[{i}]: analytic={} numeric={}",
                analytic[i],
                numeric
            );
        }
    }

    #[test]
    fn add_mul_grads() {
        let a = Tensor::new(vec![1.0, -2.0, 3.0], &[3], true);
        let b = Tensor::new(vec![0.5, 4.0, -1.0], &[3], false);
        check_grad(&a, || a.add(&b).mul(&a).sum_all(), 1e-2);
    }

    #[test]
    fn matmul2_grads() {
        let a = Tensor::new(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3], true);
        let b = Tensor::new(vec![0.5, -1.0, 2.0, 1.5, -0.5, 1.0], &[3, 2], true);
        check_grad(&a, || a.matmul(&b).sum_all(), 1e-2);
        check_grad(&b, || a.matmul(&b).sum_all(), 1e-2);
    }

    #[test]
    fn matmul3_matches_loop_of_matmul2() {
        let a = Tensor::new((0..12).map(|i| i as f32 * 0.1).collect(), &[2, 2, 3], false);
        let b = Tensor::new(
            (0..12).map(|i| (11 - i) as f32 * 0.1).collect(),
            &[2, 3, 2],
            false,
        );
        let c = a.matmul(&b);
        let a0 = Tensor::new(a.to_vec()[..6].to_vec(), &[2, 3], false);
        let b0 = Tensor::new(b.to_vec()[..6].to_vec(), &[3, 2], false);
        let c0 = a0.matmul(&b0);
        assert_eq!(&c.to_vec()[..4], &c0.to_vec()[..]);
    }

    #[test]
    fn batched_matmul_grads() {
        let a = Tensor::new(
            (0..12).map(|i| 0.1 * i as f32 - 0.5).collect(),
            &[2, 2, 3],
            true,
        );
        let b = Tensor::new(
            (0..12).map(|i| 0.2 * i as f32 - 1.0).collect(),
            &[2, 3, 2],
            true,
        );
        check_grad(&a, || a.matmul(&b).sum_all(), 1e-2);
        check_grad(&b, || a.matmul(&b).sum_all(), 1e-2);
    }

    #[test]
    fn activations_grads() {
        let x = Tensor::new(vec![-1.5, -0.1, 0.2, 2.0], &[4], true);
        check_grad(&x, || x.relu().sum_all(), 1e-2);
        check_grad(&x, || x.sigmoid().sum_all(), 1e-2);
        check_grad(&x, || x.tanh().sum_all(), 1e-2);
        check_grad(&x, || x.gelu().sum_all(), 1e-2);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Tensor::new(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3], false);
        let s = x.softmax_last();
        let v = s.to_vec();
        assert!((v[..3].iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!((v[3..].iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_grads() {
        let x = Tensor::new(vec![0.3, -0.7, 1.1, 0.2], &[2, 2], true);
        let w = Tensor::new(vec![1.0, 2.0, -1.0, 0.5], &[2, 2], false);
        check_grad(&x, || x.softmax_last().mul(&w).sum_all(), 1e-2);
    }

    #[test]
    fn cross_entropy_matches_manual() {
        let logits = Tensor::new(vec![2.0, 0.0, 0.0, 3.0], &[2, 2], true);
        let loss = logits.cross_entropy_logits(&[0, 1]);
        let l0 = -(2.0f32.exp() / (2.0f32.exp() + 1.0)).ln();
        let l1 = -(3.0f32.exp() / (3.0f32.exp() + 1.0)).ln();
        assert!((loss.item() - (l0 + l1) / 2.0).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_grads() {
        let logits = Tensor::new(vec![0.5, -0.3, 0.8, 1.2, -0.1, 0.0], &[2, 3], true);
        check_grad(&logits, || logits.cross_entropy_logits(&[2, 0]), 1e-2);
    }

    #[test]
    fn embedding_gathers_and_scatters() {
        let table = Tensor::new(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2], true);
        let e = table.embedding(&[2, 0, 2]);
        assert_eq!(e.to_vec(), vec![5.0, 6.0, 1.0, 2.0, 5.0, 6.0]);
        e.sum_all().backward();
        // Row 2 used twice, row 0 once, row 1 never.
        assert_eq!(table.grad(), vec![1.0, 1.0, 0.0, 0.0, 2.0, 2.0]);
    }

    #[test]
    fn layer_norm_output_is_normalized() {
        let x = Tensor::new(vec![1.0, 2.0, 3.0, 4.0], &[1, 4], false);
        let gamma = Tensor::new(vec![1.0; 4], &[4], false);
        let beta = Tensor::new(vec![0.0; 4], &[4], false);
        let y = x.layer_norm(&gamma, &beta, 1e-5).to_vec();
        let mean: f32 = y.iter().sum::<f32>() / 4.0;
        let var: f32 = y.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn layer_norm_grads() {
        let x = Tensor::new(vec![0.5, -1.0, 2.0, 0.1, 1.0, -0.4], &[2, 3], true);
        let gamma = Tensor::new(vec![1.2, 0.8, 1.0], &[3], true);
        let beta = Tensor::new(vec![0.1, -0.2, 0.0], &[3], true);
        let w = Tensor::new(vec![1.0, -1.0, 0.5, 2.0, 0.3, -0.7], &[2, 3], false);
        check_grad(
            &x,
            || x.layer_norm(&gamma, &beta, 1e-5).mul(&w).sum_all(),
            2e-2,
        );
        check_grad(
            &gamma,
            || x.layer_norm(&gamma, &beta, 1e-5).mul(&w).sum_all(),
            2e-2,
        );
        check_grad(
            &beta,
            || x.layer_norm(&gamma, &beta, 1e-5).mul(&w).sum_all(),
            2e-2,
        );
    }

    #[test]
    fn transpose_and_swap_axes_grads() {
        let x = Tensor::new((0..6).map(|i| i as f32).collect(), &[2, 3], true);
        check_grad(&x, || x.transpose().sum_all(), 1e-2);
        let y = Tensor::new((0..12).map(|i| i as f32 * 0.3).collect(), &[2, 3, 2], true);
        let w = Tensor::new((0..12).map(|i| (i % 5) as f32).collect(), &[3, 2, 2], false);
        check_grad(&y, || y.swap_axes01().mul(&w).sum_all(), 1e-2);
    }

    #[test]
    fn swap_axes01_roundtrip() {
        let y = Tensor::new((0..24).map(|i| i as f32).collect(), &[2, 3, 4], false);
        let back = y.swap_axes01().swap_axes01();
        assert_eq!(back.to_vec(), y.to_vec());
        assert_eq!(back.shape(), y.shape());
    }

    #[test]
    fn mean_rows_grads() {
        let x = Tensor::new(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2], true);
        let w = Tensor::new(vec![2.0, -1.0], &[2], false);
        check_grad(&x, || x.mean_rows().mul(&w).sum_all(), 1e-2);
    }

    #[test]
    fn add_bias_broadcasts() {
        let x = Tensor::new(vec![0.0; 6], &[2, 3], true);
        let b = Tensor::new(vec![1.0, 2.0, 3.0], &[3], true);
        let y = x.add_bias(&b);
        assert_eq!(y.to_vec(), vec![1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
        y.sum_all().backward();
        assert_eq!(b.grad(), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn concat_rows_grads() {
        let a = Tensor::new(vec![1.0, 2.0], &[1, 2], true);
        let b = Tensor::new(vec![3.0, 4.0, 5.0, 6.0], &[2, 2], true);
        let c = Tensor::concat_rows(&[a.clone(), b.clone()]);
        assert_eq!(c.shape(), &[3, 2]);
        c.sum_all().backward();
        assert_eq!(a.grad(), vec![1.0, 1.0]);
        assert_eq!(b.grad(), vec![1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn grad_accumulates_over_shared_use() {
        // y = x·x → dy/dx = 2x, checked when x appears twice in the graph.
        let x = Tensor::new(vec![3.0], &[1], true);
        let y = x.mul(&x);
        y.backward();
        assert_eq!(x.grad(), vec![6.0]);
    }

    #[test]
    fn backward_through_deep_chain() {
        let x = Tensor::new(vec![0.5], &[1], true);
        let mut y = x.clone();
        for _ in 0..20 {
            y = y.tanh();
        }
        y.backward();
        assert!(x.grad()[0].is_finite());
    }

    #[test]
    #[should_panic(expected = "backward() requires a scalar loss")]
    fn backward_on_vector_panics() {
        let x = Tensor::new(vec![1.0, 2.0], &[2], true);
        x.backward();
    }

    #[test]
    fn no_grad_tensors_skip_backward_fn() {
        let a = Tensor::new(vec![1.0], &[1], false);
        let b = Tensor::new(vec![2.0], &[1], false);
        let c = a.mul(&b);
        assert!(!c.requires_grad());
    }

    #[test]
    fn reshape_preserves_grads() {
        let x = Tensor::new(vec![1.0, 2.0, 3.0, 4.0], &[2, 2], true);
        let y = x.reshape(&[4]);
        y.sum_all().backward();
        assert_eq!(x.grad(), vec![1.0; 4]);
    }
}
