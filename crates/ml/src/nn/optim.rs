//! Parameter optimizers: SGD with momentum and Adam.

use super::tensor::Tensor;

/// Gradient-descent parameter updater.
pub trait Optimizer {
    /// Applies one update step using the accumulated gradients.
    fn step(&mut self);

    /// Zeroes all parameter gradients.
    fn zero_grad(&self);

    /// The parameters being optimized.
    fn params(&self) -> &[Tensor];
}

/// Stochastic gradient descent with classical momentum.
#[derive(Debug)]
pub struct Sgd {
    params: Vec<Tensor>,
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 = plain SGD).
    pub momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Creates an optimizer over `params`.
    pub fn new(params: Vec<Tensor>, lr: f32, momentum: f32) -> Self {
        let velocity = params.iter().map(|p| vec![0.0; p.len()]).collect();
        Sgd {
            params,
            lr,
            momentum,
            velocity,
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self) {
        for (p, v) in self.params.iter().zip(&mut self.velocity) {
            let g = p.grad();
            p.update_data(|data| {
                for i in 0..data.len() {
                    v[i] = self.momentum * v[i] - self.lr * g[i];
                    data[i] += v[i];
                }
            });
        }
    }

    fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    fn params(&self) -> &[Tensor] {
        &self.params
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug)]
pub struct Adam {
    params: Vec<Tensor>,
    /// Learning rate.
    pub lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
    t: i32,
}

impl Adam {
    /// Creates an Adam optimizer with standard betas (0.9, 0.999).
    pub fn new(params: Vec<Tensor>, lr: f32) -> Self {
        let m = params.iter().map(|p| vec![0.0; p.len()]).collect();
        let v = params.iter().map(|p| vec![0.0; p.len()]).collect();
        Adam {
            params,
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m,
            v,
            t: 0,
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t);
        let bc2 = 1.0 - self.beta2.powi(self.t);
        for (p, (m, v)) in self.params.iter().zip(self.m.iter_mut().zip(&mut self.v)) {
            let g = p.grad();
            p.update_data(|data| {
                for i in 0..data.len() {
                    m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g[i];
                    v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g[i] * g[i];
                    let mhat = m[i] / bc1;
                    let vhat = v[i] / bc2;
                    data[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
                }
            });
        }
    }

    fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    fn params(&self) -> &[Tensor] {
        &self.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizes f(w) = (w - 3)² with each optimizer.
    fn converges_to_three(mut opt: impl Optimizer, w: &Tensor, iters: usize) {
        for _ in 0..iters {
            let loss = w.add_scalar(-3.0).mul(&w.add_scalar(-3.0)).sum_all();
            opt.zero_grad();
            loss.backward();
            opt.step();
        }
        assert!((w.item() - 3.0).abs() < 0.05, "w = {}", w.item());
    }

    #[test]
    fn sgd_converges() {
        let w = Tensor::new(vec![0.0], &[1], true);
        converges_to_three(Sgd::new(vec![w.clone()], 0.05, 0.0), &w, 100);
    }

    #[test]
    fn sgd_with_momentum_converges() {
        let w = Tensor::new(vec![0.0], &[1], true);
        converges_to_three(Sgd::new(vec![w.clone()], 0.02, 0.9), &w, 100);
    }

    #[test]
    fn adam_converges() {
        let w = Tensor::new(vec![0.0], &[1], true);
        converges_to_three(Adam::new(vec![w.clone()], 0.2), &w, 120);
    }

    #[test]
    fn zero_grad_clears() {
        let w = Tensor::new(vec![1.0], &[1], true);
        let opt = Sgd::new(vec![w.clone()], 0.1, 0.0);
        let loss = w.mul(&w).sum_all();
        loss.backward();
        assert_ne!(w.grad(), vec![0.0]);
        opt.zero_grad();
        assert_eq!(w.grad(), vec![0.0]);
    }

    #[test]
    fn multi_param_update() {
        let a = Tensor::new(vec![5.0], &[1], true);
        let b = Tensor::new(vec![-5.0], &[1], true);
        let mut opt = Adam::new(vec![a.clone(), b.clone()], 0.3);
        for _ in 0..200 {
            // minimize a² + b²
            let loss = a.mul(&a).add(&b.mul(&b)).sum_all();
            opt.zero_grad();
            loss.backward();
            opt.step();
        }
        assert!(a.item().abs() < 0.05);
        assert!(b.item().abs() < 0.05);
    }
}
