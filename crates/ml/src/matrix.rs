//! Dense row-major `f64` matrices.
//!
//! Deliberately small: just the operations the classical models and the
//! statistics crate need. The neural-network stack has its own `f32` tensor
//! type in [`crate::nn`].

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `f64` values.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length must be rows*cols");
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from per-row slices.
    ///
    /// # Panics
    /// Panics when rows have unequal lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        if rows.is_empty() {
            return Matrix::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have the same length");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` when the matrix holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow of row `i`.
    ///
    /// # Panics
    /// Panics when `i >= rows`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row {i} out of bounds ({} rows)", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of row `i`.
    ///
    /// # Panics
    /// Panics when `i >= rows`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row {i} out of bounds ({} rows)", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` out.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "col {j} out of bounds ({} cols)", self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Iterates over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// The flat row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Builds a new matrix keeping only the rows whose indices are listed.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (k, &i) in indices.iter().enumerate() {
            out.row_mut(k).copy_from_slice(self.row(i));
        }
        out
    }

    /// Matrix-vector product (`self · v`).
    ///
    /// # Panics
    /// Panics when `v.len() != cols`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "dimension mismatch");
        self.iter_rows()
            .map(|row| row.iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Matrix product (`self · other`).
    ///
    /// # Panics
    /// Panics when `self.cols != other.rows`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let (dst, src) = (i * other.cols, k * other.cols);
                for j in 0..other.cols {
                    out.data[dst + j] += a * other.data[src + j];
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Per-column means.
    pub fn col_means(&self) -> Vec<f64> {
        let mut means = vec![0.0; self.cols];
        for row in self.iter_rows() {
            for (m, v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        let n = self.rows.max(1) as f64;
        for m in &mut means {
            *m /= n;
        }
        means
    }

    /// Per-column population standard deviations.
    pub fn col_stds(&self) -> Vec<f64> {
        let means = self.col_means();
        let mut vars = vec![0.0; self.cols];
        for row in self.iter_rows() {
            for ((v, x), m) in vars.iter_mut().zip(row).zip(&means) {
                let d = x - m;
                *v += d * d;
            }
        }
        let n = self.rows.max(1) as f64;
        vars.into_iter().map(|v| (v / n).sqrt()).collect()
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics when `row.len() != cols` (unless the matrix is empty, in which
    /// case the row defines the width).
    pub fn push_row(&mut self, row: &[f64]) {
        if self.rows == 0 && self.cols == 0 {
            self.cols = row.len();
        }
        assert_eq!(row.len(), self.cols, "row width mismatch");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Reshapes in place to `rows × cols`, zeroing every element.
    ///
    /// Keeps the existing allocation when it is large enough — the batched
    /// scoring paths call this once per batch to reuse one scratch matrix
    /// instead of allocating a fresh one.
    pub fn resize(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }
}

impl phishinghook_persist::Snapshot for Matrix {
    fn snapshot(&self, w: &mut phishinghook_persist::Writer) {
        w.put_usize(self.rows);
        w.put_usize(self.cols);
        for &v in &self.data {
            w.put_f64(v);
        }
    }
}

impl phishinghook_persist::Restore for Matrix {
    fn restore(
        r: &mut phishinghook_persist::Reader<'_>,
    ) -> Result<Self, phishinghook_persist::PersistError> {
        let rows = r.take_usize()?;
        let cols = r.take_usize()?;
        let n = rows.checked_mul(cols).ok_or_else(|| {
            phishinghook_persist::PersistError::Malformed(format!(
                "matrix shape {rows}×{cols} overflows"
            ))
        })?;
        // 8 bytes per element: rejects absurd shapes before allocating.
        if n.saturating_mul(8) > r.remaining() {
            return Err(phishinghook_persist::PersistError::Truncated {
                needed: n.saturating_mul(8),
                available: r.remaining(),
            });
        }
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(r.take_f64()?);
        }
        Ok(Matrix { rows, cols, data })
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 2)], 6.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(1), vec![2.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn bad_buffer_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn matvec_known_result() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn matmul_known_result() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn select_rows_picks_subset() {
        let m = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let s = m.select_rows(&[2, 0]);
        assert_eq!(s.as_slice(), &[3.0, 1.0]);
    }

    #[test]
    fn stats_match_hand_computation() {
        let m = Matrix::from_rows(&[vec![1.0, 10.0], vec![3.0, 10.0]]);
        assert_eq!(m.col_means(), vec![2.0, 10.0]);
        assert_eq!(m.col_stds(), vec![1.0, 0.0]);
    }

    #[test]
    fn push_row_grows() {
        let mut m = Matrix::zeros(0, 0);
        m.push_row(&[1.0, 2.0]);
        m.push_row(&[3.0, 4.0]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
    }

    proptest! {
        #[test]
        fn transpose_involution(rows in 1usize..8, cols in 1usize..8, seed in any::<u64>()) {
            let mut v = Vec::with_capacity(rows * cols);
            let mut s = seed;
            for _ in 0..rows * cols {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                v.push((s >> 11) as f64 / (1u64 << 53) as f64);
            }
            let m = Matrix::from_vec(rows, cols, v);
            prop_assert_eq!(m.transpose().transpose(), m);
        }

        #[test]
        fn matmul_identity(n in 1usize..6, seed in any::<u64>()) {
            let mut v = Vec::with_capacity(n * n);
            let mut s = seed;
            for _ in 0..n * n {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                v.push((s >> 40) as f64);
            }
            let m = Matrix::from_vec(n, n, v);
            let mut id = Matrix::zeros(n, n);
            for i in 0..n { id[(i, i)] = 1.0; }
            prop_assert_eq!(m.matmul(&id), m);
        }
    }
}
