//! Classical (non-neural) models: the substrate behind the paper's seven
//! histogram similarity classifiers.

pub mod forest;
pub mod gbdt;
pub mod knn;
pub mod linear;
pub mod quant;
pub mod svm;
pub mod tree;

/// Deterministic SplitMix64 RNG used across the workspace so that training
/// and data generation are reproducible without threading `rand` generators
/// everywhere.
#[derive(Debug, Clone)]
pub struct SplitMix {
    state: u64,
}

impl SplitMix {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix {
            state: seed.wrapping_add(0x9E3779B97F4A7C15),
        }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }

    /// Uniform in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Standard normal via Box–Muller.
    pub fn normal(&mut self) -> f64 {
        let u1 = self.unit().max(1e-12);
        let u2 = self.unit();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::SplitMix;

    #[test]
    fn deterministic_under_seed() {
        let mut a = SplitMix::new(7);
        let mut b = SplitMix::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_in_range() {
        let mut r = SplitMix::new(1);
        for _ in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn normal_has_reasonable_moments() {
        let mut r = SplitMix::new(2);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean={mean}");
        assert!((var - 1.0).abs() < 0.1, "var={var}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SplitMix::new(3);
        let mut xs: Vec<usize> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
