//! CART decision trees (Gini impurity, binary classification).
//!
//! This is the building block of the best-performing model in the paper
//! (Random Forest, 93.63% accuracy). The tree structure is public — the
//! statistics crate walks it to compute TreeSHAP values (the paper's Fig. 9).

use crate::classical::quant::{FeatureBins, NanRoute, QuantNodeDesc, QuantNodes};
use crate::classical::SplitMix;
use crate::matrix::Matrix;
use crate::Classifier;

/// One node of a fitted tree, indexed into [`DecisionTree::nodes`].
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// Terminal node.
    Leaf {
        /// Probability of class 1 among training samples that reached here.
        proba: f64,
        /// Number of training samples that reached this node ("cover").
        cover: f64,
    },
    /// Internal split: `x[feature] <= threshold` goes left, else right.
    Split {
        /// Feature column index tested by this node.
        feature: usize,
        /// Split threshold (midpoint between adjacent training values).
        threshold: f64,
        /// Index of the left child in the node arena.
        left: usize,
        /// Index of the right child in the node arena.
        right: usize,
        /// Number of training samples that reached this node.
        cover: f64,
    },
}

/// Hyperparameters for a [`DecisionTree`].
#[derive(Debug, Clone, PartialEq)]
pub struct TreeConfig {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples each child must keep for a split to be valid.
    pub min_samples_leaf: usize,
    /// Number of features examined per split (`None` = all features).
    /// Random forests set this to √d.
    pub max_features: Option<usize>,
    /// RNG seed for feature subsampling.
    pub seed: u64,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 16,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: None,
            seed: 0,
        }
    }
}

/// Flat struct-of-arrays mirror of the node arena, rebuilt at fit time.
///
/// Traversal touches dense arrays instead of 48-byte enum nodes:
/// `feature[i]` is the tested column (or [`FlatNodes::LEAF`]),
/// `threshold[i]` is the split threshold — or, for a leaf, the class-1
/// probability — and `children[2i] / children[2i+1]` are the left/right
/// child indices, with leaves looping back to themselves.
///
/// The self-loops plus the sanitized `lfeature`/`lthreshold` copies
/// (column 0 and `+∞` on leaves, so a leaf always "compares" left into
/// itself) enable the lockstep batch walk in
/// [`DecisionTree::accumulate_rows`]: a group of rows advances one level
/// per pass with no per-node branch, so the row chains are independent and
/// the CPU can overlap their loads — unlike the per-row descent, which is
/// one long dependent pointer chase. The [`Node`] arena remains the
/// canonical structure that interpretability tooling (TreeSHAP) walks.
#[derive(Debug, Clone, Default)]
struct FlatNodes {
    feature: Vec<u16>,
    threshold: Vec<f64>,
    children: Vec<u32>,
    /// `feature` with leaves mapped to column 0 (always in bounds).
    lfeature: Vec<u16>,
    /// `threshold` with leaves mapped to `+∞` (comparison always goes left).
    lthreshold: Vec<f64>,
    /// Class-1 probability per node (0.0 on splits).
    proba: Vec<f64>,
}

impl FlatNodes {
    /// `feature` sentinel marking a leaf.
    const LEAF: u16 = u16::MAX;

    fn from_arena(nodes: &[Node]) -> Self {
        let n = nodes.len();
        let mut flat = FlatNodes {
            feature: Vec::with_capacity(n),
            threshold: Vec::with_capacity(n),
            children: Vec::with_capacity(2 * n),
            lfeature: Vec::with_capacity(n),
            lthreshold: Vec::with_capacity(n),
            proba: Vec::with_capacity(n),
        };
        for (id, node) in nodes.iter().enumerate() {
            match *node {
                Node::Leaf { proba, .. } => {
                    flat.feature.push(Self::LEAF);
                    flat.threshold.push(proba);
                    flat.children.extend([id as u32, id as u32]);
                    flat.lfeature.push(0);
                    flat.lthreshold.push(f64::INFINITY);
                    flat.proba.push(proba);
                }
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                    ..
                } => {
                    assert!(feature < usize::from(Self::LEAF), "feature index fits u16");
                    flat.feature.push(feature as u16);
                    flat.threshold.push(threshold);
                    flat.children.extend([left as u32, right as u32]);
                    flat.lfeature.push(feature as u16);
                    flat.lthreshold.push(threshold);
                    flat.proba.push(0.0);
                }
            }
        }
        flat
    }

    #[inline]
    // `!(v <= t)` rather than `v > t` is load-bearing: NaN must route
    // right, exactly like the arena walk's `if v <= t { left } else
    // { right }`.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    fn predict(&self, row: &[f64]) -> f64 {
        let mut i = 0usize;
        loop {
            let f = self.feature[i];
            if f == Self::LEAF {
                return self.threshold[i];
            }
            let go_right = !(row[usize::from(f)] <= self.threshold[i]);
            i = self.children[2 * i + usize::from(go_right)] as usize;
        }
    }
}

/// Quantized mirror of one tree: the model-derived bins plus the packed
/// node layout. Derived state like [`FlatNodes`] — rebuilt at fit and
/// restore time, never persisted. `None` when a feature exceeds the bin
/// budget (the f64 path then remains the only one).
#[derive(Debug, Clone)]
struct QuantTree {
    bins: FeatureBins,
    nodes: QuantNodes,
}

/// A fitted CART classification tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    config: TreeConfig,
    nodes: Vec<Node>,
    flat: FlatNodes,
    quant: Option<QuantTree>,
    n_features: usize,
}

impl DecisionTree {
    /// Creates an unfitted tree with the given hyperparameters.
    pub fn new(config: TreeConfig) -> Self {
        DecisionTree {
            config,
            nodes: Vec::new(),
            flat: FlatNodes::default(),
            quant: None,
            n_features: 0,
        }
    }

    /// Creates an unfitted tree with default hyperparameters.
    pub fn with_defaults() -> Self {
        Self::new(TreeConfig::default())
    }

    /// The node arena (root at index 0). Empty before fitting.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of features seen at fit time.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Tree depth (0 for a single leaf).
    pub fn depth(&self) -> usize {
        fn depth_at(nodes: &[Node], i: usize) -> usize {
            match nodes[i] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => {
                    1 + depth_at(nodes, left).max(depth_at(nodes, right))
                }
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            depth_at(&self.nodes, 0)
        }
    }

    /// Probability of class 1 for a single feature row (flat-array
    /// traversal).
    #[inline]
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        self.flat.predict(row)
    }

    /// Probability of class 1 for a single feature row, walking the [`Node`]
    /// arena. This is the seed reference path the flat traversal is tested
    /// and benchmarked against; prefer [`DecisionTree::predict_row`].
    pub fn predict_row_arena(&self, row: &[f64]) -> f64 {
        let mut i = 0;
        loop {
            match self.nodes[i] {
                Node::Leaf { proba, .. } => return proba,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                    ..
                } => {
                    i = if row[feature] <= threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    /// Adds this tree's class-1 probability for rows `lo..hi` of `x` into
    /// `out[0..hi - lo]` (the forest's block-accumulation primitive).
    ///
    /// Rows advance through the tree in lockstep groups: each pass moves
    /// every row in the group down one level with no per-node branch
    /// (leaves self-loop), so the group's load chains are independent and
    /// overlap instead of serializing like a per-row descent. The group is
    /// done when a pass changes no node index (only leaves map to
    /// themselves), which bounds the passes by the deepest row in the
    /// group, not the tree's maximum depth.
    // `!(v <= t)` rather than `v > t` so NaN routes right like the arena
    // walk (see `FlatNodes::predict`).
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub(crate) fn accumulate_rows(&self, x: &Matrix, lo: usize, hi: usize, out: &mut [f64]) {
        debug_assert_eq!(out.len(), hi - lo);
        let flat = &self.flat;
        if flat.feature.first() == Some(&FlatNodes::LEAF) {
            // Single-leaf tree: constant prediction. Also the only shape a
            // zero-column matrix can reach, which the lockstep walk below
            // must not touch (it reads a feature value before the leaf
            // self-loop resolves).
            for p in out.iter_mut() {
                *p += flat.proba[0];
            }
            return;
        }
        let cols = x.cols();
        let data = x.as_slice();
        /// Lockstep lanes per group: enough independent chains to hide L1
        /// latency, small enough that the lane state stays in registers.
        const G: usize = 16;
        let mut slots = [0u32; G];
        let mut row0 = lo;
        for group in out.chunks_mut(G) {
            let n = group.len();
            slots[..n].fill(0);
            loop {
                let mut changed = 0u32;
                for (k, slot) in slots[..n].iter_mut().enumerate() {
                    let i = *slot as usize;
                    let f = usize::from(flat.lfeature[i]);
                    let v = data[(row0 + k) * cols + f];
                    // `!(v <= t)` so NaN routes right like the arena walk.
                    let right = usize::from(!(v <= flat.lthreshold[i]));
                    let next = flat.children[2 * i + right];
                    changed |= next ^ *slot;
                    *slot = next;
                }
                if changed == 0 {
                    break;
                }
            }
            for (p, &i) in group.iter_mut().zip(&slots[..n]) {
                *p += flat.proba[i as usize];
            }
            row0 += n;
        }
    }

    /// Batch probabilities over all rows of `x`, processed in row-major
    /// blocks. Numerically identical to mapping
    /// [`DecisionTree::predict_row`] over the rows.
    pub fn predict_proba_batch(&self, x: &Matrix) -> Vec<f64> {
        assert!(!self.nodes.is_empty(), "predict before fit");
        let mut out = vec![0.0; x.rows()];
        self.accumulate_rows(x, 0, x.rows(), &mut out);
        out
    }

    /// Batch probabilities via the quantized fast path, or `None` when the
    /// tree exceeded the per-feature bin budget at fit time. Binning on the
    /// tree's own thresholds makes the result bit-identical to
    /// [`DecisionTree::predict_proba_batch`] (see
    /// [`crate::classical::quant`]).
    pub fn predict_proba_batch_quantized(&self, x: &Matrix) -> Option<Vec<f64>> {
        assert!(!self.nodes.is_empty(), "predict before fit");
        let quant = self.quant.as_ref()?;
        let q = quant.bins.quantize_matrix(x);
        let mut out = vec![0.0; x.rows()];
        quant.nodes.accumulate_rows(&q, 0, x.rows(), &mut out);
        Some(out)
    }

    /// Widest per-feature bin count of the quantized mirror, or `None`
    /// when quantization is unavailable (unfitted, or over budget).
    pub fn quant_bins(&self) -> Option<usize> {
        self.quant.as_ref().map(|q| q.bins.max_bins())
    }

    /// Appends every split threshold into `per_feature[feature]` (used to
    /// derive shared bins — per tree here, per ensemble in the forest).
    pub(crate) fn collect_split_thresholds(&self, per_feature: &mut [Vec<f64>]) {
        for node in &self.nodes {
            if let Node::Split {
                feature, threshold, ..
            } = *node
            {
                per_feature[feature].push(threshold);
            }
        }
    }

    /// The arena in the quantizer's neutral descriptor form.
    fn quant_desc(&self) -> Vec<QuantNodeDesc> {
        self.nodes
            .iter()
            .map(|node| match *node {
                Node::Leaf { proba, .. } => QuantNodeDesc::Leaf { value: proba },
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                    ..
                } => QuantNodeDesc::Split {
                    feature,
                    threshold,
                    left,
                    right,
                },
            })
            .collect()
    }

    /// Repacks this tree against externally shared bins (the forest builds
    /// one [`FeatureBins`] over all member trees so a batch quantizes once).
    pub(crate) fn quant_nodes(&self, bins: &FeatureBins) -> QuantNodes {
        QuantNodes::from_arena(&self.quant_desc(), bins)
    }

    /// Rebuilds the quantized mirror from the arena (fit + restore).
    fn rebuild_quant(&mut self) {
        let mut per_feature = vec![Vec::new(); self.n_features];
        self.collect_split_thresholds(&mut per_feature);
        self.quant = FeatureBins::from_split_thresholds(per_feature, NanRoute::Right).map(|bins| {
            let nodes = self.quant_nodes(&bins);
            QuantTree { bins, nodes }
        });
    }

    /// Fits with externally chosen sample indices (used by bagging).
    pub(crate) fn fit_indices(&mut self, x: &Matrix, y: &[usize], indices: &[usize]) {
        assert_eq!(x.rows(), y.len(), "x rows must match label count");
        assert!(!indices.is_empty(), "cannot fit a tree on zero samples");
        self.n_features = x.cols();
        self.nodes.clear();
        let mut rng = SplitMix::new(self.config.seed);
        let mut idx = indices.to_vec();
        self.build(x, y, &mut idx, 0, &mut rng);
        self.flat = FlatNodes::from_arena(&self.nodes);
        self.rebuild_quant();
    }

    /// Recursively builds the subtree over `indices`, returning its node id.
    fn build(
        &mut self,
        x: &Matrix,
        y: &[usize],
        indices: &mut [usize],
        depth: usize,
        rng: &mut SplitMix,
    ) -> usize {
        let n = indices.len();
        let ones: usize = indices.iter().map(|&i| y[i]).sum();
        let proba = ones as f64 / n as f64;

        let pure = ones == 0 || ones == n;
        if pure || depth >= self.config.max_depth || n < self.config.min_samples_split {
            self.nodes.push(Node::Leaf {
                proba,
                cover: n as f64,
            });
            return self.nodes.len() - 1;
        }

        let Some((feature, threshold)) = self.best_split(x, y, indices, rng) else {
            self.nodes.push(Node::Leaf {
                proba,
                cover: n as f64,
            });
            return self.nodes.len() - 1;
        };

        // Partition in place.
        let mut split_point = 0;
        for i in 0..n {
            if x[(indices[i], feature)] <= threshold {
                indices.swap(i, split_point);
                split_point += 1;
            }
        }
        debug_assert!(split_point > 0 && split_point < n);

        let node_id = self.nodes.len();
        self.nodes.push(Node::Split {
            feature,
            threshold,
            left: usize::MAX,
            right: usize::MAX,
            cover: n as f64,
        });
        let (left_idx, right_idx) = indices.split_at_mut(split_point);
        let left = self.build(x, y, left_idx, depth + 1, rng);
        let right = self.build(x, y, right_idx, depth + 1, rng);
        if let Node::Split {
            left: l, right: r, ..
        } = &mut self.nodes[node_id]
        {
            *l = left;
            *r = right;
        }
        node_id
    }

    /// Exact greedy split search: scans sorted values of a (possibly
    /// subsampled) feature set, maximizing Gini gain.
    fn best_split(
        &self,
        x: &Matrix,
        y: &[usize],
        indices: &[usize],
        rng: &mut SplitMix,
    ) -> Option<(usize, f64)> {
        let n = indices.len() as f64;
        let total_ones: usize = indices.iter().map(|&i| y[i]).sum();

        let d = x.cols();
        let mut features: Vec<usize> = (0..d).collect();
        let n_features = self.config.max_features.unwrap_or(d).clamp(1, d);
        if n_features < d {
            rng.shuffle(&mut features);
            features.truncate(n_features);
        }

        let mut best: Option<(f64, usize, f64)> = None; // (gain_proxy, feature, threshold)
        let mut pairs: Vec<(f64, usize)> = Vec::with_capacity(indices.len());
        for &f in &features {
            pairs.clear();
            pairs.extend(indices.iter().map(|&i| (x[(i, f)], y[i])));
            pairs.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).expect("finite features"));

            let mut left_n = 0f64;
            let mut left_ones = 0f64;
            for k in 0..pairs.len() - 1 {
                left_n += 1.0;
                left_ones += pairs[k].1 as f64;
                // Only split between distinct values.
                if pairs[k].0 == pairs[k + 1].0 {
                    continue;
                }
                let right_n = n - left_n;
                if (left_n as usize) < self.config.min_samples_leaf
                    || (right_n as usize) < self.config.min_samples_leaf
                {
                    continue;
                }
                let right_ones = total_ones as f64 - left_ones;
                // Weighted Gini of children; lower is better. Use the
                // negative as the gain proxy (parent impurity is constant).
                let gini_l =
                    1.0 - (left_ones / left_n).powi(2) - ((left_n - left_ones) / left_n).powi(2);
                let gini_r = 1.0
                    - (right_ones / right_n).powi(2)
                    - ((right_n - right_ones) / right_n).powi(2);
                let score = -(left_n * gini_l + right_n * gini_r) / n;
                if best.is_none_or(|(s, _, _)| score > s) {
                    let threshold = 0.5 * (pairs[k].0 + pairs[k + 1].0);
                    best = Some((score, f, threshold));
                }
            }
        }
        // Zero-gain splits are kept (scikit-learn behaviour): on XOR-like
        // data the first split has zero Gini gain yet enables the pure
        // splits below it. Children can never be worse than the parent.
        best.map(|(_, f, t)| (f, t))
    }
}

impl Classifier for DecisionTree {
    fn fit(&mut self, x: &Matrix, y: &[usize]) {
        let indices: Vec<usize> = (0..x.rows()).collect();
        self.fit_indices(x, y, &indices);
    }

    fn predict_proba(&self, x: &Matrix) -> Vec<f64> {
        self.predict_proba_batch(x)
    }

    fn name(&self) -> &'static str {
        "DecisionTree"
    }
}

// --- Persistence -----------------------------------------------------------

use phishinghook_persist::{PersistError, Reader, Restore, Snapshot, Writer};

impl Snapshot for TreeConfig {
    fn snapshot(&self, w: &mut Writer) {
        w.put_usize(self.max_depth);
        w.put_usize(self.min_samples_split);
        w.put_usize(self.min_samples_leaf);
        self.max_features.snapshot(w);
        w.put_u64(self.seed);
    }
}

impl Restore for TreeConfig {
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(TreeConfig {
            max_depth: r.take_usize()?,
            min_samples_split: r.take_usize()?,
            min_samples_leaf: r.take_usize()?,
            max_features: Option::restore(r)?,
            seed: r.take_u64()?,
        })
    }
}

impl Snapshot for Node {
    fn snapshot(&self, w: &mut Writer) {
        match *self {
            Node::Leaf { proba, cover } => {
                w.put_u8(0);
                w.put_f64(proba);
                w.put_f64(cover);
            }
            Node::Split {
                feature,
                threshold,
                left,
                right,
                cover,
            } => {
                w.put_u8(1);
                w.put_usize(feature);
                w.put_f64(threshold);
                w.put_usize(left);
                w.put_usize(right);
                w.put_f64(cover);
            }
        }
    }
}

impl Restore for Node {
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        match r.take_u8()? {
            0 => Ok(Node::Leaf {
                proba: r.take_f64()?,
                cover: r.take_f64()?,
            }),
            1 => Ok(Node::Split {
                feature: r.take_usize()?,
                threshold: r.take_f64()?,
                left: r.take_usize()?,
                right: r.take_usize()?,
                cover: r.take_f64()?,
            }),
            tag => Err(PersistError::Malformed(format!(
                "unknown tree-node tag {tag:#04x}"
            ))),
        }
    }
}

impl Snapshot for DecisionTree {
    fn snapshot(&self, w: &mut Writer) {
        // The flat struct-of-arrays mirror is derived state: only the
        // canonical arena travels, and restore rebuilds the mirror exactly
        // as `fit_indices` does.
        self.config.snapshot(w);
        w.put_usize(self.n_features);
        self.nodes.snapshot(w);
    }
}

impl Restore for DecisionTree {
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let config = TreeConfig::restore(r)?;
        let n_features = r.take_usize()?;
        let nodes: Vec<Node> = Vec::restore(r)?;
        for (i, node) in nodes.iter().enumerate() {
            if let Node::Split {
                feature,
                left,
                right,
                ..
            } = *node
            {
                if feature >= n_features || feature >= usize::from(FlatNodes::LEAF) {
                    return Err(PersistError::Malformed(format!(
                        "node {i} splits on feature {feature} but the tree has {n_features}"
                    )));
                }
                // Children must point strictly forward: `build` pushes the
                // parent before recursing, so every legitimate arena is
                // topologically ordered — and forward-only edges make
                // cycles (which would hang the lockstep walk) impossible.
                if left >= nodes.len() || right >= nodes.len() || left <= i || right <= i {
                    return Err(PersistError::Malformed(format!(
                        "node {i} has invalid children ({left}/{right} of {})",
                        nodes.len()
                    )));
                }
            }
        }
        let flat = FlatNodes::from_arena(&nodes);
        let mut tree = DecisionTree {
            config,
            nodes,
            flat,
            quant: None,
            n_features,
        };
        tree.rebuild_quant();
        Ok(tree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn xor_dataset() -> (Matrix, Vec<usize>) {
        // XOR is not linearly separable; a depth-2 tree solves it.
        let x = Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ]);
        let y = vec![0, 1, 1, 0];
        (x, y)
    }

    #[test]
    fn fits_xor_exactly() {
        let (x, y) = xor_dataset();
        let mut tree = DecisionTree::with_defaults();
        tree.fit(&x, &y);
        assert_eq!(tree.predict(&x), y);
        assert!(tree.depth() >= 2);
    }

    #[test]
    fn pure_node_is_single_leaf() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let y = vec![1, 1, 1];
        let mut tree = DecisionTree::with_defaults();
        tree.fit(&x, &y);
        assert_eq!(tree.nodes().len(), 1);
        assert_eq!(tree.predict_proba(&x), vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn zero_column_matrix_predicts_the_leaf() {
        // Pure labels never reach best_split, so a zero-column fit yields a
        // single leaf; batch prediction must return it rather than read a
        // (nonexistent) feature column.
        let x = Matrix::zeros(3, 0);
        let y = vec![1, 1, 1];
        let mut tree = DecisionTree::with_defaults();
        tree.fit(&x, &y);
        assert_eq!(tree.predict_proba(&x), vec![1.0, 1.0, 1.0]);
        assert_eq!(tree.predict_proba_batch(&x), vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn max_depth_zero_gives_prior() {
        let (x, y) = xor_dataset();
        let mut tree = DecisionTree::new(TreeConfig {
            max_depth: 0,
            ..TreeConfig::default()
        });
        tree.fit(&x, &y);
        assert_eq!(tree.nodes().len(), 1);
        assert_eq!(tree.predict_proba(&x), vec![0.5; 4]);
    }

    #[test]
    fn min_samples_leaf_respected() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]);
        let y = vec![0, 0, 0, 1];
        let cfg = TreeConfig {
            min_samples_leaf: 2,
            ..TreeConfig::default()
        };
        let mut tree = DecisionTree::new(cfg);
        tree.fit(&x, &y);
        // The only valid splits keep >=2 on each side, so the 3-vs-1 pure
        // split is forbidden; check every leaf's cover.
        for node in tree.nodes() {
            if let Node::Leaf { cover, .. } = node {
                assert!(*cover >= 2.0);
            }
        }
    }

    #[test]
    fn duplicated_feature_values_never_split_between_equals() {
        let x = Matrix::from_rows(&[vec![1.0], vec![1.0], vec![1.0], vec![1.0]]);
        let y = vec![0, 1, 0, 1];
        let mut tree = DecisionTree::with_defaults();
        tree.fit(&x, &y);
        // No split possible: constant feature.
        assert_eq!(tree.nodes().len(), 1);
    }

    #[test]
    fn covers_are_consistent() {
        let (x, y) = xor_dataset();
        let mut tree = DecisionTree::with_defaults();
        tree.fit(&x, &y);
        // Root cover equals the number of samples; each split's children sum
        // to the parent cover.
        let nodes = tree.nodes();
        let root_cover = match nodes[0] {
            Node::Leaf { cover, .. } | Node::Split { cover, .. } => cover,
        };
        assert_eq!(root_cover, 4.0);
        for node in nodes {
            if let Node::Split {
                left, right, cover, ..
            } = node
            {
                let lc = match nodes[*left] {
                    Node::Leaf { cover, .. } | Node::Split { cover, .. } => cover,
                };
                let rc = match nodes[*right] {
                    Node::Leaf { cover, .. } | Node::Split { cover, .. } => cover,
                };
                assert_eq!(lc + rc, *cover);
            }
        }
    }

    proptest! {
        #[test]
        fn training_accuracy_is_high_on_separable_data(seed in any::<u64>()) {
            // Linearly separable blobs: tree should fit (near-)perfectly.
            let mut rng = crate::classical::SplitMix::new(seed);
            let mut rows = Vec::new();
            let mut y = Vec::new();
            for i in 0..60 {
                let label = i % 2;
                let center = if label == 0 { -2.0 } else { 2.0 };
                rows.push(vec![center + rng.normal() * 0.3, center + rng.normal() * 0.3]);
                y.push(label);
            }
            let x = Matrix::from_rows(&rows);
            let mut tree = DecisionTree::with_defaults();
            tree.fit(&x, &y);
            let correct = tree
                .predict(&x)
                .iter()
                .zip(&y)
                .filter(|(a, b)| a == b)
                .count();
            prop_assert!(correct >= 58, "only {correct}/60 correct");
        }

        #[test]
        fn probabilities_are_valid(seed in any::<u64>()) {
            let mut rng = crate::classical::SplitMix::new(seed);
            let rows: Vec<Vec<f64>> =
                (0..30).map(|_| vec![rng.unit(), rng.unit()]).collect();
            let y: Vec<usize> = (0..30).map(|_| rng.below(2)).collect();
            let x = Matrix::from_rows(&rows);
            let mut tree = DecisionTree::with_defaults();
            tree.fit(&x, &y);
            for p in tree.predict_proba(&x) {
                prop_assert!((0.0..=1.0).contains(&p));
            }
        }

        #[test]
        fn quantized_batch_is_bit_identical_to_arena_walk(seed in any::<u64>()) {
            // The quantized path bins on the tree's own thresholds, so it
            // must agree with the arena walk bit-for-bit — including NaN
            // rows (route right) and values far outside the training range
            // (clamped at transform time).
            let mut rng = crate::classical::SplitMix::new(seed);
            let mut rows: Vec<Vec<f64>> =
                (0..48).map(|_| vec![rng.unit(), rng.unit(), rng.unit()]).collect();
            let y: Vec<usize> = (0..48).map(|_| rng.below(2)).collect();
            let train = Matrix::from_rows(&rows);
            let mut tree = DecisionTree::with_defaults();
            tree.fit(&train, &y);
            // Corrupt some evaluation rows: NaN and out-of-range values.
            for (i, row) in rows.iter_mut().enumerate() {
                if i % 7 == 0 { row[i % 3] = f64::NAN; }
                if i % 5 == 0 { row[(i + 1) % 3] = 1e9 * if i % 2 == 0 { 1.0 } else { -1.0 }; }
            }
            let x = Matrix::from_rows(&rows);
            let quant = tree.predict_proba_batch_quantized(&x).expect("within bin budget");
            for (i, row) in x.iter_rows().enumerate() {
                prop_assert_eq!(quant[i], tree.predict_row_arena(row), "row {}", i);
            }
        }

        #[test]
        fn flat_traversal_matches_arena_walk(seed in any::<u64>()) {
            // The flat struct-of-arrays path must agree with the seed's
            // enum-node walk on every row — bit-identical, not just close.
            let mut rng = crate::classical::SplitMix::new(seed);
            let rows: Vec<Vec<f64>> =
                (0..40).map(|_| vec![rng.unit(), rng.unit(), rng.unit()]).collect();
            let y: Vec<usize> = (0..40).map(|_| rng.below(2)).collect();
            let x = Matrix::from_rows(&rows);
            let mut tree = DecisionTree::with_defaults();
            tree.fit(&x, &y);
            let batch = tree.predict_proba_batch(&x);
            for (i, row) in x.iter_rows().enumerate() {
                let arena = tree.predict_row_arena(row);
                prop_assert_eq!(tree.predict_row(row), arena);
                prop_assert!((batch[i] - arena).abs() <= 1e-12);
            }
        }
    }
}
