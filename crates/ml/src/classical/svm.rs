//! RBF-kernel SVM via random Fourier features (Rahimi–Recht).
//!
//! The paper's "SVM" HSC is scikit-learn's kernelized SVC. Exact SMO is
//! quadratic in the training-set size; the standard large-scale substitute is
//! to approximate the RBF kernel `k(x,y) = exp(-γ‖x−y‖²)` with an explicit
//! feature map `z(x) = √(2/D)·cos(Wx + b)`, `W ~ N(0, 2γ)`, `b ~ U[0, 2π)`,
//! and train a linear SVM (Pegasos) on `z(x)`. With `D` a few hundred, the
//! approximation error is small relative to fold-to-fold variance.

use crate::classical::linear::{sigmoid, LinearSvm, Scaler};
use crate::classical::SplitMix;
use crate::matrix::Matrix;
use crate::Classifier;

/// Hyperparameters for an [`RbfSvm`].
#[derive(Debug, Clone, PartialEq)]
pub struct RbfSvmConfig {
    /// Kernel width γ; `None` selects `0.1/d` (tuned on the calibration
    /// corpus; see the `calibrate` binary).
    pub gamma: Option<f64>,
    /// Number of random Fourier features.
    pub n_components: usize,
    /// Pegasos regularization λ.
    pub lambda: f64,
    /// Pegasos epochs.
    pub epochs: usize,
    /// RNG seed (feature map and SGD order).
    pub seed: u64,
}

impl Default for RbfSvmConfig {
    fn default() -> Self {
        RbfSvmConfig {
            gamma: None,
            n_components: 768,
            lambda: 1e-6,
            epochs: 120,
            seed: 13,
        }
    }
}

/// An RBF SVM fitted through a random-Fourier-feature map.
#[derive(Debug, Clone)]
pub struct RbfSvm {
    config: RbfSvmConfig,
    /// Projection matrix `W` (n_components × d).
    w: Matrix,
    /// Phase offsets `b`.
    phases: Vec<f64>,
    linear: LinearSvm,
    scaler: Option<Scaler>,
}

impl RbfSvm {
    /// Creates an unfitted model.
    pub fn new(config: RbfSvmConfig) -> Self {
        RbfSvm {
            linear: LinearSvm::new(config.lambda, config.epochs, config.seed ^ 0xDEAD),
            config,
            w: Matrix::zeros(0, 0),
            phases: Vec::new(),
            scaler: None,
        }
    }

    /// Creates an unfitted model with default hyperparameters.
    pub fn with_defaults() -> Self {
        Self::new(RbfSvmConfig::default())
    }

    /// Width of the raw feature space the fitted Fourier map projects from
    /// (`None` before fit).
    pub fn n_features(&self) -> Option<usize> {
        if self.w.rows() == 0 {
            None
        } else {
            Some(self.w.cols())
        }
    }

    /// Applies the fitted random feature map to a standardized row.
    fn features(&self, scaled: &[f64]) -> Vec<f64> {
        let norm = (2.0 / self.config.n_components as f64).sqrt();
        self.w
            .iter_rows()
            .zip(&self.phases)
            .map(|(w_row, phase)| {
                let dot: f64 = w_row.iter().zip(scaled).map(|(a, b)| a * b).sum();
                norm * (dot + phase).cos()
            })
            .collect()
    }

    fn transform(&self, x: &Matrix) -> Matrix {
        let scaler = self.scaler.as_ref().expect("transform before fit");
        let rows: Vec<Vec<f64>> = x
            .iter_rows()
            .map(|r| self.features(&scaler.transform_row(r)))
            .collect();
        Matrix::from_rows(&rows)
    }
}

impl Classifier for RbfSvm {
    fn fit(&mut self, x: &Matrix, y: &[usize]) {
        assert_eq!(x.rows(), y.len(), "x rows must match label count");
        assert!(x.rows() > 0, "cannot fit on an empty dataset");
        let d = x.cols();
        let gamma = self.config.gamma.unwrap_or(0.1 / d.max(1) as f64);
        let mut rng = SplitMix::new(self.config.seed);
        let sigma = (2.0 * gamma).sqrt();
        let mut w = Matrix::zeros(self.config.n_components, d);
        for i in 0..self.config.n_components {
            for j in 0..d {
                w[(i, j)] = rng.normal() * sigma;
            }
        }
        self.phases = (0..self.config.n_components)
            .map(|_| rng.unit() * std::f64::consts::TAU)
            .collect();
        self.w = w;
        self.scaler = Some(Scaler::fit(x));

        let z = self.transform(x);
        self.linear = LinearSvm::new(
            self.config.lambda,
            self.config.epochs,
            self.config.seed ^ 0xDEAD,
        );
        self.linear.fit_prescaled(&z, y);
    }

    fn predict_proba(&self, x: &Matrix) -> Vec<f64> {
        let z = self.transform(x);
        // fit_prescaled skips the inner scaler, so query decision values on
        // the raw feature map.
        let raw: Vec<f64> = z
            .iter_rows()
            .map(|row| {
                self.linear
                    .weights_bias()
                    .map(|(w, b)| b + row.iter().zip(w).map(|(a, c)| a * c).sum::<f64>())
                    .expect("predict before fit")
            })
            .collect();
        raw.into_iter().map(|m| sigmoid(2.0 * m)).collect()
    }

    fn name(&self) -> &'static str {
        "SVM"
    }
}

// --- Persistence -----------------------------------------------------------

use phishinghook_persist::{PersistError, Reader, Restore, Snapshot, Writer};

impl Snapshot for RbfSvmConfig {
    fn snapshot(&self, w: &mut Writer) {
        self.gamma.snapshot(w);
        w.put_usize(self.n_components);
        w.put_f64(self.lambda);
        w.put_usize(self.epochs);
        w.put_u64(self.seed);
    }
}

impl Restore for RbfSvmConfig {
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(RbfSvmConfig {
            gamma: Option::restore(r)?,
            n_components: r.take_usize()?,
            lambda: r.take_f64()?,
            epochs: r.take_usize()?,
            seed: r.take_u64()?,
        })
    }
}

impl Snapshot for RbfSvm {
    fn snapshot(&self, w: &mut Writer) {
        // Both the fitted random feature map (W, b) and the linear model on
        // top of it travel, so restored decision values are bit-identical.
        self.config.snapshot(w);
        self.w.snapshot(w);
        self.phases.snapshot(w);
        self.linear.snapshot(w);
        self.scaler.snapshot(w);
    }
}

impl Restore for RbfSvm {
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(RbfSvm {
            config: RbfSvmConfig::restore(r)?,
            w: Matrix::restore(r)?,
            phases: Vec::restore(r)?,
            linear: LinearSvm::restore(r)?,
            scaler: Option::restore(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two concentric rings: not linearly separable, easy for RBF.
    fn rings(n: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = SplitMix::new(seed);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let label = i % 2;
            let radius = if label == 0 { 1.0 } else { 3.0 };
            let angle = rng.unit() * std::f64::consts::TAU;
            let r = radius + rng.normal() * 0.15;
            rows.push(vec![r * angle.cos(), r * angle.sin()]);
            y.push(label);
        }
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn solves_concentric_rings() {
        let (x, y) = rings(200, 1);
        let mut svm = RbfSvm::new(RbfSvmConfig {
            gamma: Some(1.0),
            ..Default::default()
        });
        svm.fit(&x, &y);
        let correct = svm
            .predict(&x)
            .iter()
            .zip(&y)
            .filter(|(a, b)| a == b)
            .count();
        assert!(correct >= 190, "only {correct}/200");
    }

    #[test]
    fn generalizes_to_fresh_rings() {
        let (x, y) = rings(200, 2);
        let mut svm = RbfSvm::new(RbfSvmConfig {
            gamma: Some(1.0),
            ..Default::default()
        });
        svm.fit(&x, &y);
        let (xt, yt) = rings(100, 3);
        let correct = svm
            .predict(&xt)
            .iter()
            .zip(&yt)
            .filter(|(a, b)| a == b)
            .count();
        assert!(correct >= 90, "only {correct}/100");
    }

    #[test]
    fn deterministic_under_seed() {
        let (x, y) = rings(80, 4);
        let mut a = RbfSvm::with_defaults();
        let mut b = RbfSvm::with_defaults();
        a.fit(&x, &y);
        b.fit(&x, &y);
        assert_eq!(a.predict_proba(&x), b.predict_proba(&x));
    }

    #[test]
    fn probabilities_bounded() {
        let (x, y) = rings(60, 5);
        let mut svm = RbfSvm::with_defaults();
        svm.fit(&x, &y);
        for p in svm.predict_proba(&x) {
            assert!((0.0..=1.0).contains(&p) && p.is_finite());
        }
    }
}
