//! Quantized tree inference: model-derived feature binning and a packed,
//! cache-line-dense node layout for the batch scoring hot path.
//!
//! The paper's serving workload is dominated by walking tree ensembles over
//! opcode-histogram rows. The f64 walk ([`crate::classical::tree`]'s
//! struct-of-arrays mirror) touches three parallel arrays per node visit
//! plus an 8-byte feature value per lane; at depth 20 that is cache-miss
//! bound. This module shrinks both sides of every comparison:
//!
//! * [`FeatureBins`] bins each feature column to `u16` using the model's
//!   **own split thresholds** as bin edges. Binning against the thresholds
//!   (rather than data quantiles) makes the quantized comparison *exactly*
//!   equivalent to the raw one: with the per-feature edges sorted and
//!   distinct, `v <= edges[j]` ⇔ `rank(v) <= j` where
//!   `rank(v) = #{edges < v}`. The quantized walk therefore reproduces the
//!   f64 arena walk bit-for-bit — a stronger property than the
//!   verdict-equality the serving contract requires.
//! * [`QuantNodes`] repacks a tree into 8-byte nodes (`u16` feature id,
//!   `u16` quantized threshold, `u32` first-child index) with siblings
//!   adjacent, so 8 nodes share a cache line and the child edge is one
//!   add instead of a `children[2i + side]` gather. Leaf probabilities
//!   stay in a separate `f64` array touched once per row, after the walk.
//!
//! NaN routing is preserved at transform time: the raw walks send NaN
//! right (`!(v <= t)`) in binary trees but left (`v > t` is false) in
//! oblivious trees, so [`FeatureBins`] maps NaN to `u16::MAX` or `0`
//! according to the model family it was built for. Out-of-range values
//! clamp naturally: anything below every edge ranks 0, anything above
//! ranks `edge_count`, both of which compare exactly like the raw value
//! against every in-model threshold.
//!
//! Everything here is **derived state**: built at fit time, rebuilt on
//! snapshot restore exactly like the f64 struct-of-arrays mirror, and
//! never persisted — the snapshot format is unchanged.

use crate::matrix::Matrix;

/// Maximum distinct split thresholds per feature. Quantized values then fit
/// `0..=MAX_EDGES` with `u16::MAX` left free as the NaN sentinel (which must
/// compare greater than every quantized threshold so NaN keeps routing
/// right in binary trees).
const MAX_EDGES: usize = u16::MAX as usize - 1;

/// Where a feature comparison sends NaN, per model family.
///
/// Binary trees (`DecisionTree`, the boosted `RegTree`s) branch with
/// `if v <= t { left } else { right }`, so NaN falls right; oblivious trees
/// set their level bit with `v > t`, so NaN falls left. The quantized
/// matrix is shared by every tree of one model, which is sound because a
/// fitted model never mixes the two families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NanRoute {
    /// NaN maps to `u16::MAX`: greater than every quantized threshold.
    Right,
    /// NaN maps to `0`: never greater than any quantized threshold.
    Left,
}

/// Per-feature bin edges derived from a fitted model's split thresholds.
///
/// Feature `f`'s edges are its sorted, deduplicated split thresholds across
/// every tree of the model. A raw value quantizes to its rank among those
/// edges (the count of edges strictly below it), which preserves every
/// in-model comparison exactly (see the module docs for the equivalence).
#[derive(Debug, Clone)]
pub struct FeatureBins {
    /// `edges[offsets[f] as usize..offsets[f + 1] as usize]` are feature
    /// `f`'s ascending, distinct edges.
    offsets: Vec<u32>,
    edges: Vec<f64>,
    /// Per-feature rank lookup tables for small non-negative integers:
    /// `luts[lut_offsets[f] + i] = rank(i as f64)`. Histogram features are
    /// raw opcode counts, so nearly every value in a real batch is a small
    /// integer and quantizes with one bounds-checked load instead of a
    /// binary search whose data-dependent branches mispredict about half
    /// the time. Non-integer, negative, or out-of-table values fall back
    /// to the search, so the table is a pure fast path — never a source
    /// of approximation.
    lut_offsets: Vec<u32>,
    luts: Vec<u16>,
    nan_route: NanRoute,
}

impl FeatureBins {
    /// Builds bins from per-feature split-threshold lists (unsorted, with
    /// duplicates). Returns `None` when any feature carries more than
    /// 65 534 distinct thresholds — the caller then keeps the f64 path.
    ///
    /// # Panics
    /// Panics on a non-finite threshold: fitted trees only ever split on
    /// finite midpoints, so one here is a builder bug.
    pub fn from_split_thresholds(
        mut per_feature: Vec<Vec<f64>>,
        nan_route: NanRoute,
    ) -> Option<FeatureBins> {
        let mut offsets = Vec::with_capacity(per_feature.len() + 1);
        let mut edges = Vec::new();
        let mut lut_offsets = Vec::with_capacity(per_feature.len() + 1);
        let mut luts = Vec::new();
        offsets.push(0u32);
        lut_offsets.push(0u32);
        for list in &mut per_feature {
            assert!(
                list.iter().all(|t| t.is_finite()),
                "split thresholds are finite"
            );
            list.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite thresholds"));
            list.dedup();
            if list.len() > MAX_EDGES {
                return None;
            }
            // Integer fast-path table: one entry past the last edge so the
            // top rank (`edge_count`, everything-above) is also a table hit.
            let lut_len = match list.last() {
                Some(&last) if last >= 0.0 => ((last.floor() as usize) + 2).min(Self::LUT_CAP),
                _ => 0,
            };
            for i in 0..lut_len {
                luts.push(list.partition_point(|&edge| edge < i as f64) as u16);
            }
            edges.extend_from_slice(list);
            offsets.push(edges.len() as u32);
            lut_offsets.push(luts.len() as u32);
        }
        // One pad entry past every offset: the vector transform gathers
        // 32-bit loads from the `u16` table, so the read at the last valid
        // index spills two bytes past it.
        luts.push(0);
        Some(FeatureBins {
            offsets,
            edges,
            lut_offsets,
            luts,
            nan_route,
        })
    }

    /// Number of feature columns these bins cover.
    pub fn n_features(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Where these bins send NaN values.
    pub fn nan_route(&self) -> NanRoute {
        self.nan_route
    }

    /// Feature `f`'s ascending, distinct edges.
    fn feature_edges(&self, f: usize) -> &[f64] {
        &self.edges[self.offsets[f] as usize..self.offsets[f + 1] as usize]
    }

    /// The widest per-feature bin count (`edges + 1`; at least 1). This is
    /// the number observability surfaces report as the bin count.
    pub fn max_bins(&self) -> usize {
        (0..self.n_features())
            .map(|f| self.feature_edges(f).len() + 1)
            .max()
            .unwrap_or(1)
    }

    /// Per-feature cap on the integer lookup table. Opcode counts rarely
    /// reach the hundreds, so 4096 entries (8 KiB) covers real features
    /// with room to spare while bounding worst-case table memory; values
    /// past the cap take the binary-search fallback.
    const LUT_CAP: usize = 4096;

    /// Feature `f`'s integer fast-path table (possibly empty).
    #[inline]
    fn feature_lut(&self, f: usize) -> &[u16] {
        &self.luts[self.lut_offsets[f] as usize..self.lut_offsets[f + 1] as usize]
    }

    /// Quantizes one raw value of feature `f`: its rank among the feature's
    /// edges, with NaN mapped per [`FeatureBins::nan_route`]. Values below
    /// every edge rank 0 and values above every edge rank `edge_count` —
    /// out-of-range inputs clamp here, at transform time.
    ///
    /// Small non-negative integers — the overwhelmingly common case for
    /// opcode-histogram features — resolve through the precomputed rank
    /// table; everything else (fractional, negative, huge, NaN) takes the
    /// exact search fallback, so both paths return the same rank.
    #[inline]
    pub fn quantize_value(&self, f: usize, v: f64) -> u16 {
        // `as usize` saturates (negative → 0, huge/NaN → MAX), and the
        // round-trip equality check rejects anything that isn't exactly a
        // small non-negative integer — including NaN and -0.5.
        let i = v as usize;
        let lut = self.feature_lut(f);
        if i < lut.len() && i as f64 == v {
            return lut[i];
        }
        if v.is_nan() {
            return match self.nan_route {
                NanRoute::Right => u16::MAX,
                NanRoute::Left => 0,
            };
        }
        self.feature_edges(f).partition_point(|&edge| edge < v) as u16
    }

    /// Quantizes a split threshold of feature `f` — the threshold's own
    /// index among the feature's edges. The threshold must be one of the
    /// edges these bins were built from.
    pub fn quantize_threshold(&self, f: usize, t: f64) -> u16 {
        let edges = self.feature_edges(f);
        let idx = edges.partition_point(|&edge| edge < t);
        debug_assert!(
            edges.get(idx) == Some(&t) || (t == 0.0 && edges.get(idx).is_some_and(|e| *e == 0.0)),
            "threshold {t} is not an edge of feature {f}"
        );
        idx as u16
    }

    /// Quantizes the first [`FeatureBins::n_features`] columns of `x` into
    /// a dense `u16` matrix (extra trailing columns — which no tree tests —
    /// are ignored).
    ///
    /// # Panics
    /// Panics when `x` has fewer columns than these bins cover.
    pub fn quantize_matrix(&self, x: &Matrix) -> QuantMatrix {
        self.quantize_matrix_threaded(x, 1)
    }

    /// Minimum quantized values per worker before
    /// [`FeatureBins::quantize_matrix_threaded`] spawns it: below this the
    /// scoped-thread spawn costs more than the lookup work it offloads.
    const VALUES_PER_THREAD: usize = 1 << 17;

    /// [`FeatureBins::quantize_matrix`] with the rows sharded across up to
    /// `threads` scoped threads (fewer when the matrix is too small to
    /// amortize the spawns). Quantization is per-value exact, so the result
    /// is identical for any thread count.
    pub fn quantize_matrix_threaded(&self, x: &Matrix, threads: usize) -> QuantMatrix {
        let cols = self.n_features();
        assert!(
            x.cols() >= cols,
            "matrix has {} columns but the model tests {cols}",
            x.cols()
        );
        let rows = x.rows();
        let mut data = vec![0u16; rows * cols];
        let threads = threads
            .max(1)
            .min(rows.max(1))
            .min(((rows * cols) / Self::VALUES_PER_THREAD).max(1));
        if threads == 1 || cols == 0 {
            self.quantize_rows_into(x, 0, &mut data);
        } else {
            let rows_per_thread = rows.div_ceil(threads);
            std::thread::scope(|scope| {
                for (t, chunk) in data.chunks_mut(rows_per_thread * cols).enumerate() {
                    scope.spawn(move || self.quantize_rows_into(x, t * rows_per_thread, chunk));
                }
            });
        }
        QuantMatrix { rows, cols, data }
    }

    /// Quantizes rows `lo..hi` of `x` into a standalone [`QuantMatrix`]
    /// whose row `k` mirrors `x`'s row `lo + k`. This is the fused-path
    /// building block: a scoring thread quantizes exactly the rows it will
    /// walk, so the `u16` rows are still cache-hot when the walk reads
    /// them and no cross-thread handoff (or extra spawn) is needed.
    pub fn quantize_row_range(&self, x: &Matrix, lo: usize, hi: usize) -> QuantMatrix {
        let cols = self.n_features();
        assert!(
            x.cols() >= cols,
            "matrix has {} columns but the model tests {cols}",
            x.cols()
        );
        assert!(lo <= hi && hi <= x.rows(), "row range out of bounds");
        let mut data = vec![0u16; (hi - lo) * cols];
        self.quantize_rows_into(x, lo, &mut data);
        QuantMatrix {
            rows: hi - lo,
            cols,
            data,
        }
    }

    /// Quantizes rows `row0..` of `x` into `out` (whole rows,
    /// `out.len() % n_features == 0`).
    ///
    /// Runs row-major — the same direction the data is laid out — so every
    /// load and store is sequential; the per-feature table bounds come from
    /// the flattened `lut_offsets` array, which is a few hundred bytes and
    /// L1-resident for the whole tile. On AVX2 hardware each row goes
    /// through the eight-wide gather kernel; elsewhere the scalar loop does
    /// one value load, two table-offset loads, two compares, and one table
    /// load per value on the integer fast path.
    fn quantize_rows_into(&self, x: &Matrix, row0: usize, out: &mut [u16]) {
        let cols = self.n_features();
        if cols == 0 {
            return;
        }
        let n = out.len() / cols;
        let xcols = x.cols();
        let data = &x.as_slice()[row0 * xcols..row0 * xcols + n * xcols];
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            for k in 0..n {
                let src = &data[k * xcols..k * xcols + cols];
                let dst = &mut out[k * cols..(k + 1) * cols];
                // SAFETY: AVX2 presence was just checked.
                unsafe { self.quantize_row_avx2(src, dst) };
            }
            return;
        }
        let nan_q = match self.nan_route {
            NanRoute::Right => u16::MAX,
            NanRoute::Left => 0,
        };
        let lut_offsets = &self.lut_offsets[..];
        let luts = &self.luts[..];
        for k in 0..n {
            let src = &data[k * xcols..k * xcols + cols];
            let dst = &mut out[k * cols..(k + 1) * cols];
            for f in 0..cols {
                // SAFETY: `f < cols`, `src`/`dst` are exactly `cols` long,
                // `lut_offsets` has `cols + 1` entries, and the `luts`
                // index is guarded by the `i < len` test (offsets are
                // cumulative, so `off + i < lut_offsets[f + 1] <=
                // luts.len()`).
                unsafe {
                    let v = *src.get_unchecked(f);
                    let i = v as usize;
                    let off = *lut_offsets.get_unchecked(f) as usize;
                    let len = *lut_offsets.get_unchecked(f + 1) as usize - off;
                    *dst.get_unchecked_mut(f) = if i < len && i as f64 == v {
                        *luts.get_unchecked(off + i)
                    } else if v.is_nan() {
                        nan_q
                    } else {
                        self.feature_edges(f).partition_point(|&edge| edge < v) as u16
                    };
                }
            }
        }
    }

    /// Quantizes one row with AVX2, eight features per step: truncate the
    /// eight `f64`s to `i32`, check `0 <= i < table_len` against the
    /// per-feature bounds, check the integer round-trip (`i as f64 == v`,
    /// which also rejects NaN), and gather the eight ranks from the
    /// flattened `u16` table in one masked-gather instruction. Any lane
    /// failing a check is patched through [`FeatureBins::quantize_value`],
    /// so every lane's output is identical to the scalar path's.
    ///
    /// # Safety
    /// The CPU must support AVX2. `src` and `dst` must be exactly
    /// `n_features()` long.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn quantize_row_avx2(&self, src: &[f64], dst: &mut [u16]) {
        use std::arch::x86_64::*;
        let cols = dst.len();
        debug_assert_eq!(src.len(), cols);
        debug_assert_eq!(cols, self.n_features());
        let mut f = 0usize;
        // SAFETY (for the whole block): `f + 8 <= cols` bounds the eight
        //-wide value loads and the `u16` store; `lut_offsets` has
        // `cols + 1` entries so the two offset loads at `f` and `f + 1`
        // end exactly at its last element; gather lanes are masked to
        // indices proven in-bounds (`0 <= i < len`, table slot
        // `off + i < lut_offsets[f + 1]`), and the table's trailing pad
        // entry covers the two extra bytes of the 32-bit load at the
        // highest index.
        unsafe {
            // Selects the low 32 bits of each 64-bit comparison mask.
            let low_halves = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
            while f + 8 <= cols {
                let v_lo = _mm256_loadu_pd(src.as_ptr().add(f));
                let v_hi = _mm256_loadu_pd(src.as_ptr().add(f + 4));
                // Truncating convert; out-of-range lanes and NaN become
                // `i32::MIN` and fail the sign check below.
                let i_lo = _mm256_cvttpd_epi32(v_lo);
                let i_hi = _mm256_cvttpd_epi32(v_hi);
                let idx = _mm256_set_m128i(i_hi, i_lo);
                // Integer round-trip: equal means the value is exactly the
                // converted integer; NaN compares unequal.
                let eq_lo = _mm256_castpd_si256(_mm256_cmp_pd::<_CMP_EQ_OQ>(
                    _mm256_cvtepi32_pd(i_lo),
                    v_lo,
                ));
                let eq_hi = _mm256_castpd_si256(_mm256_cmp_pd::<_CMP_EQ_OQ>(
                    _mm256_cvtepi32_pd(i_hi),
                    v_hi,
                ));
                let eq = _mm256_set_m128i(
                    _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(eq_hi, low_halves)),
                    _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(eq_lo, low_halves)),
                );
                let off = _mm256_loadu_si256(self.lut_offsets.as_ptr().add(f).cast());
                let end = _mm256_loadu_si256(self.lut_offsets.as_ptr().add(f + 1).cast());
                let len = _mm256_sub_epi32(end, off);
                // `0 <= idx < len`; both fit signed (`len <= LUT_CAP`).
                let ge0 = _mm256_cmpgt_epi32(idx, _mm256_set1_epi32(-1));
                let lt = _mm256_cmpgt_epi32(len, idx);
                let mask = _mm256_and_si256(_mm256_and_si256(ge0, lt), eq);
                // Masked-off lanes perform no load, so the wild indices of
                // rejected lanes never touch memory; scale 2 indexes u16s.
                let gathered = _mm256_mask_i32gather_epi32::<2>(
                    _mm256_setzero_si256(),
                    self.luts.as_ptr().cast(),
                    _mm256_add_epi32(off, idx),
                    mask,
                );
                let ranks = _mm256_and_si256(gathered, _mm256_set1_epi32(0xFFFF));
                let packed = _mm_packus_epi32(
                    _mm256_castsi256_si128(ranks),
                    _mm256_extracti128_si256::<1>(ranks),
                );
                _mm_storeu_si128(dst.as_mut_ptr().add(f).cast(), packed);
                let hit = _mm256_movemask_ps(_mm256_castsi256_ps(mask)) as u32;
                if hit != 0xFF {
                    // Cold: fractional, negative, NaN, or past-the-table
                    // values take the exact scalar path.
                    for k in 0..8 {
                        if hit & (1 << k) == 0 {
                            dst[f + k] = self.quantize_value(f + k, src[f + k]);
                        }
                    }
                }
                f += 8;
            }
        }
        for k in f..cols {
            dst[k] = self.quantize_value(k, src[k]);
        }
    }
}

/// A dense row-major `u16` matrix of quantized feature values — 4× denser
/// than the f64 rows it mirrors, so a scoring block's rows stay in L1.
#[derive(Debug, Clone)]
pub struct QuantMatrix {
    rows: usize,
    cols: usize,
    data: Vec<u16>,
}

impl QuantMatrix {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[u16] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }
}

/// One node a [`QuantNodes`] tree can be built from: the caller maps its
/// arena (enum nodes, `RegNode`s, …) into this shape once at build time.
#[derive(Debug, Clone, Copy)]
pub enum QuantNodeDesc {
    /// Terminal node carrying the value the walk accumulates (class-1
    /// probability for classification trees, leaf weight for boosting).
    Leaf {
        /// The accumulated value.
        value: f64,
    },
    /// Internal split: `x[feature] <= threshold` goes left.
    Split {
        /// Tested feature column.
        feature: usize,
        /// Raw split threshold (must be an edge of the paired bins).
        threshold: f64,
        /// Arena index of the left child.
        left: usize,
        /// Arena index of the right child.
        right: usize,
    },
}

/// An 8-byte packed node: one visit is a single 8-byte node load, one
/// `u16` value load, a compare, and an add. Splits store the tested
/// feature, the quantized threshold, and the index of the *left* child;
/// the right child is always `first_child + 1`, so the taken branch is
/// `first_child + (v > thr)` with no second pointer. Leaves carry
/// `thr == u16::MAX` (never exceeded — the NaN sentinel `u16::MAX` is not
/// *greater* than it) and point `first_child` at themselves, so a
/// finished lane self-loops exactly like the f64 walk.
///
/// A 16-byte 4-ary supernode covering two binary levels (three embedded
/// comparisons, four adjacent children) was tried and lost ~70%: half the
/// passes, but three scattered value loads plus a double-width node load
/// per visit swamp the saved loop overhead.
#[derive(Debug, Clone, Copy)]
struct PackedNode {
    feat: u16,
    thr: u16,
    first_child: u32,
}

/// A tree repacked for the quantized lockstep walk: breadth-first order
/// with sibling pairs adjacent (so a node stores only its left child's
/// index), plus the per-node leaf values in a separate `f64` array read
/// once per row after the walk converges. Nodes are 8 bytes, so a
/// forest-scale tree stays comfortably L1-resident.
#[derive(Debug, Clone)]
pub struct QuantNodes {
    nodes: Vec<PackedNode>,
    /// Leaf value per node (0.0 on splits), indexed like `nodes`.
    values: Vec<f64>,
    /// One past the highest feature index any split tests — the walk
    /// asserts the quantized matrix is at least this wide once per call,
    /// which is what makes its unchecked row indexing sound.
    needed_cols: usize,
    /// Longest root-to-leaf path. The walk runs exactly this many lockstep
    /// passes instead of re-checking convergence every pass: rows on
    /// shorter paths idle in their leaf self-loop, which costs a few dead
    /// visits but strips the change-tracking from the hot loop.
    depth: usize,
}

impl QuantNodes {
    /// Repacks an arena (root at index 0) against `bins`. Thresholds must
    /// all be edges of `bins` for the equivalence to hold.
    pub fn from_arena(arena: &[QuantNodeDesc], bins: &FeatureBins) -> QuantNodes {
        assert!(!arena.is_empty(), "cannot repack an empty tree");
        // Breadth-first order with both children pushed together makes
        // siblings adjacent, which is what lets a node store only its
        // first child's index.
        let mut order: Vec<u32> = Vec::with_capacity(arena.len());
        order.push(0);
        let mut depths: Vec<u32> = Vec::with_capacity(arena.len());
        depths.push(0);
        let mut nodes = Vec::with_capacity(arena.len());
        let mut values = Vec::with_capacity(arena.len());
        let mut needed_cols = 0usize;
        let mut depth = 0usize;
        let mut next = 0usize;
        while next < order.len() {
            let new_id = next as u32;
            depth = depth.max(depths[next] as usize);
            match arena[order[next] as usize] {
                QuantNodeDesc::Leaf { value } => {
                    nodes.push(PackedNode {
                        feat: 0,
                        thr: u16::MAX,
                        first_child: new_id,
                    });
                    values.push(value);
                }
                QuantNodeDesc::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let first_child = order.len() as u32;
                    order.push(left as u32);
                    order.push(right as u32);
                    let d = depths[next] + 1;
                    depths.push(d);
                    depths.push(d);
                    needed_cols = needed_cols.max(feature + 1);
                    nodes.push(PackedNode {
                        feat: u16::try_from(feature).expect("feature index fits u16"),
                        thr: bins.quantize_threshold(feature, threshold),
                        first_child,
                    });
                    values.push(0.0);
                }
            }
            next += 1;
        }
        QuantNodes {
            nodes,
            values,
            needed_cols,
            depth,
        }
    }

    /// Number of packed nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` for a tree with no nodes (never produced by
    /// [`QuantNodes::from_arena`], which rejects empty arenas).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds this tree's leaf value for rows `lo..hi` of `q` into
    /// `out[0..hi - lo]` — the quantized twin of the f64 lockstep walk,
    /// same group width, same self-loop termination, same accumulation
    /// order, so a model walking both produces bit-identical sums.
    ///
    /// The pass body indexes without bounds checks; soundness rests on two
    /// facts checked once up front instead of per visit:
    ///
    /// * every `first_child + 1` and every leaf self-index is in range by
    ///   [`QuantNodes::from_arena`]'s construction, so a slot can only ever
    ///   hold a valid node index;
    /// * the asserted `q.cols >= self.needed_cols` and `hi <= q.rows`
    ///   bound every `base + feat` below `q.data.len()`.
    pub fn accumulate_rows(&self, q: &QuantMatrix, lo: usize, hi: usize, out: &mut [f64]) {
        debug_assert_eq!(out.len(), hi - lo);
        assert!(lo <= hi && hi <= q.rows, "row range out of bounds");
        assert!(
            q.cols >= self.needed_cols,
            "matrix has {} columns but the tree tests {}",
            q.cols,
            self.needed_cols
        );
        let nodes = &self.nodes[..];
        if nodes.len() == 1 {
            // Single-leaf tree: constant prediction, and the only shape a
            // zero-column matrix can reach (the walk below reads a feature
            // value before the self-loop resolves).
            for p in out.iter_mut() {
                *p += self.values[0];
            }
            return;
        }
        let cols = q.cols;
        let data = &q.data[..];
        // u32 lane offsets keep the spilled lane state half the size; a
        // u16 matrix anywhere near 2^32 elements (8 GiB) is far outside
        // the serving envelope, so this is a hard input bound, not a
        // tuning knob.
        assert!(
            data.len() <= u32::MAX as usize,
            "quantized matrix exceeds the u32 offset range"
        );
        /// Lockstep lanes per group — matches the f64 walk: enough
        /// independent load chains to hide L1 latency, few enough that the
        /// lane state stays in registers. A branch-free pass keeps the
        /// group loop fully unrolled; per-lane retirement was tried twice
        /// (immediate compaction, and two-phase visit-then-compact) and
        /// lost both times — the compaction writes and their serial write
        /// cursor cost more than the dead passes they save.
        const G: usize = 16;
        let mut row0 = lo;
        for group in out.chunks_mut(G) {
            let n = group.len();
            let mut slots = [0u32; G];
            let mut bases = [0u32; G];
            if n == G {
                // Full group: the pass loop has a constant bound, so it
                // unrolls completely and the lane state stays live, and the
                // pass count is the tree's depth — a counted loop with no
                // change tracking and no data-dependent exit.
                for (k, base) in bases.iter_mut().enumerate() {
                    *base = ((row0 + k) * cols) as u32;
                }
                for _ in 0..self.depth {
                    for k in 0..G {
                        // SAFETY: slots hold node indices produced by
                        // `from_arena` (root 0, then `first_child` / leaf
                        // self-loops, all < nodes.len()), and `base + feat
                        // < rows * cols == data.len()` by the entry
                        // assertions.
                        let (node, v) = unsafe {
                            let node = *nodes.get_unchecked(slots[k] as usize);
                            let v = *data.get_unchecked(bases[k] as usize + usize::from(node.feat));
                            (node, v)
                        };
                        // Strictly-greater mirrors the raw `!(v <= t)`: the
                        // NaN sentinel (`u16::MAX`) exceeds every split
                        // threshold, and a leaf's `u16::MAX` threshold
                        // exceeds every value.
                        let next = node.first_child + u32::from(v > node.thr);
                        slots[k] = next;
                    }
                }
            } else {
                // Ragged tail group (fewer than G rows): same walk with
                // runtime bounds; cold by construction.
                for (k, base) in bases[..n].iter_mut().enumerate() {
                    *base = ((row0 + k) * cols) as u32;
                }
                loop {
                    let mut changed = 0u32;
                    for (k, slot) in slots[..n].iter_mut().enumerate() {
                        let node = nodes[*slot as usize];
                        let v = data[bases[k] as usize + usize::from(node.feat)];
                        let next = node.first_child + u32::from(v > node.thr);
                        changed |= next ^ *slot;
                        *slot = next;
                    }
                    if changed == 0 {
                        break;
                    }
                }
            }
            for (p, &i) in group.iter_mut().zip(&slots[..n]) {
                *p += self.values[i as usize];
            }
            row0 += n;
        }
    }
}

/// A CatBoost-style oblivious tree with quantized level conditions: the
/// level bit is `q(v) > q(t)`, exactly equivalent to the raw `v > t` (with
/// NaN pre-routed left by [`NanRoute::Left`] bins).
#[derive(Debug, Clone)]
pub struct QuantOblivious {
    /// `(feature, quantized threshold)` per level.
    levels: Vec<(u16, u16)>,
    /// `2^levels` leaf weights indexed by the condition bit-vector.
    leaf_weights: Vec<f64>,
}

impl QuantOblivious {
    /// Quantizes an oblivious tree's level conditions against `bins`.
    pub fn from_conditions(
        conditions: &[(usize, f64)],
        leaf_weights: Vec<f64>,
        bins: &FeatureBins,
    ) -> QuantOblivious {
        assert_eq!(leaf_weights.len(), 1 << conditions.len());
        let levels = conditions
            .iter()
            .map(|&(f, t)| {
                (
                    u16::try_from(f).expect("feature index fits u16"),
                    bins.quantize_threshold(f, t),
                )
            })
            .collect();
        QuantOblivious {
            levels,
            leaf_weights,
        }
    }

    /// Adds this tree's leaf weight for rows `lo..hi` of `q` into
    /// `out[0..hi - lo]`.
    pub fn accumulate_rows(&self, q: &QuantMatrix, lo: usize, hi: usize, out: &mut [f64]) {
        debug_assert_eq!(out.len(), hi - lo);
        if self.levels.is_empty() {
            for p in out.iter_mut() {
                *p += self.leaf_weights[0];
            }
            return;
        }
        for (k, p) in out.iter_mut().enumerate() {
            let row = q.row(lo + k);
            let mut idx = 0usize;
            for (level, &(f, t)) in self.levels.iter().enumerate() {
                idx |= usize::from(row[usize::from(f)] > t) << level;
            }
            *p += self.leaf_weights[idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bins_of(per_feature: Vec<Vec<f64>>, route: NanRoute) -> FeatureBins {
        FeatureBins::from_split_thresholds(per_feature, route).expect("within edge budget")
    }

    #[test]
    fn quantization_preserves_every_threshold_comparison() {
        let bins = bins_of(vec![vec![0.5, 2.0, 2.0, -1.5], vec![]], NanRoute::Right);
        assert_eq!(bins.n_features(), 2);
        assert_eq!(bins.max_bins(), 4); // 3 distinct edges + 1
        for v in [-10.0, -1.5, -1.49, 0.25, 0.5, 0.500001, 2.0, 1e9] {
            let q = bins.quantize_value(0, v);
            for t in [-1.5, 0.5, 2.0] {
                let qt = bins.quantize_threshold(0, t);
                assert_eq!(v <= t, q <= qt, "v={v} t={t}");
            }
        }
    }

    #[test]
    fn quantization_is_monotone_in_the_raw_value() {
        let bins = bins_of(vec![vec![1.0, 3.0, 7.5]], NanRoute::Right);
        let vals = [-1.0, 0.0, 1.0, 1.1, 2.9, 3.0, 5.0, 7.5, 8.0, 1e12];
        let ranks: Vec<u16> = vals.iter().map(|&v| bins.quantize_value(0, v)).collect();
        for pair in ranks.windows(2) {
            assert!(pair[0] <= pair[1], "{ranks:?}");
        }
        // Out-of-range values clamp to the extreme ranks.
        assert_eq!(ranks[0], 0);
        assert_eq!(*ranks.last().unwrap(), 3);
    }

    #[test]
    fn nan_routes_by_family() {
        let right = bins_of(vec![vec![1.0]], NanRoute::Right);
        let left = bins_of(vec![vec![1.0]], NanRoute::Left);
        let t = right.quantize_threshold(0, 1.0);
        // Binary trees: NaN must exceed every threshold (routes right).
        assert!(right.quantize_value(0, f64::NAN) > t);
        // Oblivious trees: NaN must never exceed a threshold (routes left).
        assert!(left.quantize_value(0, f64::NAN) <= t);
    }

    #[test]
    fn edge_budget_overflow_falls_back() {
        let too_many: Vec<f64> = (0..=MAX_EDGES).map(|i| i as f64).collect();
        assert!(FeatureBins::from_split_thresholds(vec![too_many], NanRoute::Right).is_none());
        let exactly: Vec<f64> = (0..MAX_EDGES).map(|i| i as f64).collect();
        assert!(FeatureBins::from_split_thresholds(vec![exactly], NanRoute::Right).is_some());
    }

    /// Reference walk over the descriptor arena, raw f64 semantics.
    fn arena_predict(arena: &[QuantNodeDesc], row: &[f64]) -> f64 {
        let mut i = 0usize;
        loop {
            match arena[i] {
                QuantNodeDesc::Leaf { value } => return value,
                QuantNodeDesc::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    #[allow(clippy::neg_cmp_op_on_partial_ord)]
                    let go_right = !(row[feature] <= threshold);
                    i = if go_right { right } else { left };
                }
            }
        }
    }

    fn demo_arena() -> Vec<QuantNodeDesc> {
        // Deliberately non-BFS arena order to exercise the repacking.
        vec![
            QuantNodeDesc::Split {
                feature: 0,
                threshold: 1.0,
                left: 1,
                right: 4,
            },
            QuantNodeDesc::Split {
                feature: 1,
                threshold: -0.5,
                left: 2,
                right: 3,
            },
            QuantNodeDesc::Leaf { value: 0.1 },
            QuantNodeDesc::Leaf { value: 0.9 },
            QuantNodeDesc::Leaf { value: 0.4 },
        ]
    }

    fn demo_bins(route: NanRoute) -> FeatureBins {
        bins_of(vec![vec![1.0], vec![-0.5]], route)
    }

    #[test]
    fn packed_walk_matches_the_arena_walk_including_nan() {
        let arena = demo_arena();
        let bins = demo_bins(NanRoute::Right);
        let packed = QuantNodes::from_arena(&arena, &bins);
        assert_eq!(packed.len(), arena.len());
        let rows = vec![
            vec![0.0, -1.0],
            vec![0.0, -0.5],
            vec![1.0, 0.0],
            vec![1.5, 7.0],
            vec![f64::NAN, 0.0],
            vec![0.5, f64::NAN],
            vec![-1e300, 1e300],
        ];
        let x = Matrix::from_rows(&rows);
        let q = bins.quantize_matrix(&x);
        let mut got = vec![0.0; rows.len()];
        packed.accumulate_rows(&q, 0, rows.len(), &mut got);
        for (k, row) in rows.iter().enumerate() {
            assert_eq!(got[k], arena_predict(&arena, row), "row {k}: {row:?}");
        }
    }

    #[test]
    fn single_leaf_tree_handles_zero_columns() {
        let bins = bins_of(vec![], NanRoute::Right);
        let packed = QuantNodes::from_arena(&[QuantNodeDesc::Leaf { value: 0.75 }], &bins);
        let q = bins.quantize_matrix(&Matrix::zeros(3, 0));
        let mut out = vec![0.0; 3];
        packed.accumulate_rows(&q, 0, 3, &mut out);
        assert_eq!(out, vec![0.75; 3]);
    }

    #[test]
    fn oblivious_walk_matches_raw_conditions_including_nan() {
        let conditions = [(0usize, 1.0f64), (1usize, -0.5f64)];
        let weights = vec![0.1, 0.2, 0.3, 0.4];
        let bins = bins_of(vec![vec![1.0], vec![-0.5]], NanRoute::Left);
        let quant = QuantOblivious::from_conditions(&conditions, weights.clone(), &bins);
        let rows = vec![
            vec![0.0, -1.0],
            vec![2.0, 0.0],
            vec![1.0, -0.5],
            vec![f64::NAN, 0.0],
            vec![2.0, f64::NAN],
        ];
        let x = Matrix::from_rows(&rows);
        let q = bins.quantize_matrix(&x);
        let mut got = vec![0.0; rows.len()];
        quant.accumulate_rows(&q, 0, rows.len(), &mut got);
        for (k, row) in rows.iter().enumerate() {
            let mut idx = 0usize;
            for (level, &(f, t)) in conditions.iter().enumerate() {
                if row[f] > t {
                    idx |= 1 << level;
                }
            }
            assert_eq!(got[k], weights[idx], "row {k}: {row:?}");
        }
    }

    #[test]
    fn accumulation_offsets_respect_lo_hi() {
        let arena = demo_arena();
        let bins = demo_bins(NanRoute::Right);
        let packed = QuantNodes::from_arena(&arena, &bins);
        let rows: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![(i % 5) as f64 * 0.6, (i % 3) as f64 - 1.0])
            .collect();
        let x = Matrix::from_rows(&rows);
        let q = bins.quantize_matrix(&x);
        let mut full = vec![0.0; 40];
        packed.accumulate_rows(&q, 0, 40, &mut full);
        let mut part = vec![0.0; 17];
        packed.accumulate_rows(&q, 13, 30, &mut part);
        assert_eq!(&full[13..30], &part[..]);
    }

    use crate::classical::SplitMix;
    use proptest::prelude::*;

    /// Grows a random binary tree (root at index 0) over `n_features`
    /// columns, mixing threshold shapes: small integers (LUT hits),
    /// half-integers (LUT misses on integer data), and normal draws.
    /// `n_features == 0` forces the single-leaf shape, the only tree a
    /// zero-column matrix can score.
    fn random_arena(rng: &mut SplitMix, n_features: usize) -> Vec<QuantNodeDesc> {
        let mut arena = vec![QuantNodeDesc::Leaf { value: 0.0 }];
        let mut work = vec![(0usize, 0u32)];
        while let Some((i, d)) = work.pop() {
            if n_features == 0 || d >= 6 || rng.below(3) == 0 {
                arena[i] = QuantNodeDesc::Leaf {
                    value: rng.normal(),
                };
                continue;
            }
            let left = arena.len();
            arena.push(QuantNodeDesc::Leaf { value: 0.0 });
            let right = arena.len();
            arena.push(QuantNodeDesc::Leaf { value: 0.0 });
            let threshold = match rng.below(3) {
                0 => rng.below(16) as f64,
                1 => rng.below(16) as f64 + 0.5,
                _ => rng.normal() * 4.0,
            };
            arena[i] = QuantNodeDesc::Split {
                feature: rng.below(n_features),
                threshold,
                left,
                right,
            };
            work.push((left, d + 1));
            work.push((right, d + 1));
        }
        arena
    }

    /// Per-feature split-threshold lists of `arena` — what production
    /// builds [`FeatureBins`] from.
    fn thresholds_of(arena: &[QuantNodeDesc], n_features: usize) -> Vec<Vec<f64>> {
        let mut per_feature = vec![Vec::new(); n_features];
        for node in arena {
            if let QuantNodeDesc::Split {
                feature, threshold, ..
            } = *node
            {
                per_feature[feature].push(threshold);
            }
        }
        per_feature
    }

    /// A feature value drawn from the adversarial mix: NaN, far outside
    /// every edge on both sides, negative, fractional, and the common-case
    /// small integers (which exercise the LUT and AVX2 gather paths).
    fn random_value(rng: &mut SplitMix) -> f64 {
        match rng.below(8) {
            0 => f64::NAN,
            1 => -1e300,
            2 => 1e300,
            3 => -(rng.below(32) as f64),
            4 => rng.below(32) as f64 + 0.25,
            _ => rng.below(32) as f64,
        }
    }

    proptest! {
        /// The tentpole equivalence, as a property over random trees and
        /// adversarial rows: the packed quantized walk returns the raw f64
        /// arena walk's verdict bit-for-bit — NaN rows, zero-column
        /// single-leaf trees, and out-of-range values (clamped to the
        /// extreme ranks at transform time) included.
        #[test]
        fn quantized_walk_equals_arena_walk_on_random_trees(seed in any::<u64>()) {
            let mut rng = SplitMix::new(seed);
            let n_features = rng.below(6); // 0 forces the single-leaf tree
            let arena = random_arena(&mut rng, n_features);
            let bins = FeatureBins::from_split_thresholds(
                thresholds_of(&arena, n_features),
                NanRoute::Right,
            )
            .expect("within edge budget");
            let packed = QuantNodes::from_arena(&arena, &bins);
            let n_rows = 1 + rng.below(40); // covers full and ragged groups
            let rows: Vec<Vec<f64>> = (0..n_rows)
                .map(|_| (0..n_features).map(|_| random_value(&mut rng)).collect())
                .collect();
            let x = Matrix::from_rows(&rows);
            let q = bins.quantize_matrix(&x);
            let mut got = vec![0.0; n_rows];
            packed.accumulate_rows(&q, 0, n_rows, &mut got);
            for (k, row) in rows.iter().enumerate() {
                let want = arena_predict(&arena, row);
                prop_assert_eq!(
                    got[k].to_bits(),
                    want.to_bits(),
                    "row {}: {:?} → quant {} vs arena {}",
                    k, row, got[k], want
                );
            }
        }

        /// Bin edges come out of the builder sorted and strictly distinct
        /// per feature, and quantization respects them: ranks are monotone
        /// in the raw value, and every value-vs-edge comparison survives
        /// quantization exactly.
        #[test]
        fn bin_edges_are_monotone_and_comparison_preserving(seed in any::<u64>()) {
            let mut rng = SplitMix::new(seed);
            let per_feature: Vec<Vec<f64>> = (0..1 + rng.below(4))
                .map(|_| {
                    // Unsorted, duplicate-laden threshold lists, like a
                    // forest's pooled splits.
                    (0..rng.below(24))
                        .map(|_| match rng.below(3) {
                            0 => rng.below(12) as f64,
                            1 => rng.below(12) as f64 + 0.5,
                            _ => rng.normal() * 3.0,
                        })
                        .collect()
                })
                .collect();
            let bins = FeatureBins::from_split_thresholds(per_feature, NanRoute::Right)
                .expect("within edge budget");
            for f in 0..bins.n_features() {
                let edges = bins.feature_edges(f);
                for pair in edges.windows(2) {
                    prop_assert!(pair[0] < pair[1], "feature {}: {:?}", f, edges);
                }
                let mut probes: Vec<f64> = (0..64).map(|_| random_value(&mut rng)).collect();
                probes.extend_from_slice(edges);
                let finite: Vec<f64> = probes.iter().copied().filter(|v| !v.is_nan()).collect();
                for &a in &finite {
                    let qa = bins.quantize_value(f, a);
                    for &b in &finite {
                        // Monotone, not injective: a <= b never ranks a
                        // above b (equal ranks within one bin are fine).
                        if a <= b {
                            let qb = bins.quantize_value(f, b);
                            prop_assert!(qa <= qb, "monotonicity: a={} b={}", a, b);
                        }
                    }
                    for &t in edges {
                        prop_assert_eq!(
                            a <= t,
                            qa <= bins.quantize_threshold(f, t),
                            "comparison vs edge: v={} t={}", a, t
                        );
                    }
                }
            }
        }
    }
}
