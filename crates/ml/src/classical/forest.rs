//! Bagged random forests — the paper's best model (93.63% accuracy).
//!
//! Standard Breiman construction: each tree is trained on a bootstrap sample
//! with √d feature subsampling per split; the ensemble prediction is the mean
//! of per-tree class-1 probabilities. Trees are trained in parallel with
//! [`std::thread::scope`]; determinism is preserved because each tree's
//! RNG seed is derived from the forest seed and the tree index.

use crate::classical::quant::{FeatureBins, NanRoute, QuantNodes};
use crate::classical::tree::{DecisionTree, TreeConfig};
use crate::classical::SplitMix;
use crate::matrix::Matrix;
use crate::Classifier;

/// Hyperparameters for a [`RandomForest`].
#[derive(Debug, Clone, PartialEq)]
pub struct ForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree depth cap.
    pub max_depth: usize,
    /// Minimum samples to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
    /// Features examined per split; `None` = ⌈√d⌉.
    pub max_features: Option<usize>,
    /// Base RNG seed.
    pub seed: u64,
    /// Worker threads for training (`1` = sequential).
    pub threads: usize,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            n_trees: 100,
            max_depth: 16,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: None,
            seed: 42,
            threads: 4,
        }
    }
}

/// Quantized mirror of the whole forest: one [`FeatureBins`] shared by
/// every member tree (their thresholds are pooled per feature), so a batch
/// quantizes once and every packed tree walks the same `u16` matrix.
/// Derived state — rebuilt at fit and restore time, never persisted.
#[derive(Debug, Clone)]
struct ForestQuant {
    bins: FeatureBins,
    trees: Vec<QuantNodes>,
}

/// A fitted random forest.
#[derive(Debug, Clone)]
pub struct RandomForest {
    config: ForestConfig,
    trees: Vec<DecisionTree>,
    quant: Option<ForestQuant>,
}

impl RandomForest {
    /// Creates an unfitted forest.
    pub fn new(config: ForestConfig) -> Self {
        RandomForest {
            config,
            trees: Vec::new(),
            quant: None,
        }
    }

    /// Creates an unfitted forest with default hyperparameters.
    pub fn with_defaults() -> Self {
        Self::new(ForestConfig::default())
    }

    /// The fitted trees (empty before [`Classifier::fit`]). TreeSHAP sums
    /// over these.
    pub fn trees(&self) -> &[DecisionTree] {
        &self.trees
    }

    /// The configuration this forest was built with.
    pub fn config(&self) -> &ForestConfig {
        &self.config
    }

    /// Number of features the fitted trees expect (`None` before fit).
    /// Snapshot restore uses this to cross-check the forest against the
    /// feature extractor it is paired with.
    pub fn n_features(&self) -> Option<usize> {
        self.trees.first().map(DecisionTree::n_features)
    }

    /// Rows per inference block: small enough that a block's probabilities
    /// stay in cache while every tree accumulates into it, large enough to
    /// amortize the per-tree loop overhead.
    const INFER_BLOCK: usize = 256;

    /// Batch class-1 probabilities over all rows of `x`, parallelized across
    /// row blocks with [`std::thread::scope`].
    ///
    /// Each block accumulates its per-row sum in tree order, so the result
    /// is bit-identical to the sequential per-row path for any thread
    /// count.
    ///
    /// # Panics
    /// Panics when called before [`Classifier::fit`].
    pub fn predict_proba_batch(&self, x: &Matrix) -> Vec<f64> {
        assert!(!self.trees.is_empty(), "predict before fit");
        let n = x.rows();
        let mut out = vec![0.0; n];
        let threads = self
            .config
            .threads
            .max(1)
            .min(n.div_ceil(Self::INFER_BLOCK).max(1));
        if threads == 1 {
            self.accumulate_blocks(x, 0, &mut out);
        } else {
            let rows_per_thread = n.div_ceil(threads);
            std::thread::scope(|scope| {
                for (t, chunk) in out.chunks_mut(rows_per_thread).enumerate() {
                    scope.spawn(move || self.accumulate_blocks(x, t * rows_per_thread, chunk));
                }
            });
        }
        let k = self.trees.len() as f64;
        for p in &mut out {
            *p /= k;
        }
        out
    }

    /// Accumulates all trees' probabilities for rows `lo..lo + out.len()`,
    /// walking the rows in [`Self::INFER_BLOCK`]-sized blocks.
    fn accumulate_blocks(&self, x: &Matrix, lo: usize, out: &mut [f64]) {
        for (b, block) in out.chunks_mut(Self::INFER_BLOCK).enumerate() {
            let start = lo + b * Self::INFER_BLOCK;
            for tree in &self.trees {
                tree.accumulate_rows(x, start, start + block.len(), block);
            }
        }
    }

    /// Minimum rows a quantized scoring thread must own before it is worth
    /// spawning: below this the scoped-thread spawn outweighs the fused
    /// quantize-and-walk work it offloads.
    const QUANT_ROWS_PER_THREAD: usize = 64;

    /// Batch probabilities via the quantized fast path, or `None` when a
    /// feature exceeded the bin budget at fit time.
    ///
    /// Each worker thread *fuses* the two stages over its own row shard:
    /// it quantizes exactly the rows it will walk (so the `u16` rows are
    /// L1/L2-hot when the walk reads them, and the transform parallelizes
    /// with zero extra spawns), then accumulates every tree over them.
    /// Because a row's probability is its tree-ordered sum regardless of
    /// how rows are sharded into threads or blocks, and the shared bins
    /// come from the trees' own thresholds, the result is bit-identical to
    /// [`RandomForest::predict_proba_batch`] for any thread count —
    /// including the f64 path's own sharding.
    pub fn predict_proba_batch_quantized(&self, x: &Matrix) -> Option<Vec<f64>> {
        assert!(!self.trees.is_empty(), "predict before fit");
        let quant = self.quant.as_ref()?;
        let n = x.rows();
        let mut out = vec![0.0; n];
        // Sharding never changes the result (each row's sum is tree-ordered
        // regardless of which thread owns it), so the quantized path is free
        // to clamp by the cores actually present — configured thread counts
        // above that are pure spawn overhead.
        let hw = std::thread::available_parallelism().map_or(usize::MAX, usize::from);
        let threads = self
            .config
            .threads
            .max(1)
            .min(hw)
            .min(n.div_ceil(Self::QUANT_ROWS_PER_THREAD).max(1));
        if threads == 1 {
            Self::quantize_and_accumulate(quant, x, 0, &mut out);
        } else {
            let rows_per_thread = n.div_ceil(threads);
            std::thread::scope(|scope| {
                for (t, chunk) in out.chunks_mut(rows_per_thread).enumerate() {
                    scope.spawn(move || {
                        Self::quantize_and_accumulate(quant, x, t * rows_per_thread, chunk)
                    });
                }
            });
        }
        let k = self.trees.len() as f64;
        for p in &mut out {
            *p /= k;
        }
        Some(out)
    }

    /// Rows per quantized inference block, smaller than [`Self::INFER_BLOCK`]
    /// on purpose: every tree walk re-reads the block's `u16` rows at random
    /// columns, so the block must stay L1-resident across the whole forest
    /// (128 rows × ~144 cols × 2 bytes ≈ 36 KiB) — the f64 path's 256-row
    /// blocks would spill it to L2 at double the bytes per value.
    const QUANT_BLOCK: usize = 128;

    /// Quantized twin of [`RandomForest::accumulate_blocks`], fused with
    /// the transform: quantizes rows `lo..lo + out.len()` and accumulates
    /// every tree over them in [`Self::QUANT_BLOCK`]-sized blocks.
    fn quantize_and_accumulate(quant: &ForestQuant, x: &Matrix, lo: usize, out: &mut [f64]) {
        for (b, block) in out.chunks_mut(Self::QUANT_BLOCK).enumerate() {
            let start = lo + b * Self::QUANT_BLOCK;
            let q = quant.bins.quantize_row_range(x, start, start + block.len());
            for tree in &quant.trees {
                tree.accumulate_rows(&q, 0, block.len(), block);
            }
        }
    }

    /// Widest per-feature bin count of the quantized mirror, or `None`
    /// when quantization is unavailable (unfitted, or over budget).
    pub fn quant_bins(&self) -> Option<usize> {
        self.quant.as_ref().map(|q| q.bins.max_bins())
    }

    /// Rebuilds the shared-bin quantized mirror from the fitted trees
    /// (fit + restore).
    fn rebuild_quant(&mut self) {
        self.quant = None;
        let Some(d) = self.n_features() else { return };
        let mut per_feature = vec![Vec::new(); d];
        for tree in &self.trees {
            tree.collect_split_thresholds(&mut per_feature);
        }
        self.quant = FeatureBins::from_split_thresholds(per_feature, NanRoute::Right).map(|bins| {
            let trees = self.trees.iter().map(|t| t.quant_nodes(&bins)).collect();
            ForestQuant { bins, trees }
        });
    }

    fn train_one(&self, x: &Matrix, y: &[usize], tree_idx: usize) -> DecisionTree {
        let n = x.rows();
        let mut rng = SplitMix::new(self.config.seed ^ (tree_idx as u64).wrapping_mul(0x9E37));
        let indices: Vec<usize> = (0..n).map(|_| rng.below(n)).collect();
        let d = x.cols();
        let max_features = self
            .config
            .max_features
            .unwrap_or_else(|| (d as f64).sqrt().ceil() as usize)
            .clamp(1, d);
        let mut tree = DecisionTree::new(TreeConfig {
            max_depth: self.config.max_depth,
            min_samples_split: self.config.min_samples_split,
            min_samples_leaf: self.config.min_samples_leaf,
            max_features: Some(max_features),
            seed: rng.next_u64(),
        });
        tree.fit_indices(x, y, &indices);
        tree
    }
}

impl Classifier for RandomForest {
    fn fit(&mut self, x: &Matrix, y: &[usize]) {
        assert_eq!(x.rows(), y.len(), "x rows must match label count");
        assert!(x.rows() > 0, "cannot fit on an empty dataset");
        let n_trees = self.config.n_trees;
        let threads = self.config.threads.max(1);
        if threads == 1 || n_trees < 4 {
            self.trees = (0..n_trees).map(|t| self.train_one(x, y, t)).collect();
        } else {
            let mut trees: Vec<Option<DecisionTree>> = vec![None; n_trees];
            let this = &*self;
            std::thread::scope(|scope| {
                for (chunk_id, chunk) in trees.chunks_mut(n_trees.div_ceil(threads)).enumerate() {
                    let chunk_size = n_trees.div_ceil(threads);
                    scope.spawn(move || {
                        for (k, slot) in chunk.iter_mut().enumerate() {
                            *slot = Some(this.train_one(x, y, chunk_id * chunk_size + k));
                        }
                    });
                }
            });
            self.trees = trees
                .into_iter()
                .map(|t| t.expect("all trees trained"))
                .collect();
        }
        self.rebuild_quant();
    }

    fn predict_proba(&self, x: &Matrix) -> Vec<f64> {
        self.predict_proba_batch(x)
    }

    fn name(&self) -> &'static str {
        "Random Forest"
    }
}

// --- Persistence -----------------------------------------------------------

use phishinghook_persist::{PersistError, Reader, Restore, Snapshot, Writer};

impl Snapshot for ForestConfig {
    fn snapshot(&self, w: &mut Writer) {
        w.put_usize(self.n_trees);
        w.put_usize(self.max_depth);
        w.put_usize(self.min_samples_split);
        w.put_usize(self.min_samples_leaf);
        self.max_features.snapshot(w);
        w.put_u64(self.seed);
        w.put_usize(self.threads);
    }
}

impl Restore for ForestConfig {
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(ForestConfig {
            n_trees: r.take_usize()?,
            max_depth: r.take_usize()?,
            min_samples_split: r.take_usize()?,
            min_samples_leaf: r.take_usize()?,
            max_features: Option::restore(r)?,
            seed: r.take_u64()?,
            threads: r.take_usize()?,
        })
    }
}

impl Snapshot for RandomForest {
    fn snapshot(&self, w: &mut Writer) {
        self.config.snapshot(w);
        self.trees.snapshot(w);
    }
}

impl Restore for RandomForest {
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let mut forest = RandomForest {
            config: ForestConfig::restore(r)?,
            trees: Vec::restore(r)?,
            quant: None,
        };
        forest.rebuild_quant();
        Ok(forest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(n: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = SplitMix::new(seed);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let label = i % 2;
            let c = if label == 0 { -1.5 } else { 1.5 };
            rows.push(vec![c + rng.normal(), c + rng.normal(), rng.normal()]);
            y.push(label);
        }
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn beats_chance_on_noisy_blobs() {
        let (x, y) = blobs(200, 1);
        let mut rf = RandomForest::new(ForestConfig {
            n_trees: 30,
            ..ForestConfig::default()
        });
        rf.fit(&x, &y);
        let (xt, yt) = blobs(100, 2);
        let correct = rf
            .predict(&xt)
            .iter()
            .zip(&yt)
            .filter(|(a, b)| a == b)
            .count();
        assert!(correct >= 85, "only {correct}/100 correct");
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let (x, y) = blobs(80, 3);
        let mut seq = RandomForest::new(ForestConfig {
            n_trees: 8,
            threads: 1,
            seed: 5,
            ..ForestConfig::default()
        });
        let mut par = RandomForest::new(ForestConfig {
            n_trees: 8,
            threads: 4,
            seed: 5,
            ..ForestConfig::default()
        });
        seq.fit(&x, &y);
        par.fit(&x, &y);
        assert_eq!(seq.predict_proba(&x), par.predict_proba(&x));
    }

    #[test]
    fn deterministic_across_fits() {
        let (x, y) = blobs(60, 4);
        let mut a = RandomForest::new(ForestConfig {
            n_trees: 6,
            seed: 9,
            ..Default::default()
        });
        let mut b = RandomForest::new(ForestConfig {
            n_trees: 6,
            seed: 9,
            ..Default::default()
        });
        a.fit(&x, &y);
        b.fit(&x, &y);
        assert_eq!(a.predict_proba(&x), b.predict_proba(&x));
    }

    #[test]
    fn different_seeds_differ() {
        let (x, y) = blobs(60, 4);
        let mut a = RandomForest::new(ForestConfig {
            n_trees: 6,
            seed: 1,
            ..Default::default()
        });
        let mut b = RandomForest::new(ForestConfig {
            n_trees: 6,
            seed: 2,
            ..Default::default()
        });
        a.fit(&x, &y);
        b.fit(&x, &y);
        assert_ne!(a.predict_proba(&x), b.predict_proba(&x));
    }

    #[test]
    fn probabilities_bounded() {
        let (x, y) = blobs(50, 7);
        let mut rf = RandomForest::new(ForestConfig {
            n_trees: 5,
            ..Default::default()
        });
        rf.fit(&x, &y);
        for p in rf.predict_proba(&x) {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn tree_count_matches_config() {
        let (x, y) = blobs(40, 8);
        let mut rf = RandomForest::new(ForestConfig {
            n_trees: 13,
            ..Default::default()
        });
        rf.fit(&x, &y);
        assert_eq!(rf.trees().len(), 13);
    }

    /// The seed's per-row reference path: trees outer, rows inner, arena
    /// node walk. Batch inference is tested against this.
    fn predict_proba_per_row(rf: &RandomForest, x: &Matrix) -> Vec<f64> {
        let mut probs = vec![0.0; x.rows()];
        for tree in rf.trees() {
            for (p, row) in probs.iter_mut().zip(x.iter_rows()) {
                *p += tree.predict_row_arena(row);
            }
        }
        let k = rf.trees().len() as f64;
        for p in &mut probs {
            *p /= k;
        }
        probs
    }

    #[test]
    fn batch_inference_matches_per_row_reference() {
        let (x, y) = blobs(300, 11);
        let mut rf = RandomForest::new(ForestConfig {
            n_trees: 12,
            threads: 3, // odd split so thread chunks straddle blocks
            ..ForestConfig::default()
        });
        rf.fit(&x, &y);
        let reference = predict_proba_per_row(&rf, &x);
        let batch = rf.predict_proba_batch(&x);
        assert_eq!(batch.len(), reference.len());
        for (b, r) in batch.iter().zip(&reference) {
            assert!((b - r).abs() <= 1e-12, "batch {b} vs per-row {r}");
        }
    }

    #[test]
    fn batch_inference_is_thread_count_invariant() {
        // More rows than 2× INFER_BLOCK, so threads = 2 and 5 genuinely
        // shard (the thread count is clamped to the number of 256-row
        // blocks; a smaller input would silently test the sequential path
        // three times).
        let (x, y) = blobs(600, 12);
        assert!(x.rows() > 2 * RandomForest::INFER_BLOCK);
        let mut rf = RandomForest::new(ForestConfig {
            n_trees: 7,
            seed: 3,
            ..ForestConfig::default()
        });
        rf.fit(&x, &y);
        let mut baseline: Option<Vec<f64>> = None;
        for threads in [1, 2, 5] {
            let mut cfg = rf.clone();
            cfg.config.threads = threads;
            let probs = cfg.predict_proba_batch(&x);
            match &baseline {
                None => baseline = Some(probs),
                // Bit-identical: per-row sums accumulate in tree order
                // regardless of how rows are sharded across threads.
                Some(b) => assert_eq!(&probs, b, "threads = {threads}"),
            }
        }
    }

    #[test]
    fn snapshot_round_trip_is_bit_identical() {
        use phishinghook_persist::{from_envelope, to_envelope};
        let (x, y) = blobs(80, 21);
        let mut rf = RandomForest::new(ForestConfig {
            n_trees: 9,
            seed: 3,
            ..ForestConfig::default()
        });
        rf.fit(&x, &y);
        let bytes = to_envelope("forest", &rf);
        let back: RandomForest = from_envelope("forest", &bytes).expect("round-trips");
        assert_eq!(back.config(), rf.config());
        assert_eq!(back.trees().len(), rf.trees().len());
        let (a, b) = (rf.predict_proba_batch(&x), back.predict_proba_batch(&x));
        assert_eq!(
            a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn quantized_batch_is_bit_identical_to_f64_path() {
        let (x, y) = blobs(300, 31);
        let mut rf = RandomForest::new(ForestConfig {
            n_trees: 12,
            threads: 3,
            ..ForestConfig::default()
        });
        rf.fit(&x, &y);
        let f64_path = rf.predict_proba_batch(&x);
        let quant = rf
            .predict_proba_batch_quantized(&x)
            .expect("within bin budget");
        assert_eq!(
            f64_path.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            quant.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        assert!(rf.quant_bins().expect("quantized") >= 2);
    }

    #[test]
    fn quantized_batch_is_thread_count_invariant() {
        let (x, y) = blobs(600, 32);
        let mut rf = RandomForest::new(ForestConfig {
            n_trees: 7,
            seed: 3,
            ..ForestConfig::default()
        });
        rf.fit(&x, &y);
        let mut baseline: Option<Vec<f64>> = None;
        for threads in [1, 2, 5] {
            let mut cfg = rf.clone();
            cfg.config.threads = threads;
            let probs = cfg.predict_proba_batch_quantized(&x).expect("quantized");
            match &baseline {
                None => baseline = Some(probs),
                Some(b) => assert_eq!(&probs, b, "threads = {threads}"),
            }
        }
        assert_eq!(baseline.unwrap(), rf.predict_proba_batch(&x));
    }

    #[test]
    fn restored_forest_rebuilds_the_quantized_mirror() {
        use phishinghook_persist::{from_envelope, to_envelope};
        let (x, y) = blobs(80, 33);
        let mut rf = RandomForest::new(ForestConfig {
            n_trees: 5,
            ..ForestConfig::default()
        });
        rf.fit(&x, &y);
        let bytes = to_envelope("forest", &rf);
        let back: RandomForest = from_envelope("forest", &bytes).expect("round-trips");
        assert_eq!(back.quant_bins(), rf.quant_bins());
        assert_eq!(
            back.predict_proba_batch_quantized(&x).expect("quantized"),
            rf.predict_proba_batch_quantized(&x).expect("quantized"),
        );
    }

    #[test]
    fn batch_inference_handles_empty_input() {
        let (x, y) = blobs(40, 13);
        let mut rf = RandomForest::new(ForestConfig {
            n_trees: 3,
            ..Default::default()
        });
        rf.fit(&x, &y);
        assert!(rf
            .predict_proba_batch(&Matrix::zeros(0, x.cols()))
            .is_empty());
    }
}
