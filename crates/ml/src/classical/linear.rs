//! Linear models: logistic regression and a linear SVM (Pegasos).
//!
//! Both standardize features internally (zero mean, unit variance computed on
//! the training set) — raw opcode histograms span several orders of magnitude
//! and plain gradient descent would diverge otherwise. The paper feeds
//! unnormalized histograms to scikit-learn, whose LBFGS/libsvm solvers cope;
//! internal standardization is the equivalent implementation detail here.

use crate::classical::SplitMix;
use crate::matrix::Matrix;
use crate::Classifier;

/// Numerically stable logistic sigmoid.
pub(crate) fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// Feature standardizer fitted on training data.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Scaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Scaler {
    pub(crate) fn fit(x: &Matrix) -> Self {
        let means = x.col_means();
        let stds = x
            .col_stds()
            .into_iter()
            .map(|s| if s < 1e-12 { 1.0 } else { s })
            .collect();
        Scaler { means, stds }
    }

    pub(crate) fn transform_row(&self, row: &[f64]) -> Vec<f64> {
        row.iter()
            .zip(&self.means)
            .zip(&self.stds)
            .map(|((v, m), s)| (v - m) / s)
            .collect()
    }

    pub(crate) fn transform(&self, x: &Matrix) -> Matrix {
        let rows: Vec<Vec<f64>> = x.iter_rows().map(|r| self.transform_row(r)).collect();
        Matrix::from_rows(&rows)
    }
}

/// L2-regularized logistic regression trained with full-batch gradient
/// descent (one of the paper's seven HSCs; its weakest at 83.91%).
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    /// Learning rate.
    pub learning_rate: f64,
    /// Gradient-descent iterations.
    pub epochs: usize,
    /// L2 penalty strength.
    pub l2: f64,
    weights: Vec<f64>,
    bias: f64,
    scaler: Option<Scaler>,
}

impl LogisticRegression {
    /// Creates an unfitted model with the given hyperparameters.
    pub fn new(learning_rate: f64, epochs: usize, l2: f64) -> Self {
        LogisticRegression {
            learning_rate,
            epochs,
            l2,
            weights: Vec::new(),
            bias: 0.0,
            scaler: None,
        }
    }

    /// Sensible defaults for histogram-sized feature vectors.
    pub fn with_defaults() -> Self {
        Self::new(0.1, 300, 1e-4)
    }

    /// Fitted weights (standardized feature space). Empty before fit.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    fn decision(&self, row: &[f64]) -> f64 {
        let scaled = self
            .scaler
            .as_ref()
            .expect("predict before fit")
            .transform_row(row);
        self.bias
            + scaled
                .iter()
                .zip(&self.weights)
                .map(|(a, b)| a * b)
                .sum::<f64>()
    }
}

impl Classifier for LogisticRegression {
    fn fit(&mut self, x: &Matrix, y: &[usize]) {
        assert_eq!(x.rows(), y.len(), "x rows must match label count");
        assert!(x.rows() > 0, "cannot fit on an empty dataset");
        let scaler = Scaler::fit(x);
        let xs = scaler.transform(x);
        let (n, d) = (xs.rows(), xs.cols());
        self.weights = vec![0.0; d];
        self.bias = 0.0;

        let inv_n = 1.0 / n as f64;
        for _ in 0..self.epochs {
            let mut grad_w = vec![0.0; d];
            let mut grad_b = 0.0;
            for (row, &label) in xs.iter_rows().zip(y) {
                let z = self.bias
                    + row
                        .iter()
                        .zip(&self.weights)
                        .map(|(a, b)| a * b)
                        .sum::<f64>();
                let err = sigmoid(z) - label as f64;
                grad_b += err;
                for (g, v) in grad_w.iter_mut().zip(row) {
                    *g += err * v;
                }
            }
            for (w, g) in self.weights.iter_mut().zip(&grad_w) {
                *w -= self.learning_rate * (g * inv_n + self.l2 * *w);
            }
            self.bias -= self.learning_rate * grad_b * inv_n;
        }
        self.scaler = Some(scaler);
    }

    fn predict_proba(&self, x: &Matrix) -> Vec<f64> {
        x.iter_rows()
            .map(|row| sigmoid(self.decision(row)))
            .collect()
    }

    fn name(&self) -> &'static str {
        "Logistic Regression"
    }
}

/// Linear SVM trained with the Pegasos stochastic sub-gradient algorithm.
///
/// Probabilities are produced by squashing the margin through a sigmoid
/// (a fixed-slope Platt scaling), which is monotonic and therefore preserves
/// the decision boundary.
#[derive(Debug, Clone)]
pub struct LinearSvm {
    /// Regularization strength λ of the Pegasos objective.
    pub lambda: f64,
    /// Number of passes over the data.
    pub epochs: usize,
    /// RNG seed for sampling order.
    pub seed: u64,
    weights: Vec<f64>,
    bias: f64,
    scaler: Option<Scaler>,
}

impl LinearSvm {
    /// Creates an unfitted model.
    pub fn new(lambda: f64, epochs: usize, seed: u64) -> Self {
        LinearSvm {
            lambda,
            epochs,
            seed,
            weights: Vec::new(),
            bias: 0.0,
            scaler: None,
        }
    }

    /// Sensible defaults.
    pub fn with_defaults() -> Self {
        Self::new(1e-4, 30, 7)
    }

    /// Raw (pre-sigmoid) decision values for each row.
    pub fn decision_values(&self, x: &Matrix) -> Vec<f64> {
        x.iter_rows().map(|row| self.decision(row)).collect()
    }

    /// Weights and bias of the fitted hyperplane (in the space the model was
    /// trained on), or `None` before fitting.
    pub fn weights_bias(&self) -> Option<(&[f64], f64)> {
        if self.weights.is_empty() {
            None
        } else {
            Some((&self.weights, self.bias))
        }
    }

    fn decision(&self, row: &[f64]) -> f64 {
        let scaled = self
            .scaler
            .as_ref()
            .expect("predict before fit")
            .transform_row(row);
        self.bias
            + scaled
                .iter()
                .zip(&self.weights)
                .map(|(a, b)| a * b)
                .sum::<f64>()
    }

    /// Fits on already-standardized data (used by [`crate::RbfSvm`], whose
    /// random-Fourier features are already bounded).
    pub(crate) fn fit_prescaled(&mut self, xs: &Matrix, y: &[usize]) {
        let (n, d) = (xs.rows(), xs.cols());
        self.weights = vec![0.0; d];
        self.bias = 0.0;
        let mut rng = SplitMix::new(self.seed);
        let mut t = 0u64;
        for _ in 0..self.epochs {
            for _ in 0..n {
                t += 1;
                let i = rng.below(n);
                let row = xs.row(i);
                let label = if y[i] == 1 { 1.0 } else { -1.0 };
                let eta = 1.0 / (self.lambda * t as f64);
                let margin = label
                    * (self.bias
                        + row
                            .iter()
                            .zip(&self.weights)
                            .map(|(a, b)| a * b)
                            .sum::<f64>());
                // w ← (1 − ηλ)w  [+ ηyx when the margin is violated]
                let decay = 1.0 - eta * self.lambda;
                for w in &mut self.weights {
                    *w *= decay;
                }
                if margin < 1.0 {
                    for (w, v) in self.weights.iter_mut().zip(row) {
                        *w += eta * label * v;
                    }
                    self.bias += eta * label;
                }
            }
        }
    }
}

impl Classifier for LinearSvm {
    fn fit(&mut self, x: &Matrix, y: &[usize]) {
        assert_eq!(x.rows(), y.len(), "x rows must match label count");
        assert!(x.rows() > 0, "cannot fit on an empty dataset");
        let scaler = Scaler::fit(x);
        let xs = scaler.transform(x);
        self.scaler = Some(scaler);
        self.fit_prescaled(&xs, y);
    }

    fn predict_proba(&self, x: &Matrix) -> Vec<f64> {
        x.iter_rows()
            .map(|row| sigmoid(2.0 * self.decision(row)))
            .collect()
    }

    fn name(&self) -> &'static str {
        "Linear SVM"
    }
}

// --- Persistence -----------------------------------------------------------

use phishinghook_persist::{PersistError, Reader, Restore, Snapshot, Writer};

impl Snapshot for Scaler {
    fn snapshot(&self, w: &mut Writer) {
        self.means.snapshot(w);
        self.stds.snapshot(w);
    }
}

impl Restore for Scaler {
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let means: Vec<f64> = Vec::restore(r)?;
        let stds: Vec<f64> = Vec::restore(r)?;
        if means.len() != stds.len() {
            return Err(PersistError::Malformed(format!(
                "scaler has {} means but {} stds",
                means.len(),
                stds.len()
            )));
        }
        Ok(Scaler { means, stds })
    }
}

impl Snapshot for LogisticRegression {
    fn snapshot(&self, w: &mut Writer) {
        w.put_f64(self.learning_rate);
        w.put_usize(self.epochs);
        w.put_f64(self.l2);
        self.weights.snapshot(w);
        w.put_f64(self.bias);
        self.scaler.snapshot(w);
    }
}

impl Restore for LogisticRegression {
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(LogisticRegression {
            learning_rate: r.take_f64()?,
            epochs: r.take_usize()?,
            l2: r.take_f64()?,
            weights: Vec::restore(r)?,
            bias: r.take_f64()?,
            scaler: Option::restore(r)?,
        })
    }
}

impl Snapshot for LinearSvm {
    fn snapshot(&self, w: &mut Writer) {
        w.put_f64(self.lambda);
        w.put_usize(self.epochs);
        w.put_u64(self.seed);
        self.weights.snapshot(w);
        w.put_f64(self.bias);
        self.scaler.snapshot(w);
    }
}

impl Restore for LinearSvm {
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(LinearSvm {
            lambda: r.take_f64()?,
            epochs: r.take_usize()?,
            seed: r.take_u64()?,
            weights: Vec::restore(r)?,
            bias: r.take_f64()?,
            scaler: Option::restore(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separable(n: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = SplitMix::new(seed);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let label = i % 2;
            let c = if label == 0 { -2.0 } else { 2.0 };
            rows.push(vec![c + rng.normal() * 0.5, c + rng.normal() * 0.5]);
            y.push(label);
        }
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn logreg_separates_blobs() {
        let (x, y) = separable(100, 1);
        let mut lr = LogisticRegression::with_defaults();
        lr.fit(&x, &y);
        let correct = lr
            .predict(&x)
            .iter()
            .zip(&y)
            .filter(|(a, b)| a == b)
            .count();
        assert!(correct >= 97, "only {correct}/100");
    }

    #[test]
    fn logreg_probabilities_ordered_along_axis() {
        let (x, y) = separable(100, 2);
        let mut lr = LogisticRegression::with_defaults();
        lr.fit(&x, &y);
        let probe = Matrix::from_rows(&[vec![-3.0, -3.0], vec![0.0, 0.0], vec![3.0, 3.0]]);
        let p = lr.predict_proba(&probe);
        assert!(p[0] < p[1] && p[1] < p[2], "{p:?}");
    }

    #[test]
    fn sigmoid_stability() {
        assert!(sigmoid(1000.0) <= 1.0);
        assert!(sigmoid(-1000.0) >= 0.0);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-15);
        // Symmetry: σ(-z) = 1 - σ(z).
        for z in [-5.0, -1.0, 0.3, 2.7] {
            assert!((sigmoid(-z) - (1.0 - sigmoid(z))).abs() < 1e-12);
        }
    }

    #[test]
    fn svm_separates_blobs() {
        let (x, y) = separable(100, 3);
        let mut svm = LinearSvm::with_defaults();
        svm.fit(&x, &y);
        let correct = svm
            .predict(&x)
            .iter()
            .zip(&y)
            .filter(|(a, b)| a == b)
            .count();
        assert!(correct >= 97, "only {correct}/100");
    }

    #[test]
    fn svm_deterministic_under_seed() {
        let (x, y) = separable(60, 4);
        let mut a = LinearSvm::new(1e-4, 10, 11);
        let mut b = LinearSvm::new(1e-4, 10, 11);
        a.fit(&x, &y);
        b.fit(&x, &y);
        assert_eq!(a.predict_proba(&x), b.predict_proba(&x));
    }

    #[test]
    fn constant_feature_does_not_nan() {
        let x = Matrix::from_rows(&[
            vec![1.0, 5.0],
            vec![1.0, -5.0],
            vec![1.0, 5.0],
            vec![1.0, -5.0],
        ]);
        let y = vec![1, 0, 1, 0];
        let mut lr = LogisticRegression::with_defaults();
        lr.fit(&x, &y);
        for p in lr.predict_proba(&x) {
            assert!(p.is_finite());
        }
        assert_eq!(lr.predict(&x), y);
    }

    #[test]
    fn logreg_weights_accessible_after_fit() {
        let (x, y) = separable(40, 5);
        let mut lr = LogisticRegression::with_defaults();
        lr.fit(&x, &y);
        assert_eq!(lr.weights().len(), 2);
        // Both features point the same way for these blobs.
        assert!(lr.weights()[0] > 0.0 && lr.weights()[1] > 0.0);
    }
}
