//! k-nearest-neighbours classification (brute force, Euclidean metric).
//!
//! One of the paper's seven HSCs (90.60% accuracy). Histogram feature vectors
//! are short (≈ number of distinct opcodes), so brute-force search is fast
//! enough and exact.

use crate::matrix::Matrix;
use crate::Classifier;

/// A fitted k-NN model (stores the training set).
#[derive(Debug, Clone)]
pub struct KNearestNeighbors {
    /// Number of neighbours consulted per prediction.
    pub k: usize,
    train_x: Matrix,
    train_y: Vec<usize>,
}

impl KNearestNeighbors {
    /// Creates an unfitted model.
    ///
    /// # Panics
    /// Panics when `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        KNearestNeighbors {
            k,
            train_x: Matrix::zeros(0, 0),
            train_y: Vec::new(),
        }
    }

    /// Width of the stored training rows (0 before fit).
    pub fn n_features(&self) -> usize {
        self.train_x.cols()
    }

    fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
    }
}

impl Classifier for KNearestNeighbors {
    fn fit(&mut self, x: &Matrix, y: &[usize]) {
        assert_eq!(x.rows(), y.len(), "x rows must match label count");
        assert!(x.rows() > 0, "cannot fit on an empty dataset");
        self.train_x = x.clone();
        self.train_y = y.to_vec();
    }

    fn predict_proba(&self, x: &Matrix) -> Vec<f64> {
        assert!(self.train_x.rows() > 0, "predict before fit");
        let k = self.k.min(self.train_x.rows());
        x.iter_rows()
            .map(|row| {
                let mut dists: Vec<(f64, usize)> = self
                    .train_x
                    .iter_rows()
                    .zip(&self.train_y)
                    .map(|(t, &label)| (Self::squared_distance(row, t), label))
                    .collect();
                // Partial selection of the k smallest distances.
                dists.select_nth_unstable_by(k - 1, |a, b| {
                    a.0.partial_cmp(&b.0).expect("finite distances")
                });
                let ones: usize = dists[..k].iter().map(|&(_, l)| l).sum();
                ones as f64 / k as f64
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "k-NN"
    }
}

// --- Persistence -----------------------------------------------------------

use phishinghook_persist::{PersistError, Reader, Restore, Snapshot, Writer};

impl Snapshot for KNearestNeighbors {
    fn snapshot(&self, w: &mut Writer) {
        // k-NN's fitted state *is* the training set.
        w.put_usize(self.k);
        self.train_x.snapshot(w);
        self.train_y.snapshot(w);
    }
}

impl Restore for KNearestNeighbors {
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let k = r.take_usize()?;
        if k == 0 {
            return Err(PersistError::Malformed("k-NN with k = 0".to_owned()));
        }
        let train_x = Matrix::restore(r)?;
        let train_y: Vec<usize> = Vec::restore(r)?;
        if train_x.rows() != train_y.len() {
            return Err(PersistError::Malformed(format!(
                "k-NN has {} training rows but {} labels",
                train_x.rows(),
                train_y.len()
            )));
        }
        // `fit` rejects empty training sets, so no legitimate snapshot has
        // zero rows — and predicting on one would panic.
        if train_x.rows() == 0 {
            return Err(PersistError::Malformed(
                "k-NN with an empty training set".to_owned(),
            ));
        }
        Ok(KNearestNeighbors {
            k,
            train_x,
            train_y,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_nn_memorizes_training_set() {
        let x = Matrix::from_rows(&[vec![0.0, 0.0], vec![10.0, 10.0], vec![0.0, 10.0]]);
        let y = vec![0, 1, 0];
        let mut knn = KNearestNeighbors::new(1);
        knn.fit(&x, &y);
        assert_eq!(knn.predict(&x), y);
    }

    #[test]
    fn k_larger_than_train_is_clamped() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0]]);
        let y = vec![0, 1];
        let mut knn = KNearestNeighbors::new(50);
        knn.fit(&x, &y);
        assert_eq!(knn.predict_proba(&x), vec![0.5, 0.5]);
    }

    #[test]
    fn majority_vote() {
        let x = Matrix::from_rows(&[vec![0.0], vec![0.1], vec![0.2], vec![5.0]]);
        let y = vec![1, 1, 0, 0];
        let mut knn = KNearestNeighbors::new(3);
        knn.fit(&x, &y);
        // Query near the cluster of three: neighbours are labels {1,1,0}.
        let q = Matrix::from_rows(&[vec![0.05]]);
        let p = knn.predict_proba(&q);
        assert!((p[0] - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(knn.predict(&q), vec![1]);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let _ = KNearestNeighbors::new(0);
    }

    #[test]
    fn distances_use_all_features() {
        let x = Matrix::from_rows(&[vec![0.0, 0.0], vec![0.0, 100.0]]);
        let y = vec![0, 1];
        let mut knn = KNearestNeighbors::new(1);
        knn.fit(&x, &y);
        let q = Matrix::from_rows(&[vec![0.0, 99.0]]);
        assert_eq!(knn.predict(&q), vec![1]);
    }
}
