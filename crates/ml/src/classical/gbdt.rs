//! Gradient-boosted decision trees with three variants standing in for the
//! paper's XGBoost, LightGBM and CatBoost HSCs.
//!
//! All variants share the same second-order logistic-loss boosting loop
//! (gradient `p - y`, hessian `p(1-p)`, leaf weight `-G/(H+λ)`, gain
//! `½[G_L²/(H_L+λ) + G_R²/(H_R+λ) − G²/(H+λ)] − γ`) and differ exactly where
//! the real libraries differ:
//!
//! * [`BoostVariant::Exact`] — XGBoost's exact greedy split finding over
//!   sorted raw feature values, depth-wise growth.
//! * [`BoostVariant::Histogram`] — LightGBM's quantile-binned histograms with
//!   best-first (leaf-wise) growth bounded by `max_leaves`.
//! * [`BoostVariant::Oblivious`] — CatBoost's symmetric (oblivious) trees:
//!   one shared split condition per level, leaves indexed by the condition
//!   bit-vector.

use crate::classical::quant::{FeatureBins, NanRoute, QuantNodeDesc, QuantNodes, QuantOblivious};
use crate::classical::SplitMix;
use crate::matrix::Matrix;
use crate::Classifier;

/// Which boosting flavour to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoostVariant {
    /// Exact greedy splits, depth-wise growth (XGBoost-style).
    Exact,
    /// Histogram splits, leaf-wise growth (LightGBM-style).
    Histogram,
    /// Oblivious/symmetric trees (CatBoost-style).
    Oblivious,
}

/// Hyperparameters for [`GradientBoosting`].
#[derive(Debug, Clone, PartialEq)]
pub struct GbdtConfig {
    /// Boosting flavour.
    pub variant: BoostVariant,
    /// Number of boosting rounds (trees).
    pub n_rounds: usize,
    /// Shrinkage applied to every leaf weight.
    pub learning_rate: f64,
    /// Depth cap (Exact and Oblivious variants).
    pub max_depth: usize,
    /// Leaf cap (Histogram variant's leaf-wise growth).
    pub max_leaves: usize,
    /// L2 regularization λ on leaf weights.
    pub lambda: f64,
    /// Minimum gain γ required to keep a split.
    pub gamma: f64,
    /// Minimum hessian sum per child.
    pub min_child_weight: f64,
    /// Row subsampling fraction per round.
    pub subsample: f64,
    /// Feature subsampling fraction per round.
    pub colsample: f64,
    /// Histogram bin count (binned variants).
    pub n_bins: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GbdtConfig {
    fn default() -> Self {
        GbdtConfig {
            variant: BoostVariant::Exact,
            n_rounds: 100,
            learning_rate: 0.2,
            max_depth: 6,
            max_leaves: 31,
            lambda: 1.0,
            gamma: 0.0,
            min_child_weight: 1.0,
            subsample: 1.0,
            colsample: 1.0,
            n_bins: 64,
            seed: 17,
        }
    }
}

/// Node of a regression tree (Exact / Histogram variants).
#[derive(Debug, Clone)]
enum RegNode {
    Leaf {
        weight: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

#[derive(Debug, Clone)]
struct RegTree {
    nodes: Vec<RegNode>,
}

impl RegTree {
    /// The arena in the quantizer's neutral descriptor form.
    fn quant_desc(&self) -> Vec<QuantNodeDesc> {
        self.nodes
            .iter()
            .map(|node| match *node {
                RegNode::Leaf { weight } => QuantNodeDesc::Leaf { value: weight },
                RegNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => QuantNodeDesc::Split {
                    feature,
                    threshold,
                    left,
                    right,
                },
            })
            .collect()
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        let mut i = 0;
        loop {
            match &self.nodes[i] {
                RegNode::Leaf { weight } => return *weight,
                RegNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

/// A CatBoost-style oblivious tree: `conditions[l]` is tested at level `l`
/// for *every* sample, and the resulting bit-vector indexes `leaf_weights`.
#[derive(Debug, Clone)]
struct ObliviousTree {
    conditions: Vec<(usize, f64)>,
    leaf_weights: Vec<f64>,
}

impl ObliviousTree {
    fn predict_row(&self, row: &[f64]) -> f64 {
        let mut idx = 0usize;
        for (level, (feature, threshold)) in self.conditions.iter().enumerate() {
            if row[*feature] > *threshold {
                idx |= 1 << level;
            }
        }
        self.leaf_weights[idx]
    }
}

#[derive(Debug, Clone)]
enum BoostTree {
    Reg(RegTree),
    Oblivious(ObliviousTree),
}

impl BoostTree {
    fn predict_row(&self, row: &[f64]) -> f64 {
        match self {
            BoostTree::Reg(t) => t.predict_row(row),
            BoostTree::Oblivious(t) => t.predict_row(row),
        }
    }
}

/// Quantized mirror of one boosted tree.
#[derive(Debug, Clone)]
enum QuantBoostTree {
    Reg(QuantNodes),
    Oblivious(QuantOblivious),
}

/// Quantized mirror of the whole booster: shared bins over every tree's
/// thresholds plus the repacked trees. Derived state — rebuilt at fit and
/// restore time, never persisted.
#[derive(Debug, Clone)]
struct GbdtQuant {
    bins: FeatureBins,
    trees: Vec<QuantBoostTree>,
}

/// A fitted gradient-boosting classifier.
#[derive(Debug, Clone)]
pub struct GradientBoosting {
    config: GbdtConfig,
    base_score: f64,
    trees: Vec<BoostTree>,
    quant: Option<GbdtQuant>,
}

impl GradientBoosting {
    /// Creates an unfitted booster.
    pub fn new(config: GbdtConfig) -> Self {
        GradientBoosting {
            config,
            base_score: 0.0,
            trees: Vec::new(),
            quant: None,
        }
    }

    /// An unfitted booster of the given variant with otherwise-default
    /// hyperparameters.
    pub fn with_variant(variant: BoostVariant) -> Self {
        Self::new(GbdtConfig {
            variant,
            ..GbdtConfig::default()
        })
    }

    /// Number of fitted trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// The configuration.
    pub fn config(&self) -> &GbdtConfig {
        &self.config
    }

    /// Highest feature index any fitted tree tests (`None` for an ensemble
    /// of pure leaves or before fit). Snapshot restore uses this to
    /// cross-check the ensemble against the feature extractor it is paired
    /// with — the trees themselves do not store a feature count.
    pub fn max_feature_index(&self) -> Option<usize> {
        let mut max: Option<usize> = None;
        let mut bump = |f: usize| max = Some(max.map_or(f, |m: usize| m.max(f)));
        for tree in &self.trees {
            match tree {
                BoostTree::Reg(t) => {
                    for node in &t.nodes {
                        if let RegNode::Split { feature, .. } = node {
                            bump(*feature);
                        }
                    }
                }
                BoostTree::Oblivious(t) => {
                    for &(feature, _) in &t.conditions {
                        bump(feature);
                    }
                }
            }
        }
        max
    }

    fn raw_scores(&self, x: &Matrix) -> Vec<f64> {
        x.iter_rows()
            .map(|row| self.base_score + self.trees.iter().map(|t| t.predict_row(row)).sum::<f64>())
            .collect()
    }

    /// Batch probabilities via the quantized fast path, or `None` when
    /// quantization is unavailable (over the bin budget, or a crafted
    /// snapshot mixing tree families). Trees accumulate in order starting
    /// from zero with the base score added afterwards — the same floating-
    /// point association as the private `raw_scores` reference path — so the
    /// result is bit-identical to [`Classifier::predict_proba`].
    pub fn predict_proba_quantized(&self, x: &Matrix) -> Option<Vec<f64>> {
        assert!(
            !self.trees.is_empty() || self.base_score != 0.0,
            "predict before fit"
        );
        let quant = self.quant.as_ref()?;
        let q = quant.bins.quantize_matrix(x);
        let mut acc = vec![0.0; x.rows()];
        // Block the rows so a block's accumulator stays in cache while
        // every tree adds into it (same shape as the forest's fast path).
        const BLOCK: usize = 256;
        let mut lo = 0;
        for block in acc.chunks_mut(BLOCK) {
            let hi = lo + block.len();
            for tree in &quant.trees {
                match tree {
                    QuantBoostTree::Reg(t) => t.accumulate_rows(&q, lo, hi, block),
                    QuantBoostTree::Oblivious(t) => t.accumulate_rows(&q, lo, hi, block),
                }
            }
            lo = hi;
        }
        Some(
            acc.into_iter()
                .map(|s| sigmoid(self.base_score + s))
                .collect(),
        )
    }

    /// Widest per-feature bin count of the quantized mirror, or `None`
    /// when quantization is unavailable.
    pub fn quant_bins(&self) -> Option<usize> {
        self.quant.as_ref().map(|q| q.bins.max_bins())
    }

    /// Rebuilds the quantized mirror from the fitted trees (fit + restore).
    fn rebuild_quant(&mut self) {
        self.quant = None;
        // NaN routing differs by family: `v <= t` trees send NaN right,
        // oblivious `v > t` conditions send it left. One booster only ever
        // fits one family; a crafted snapshot mixing them stays on the f64
        // path rather than sharing a wrongly-routed matrix.
        let all_reg = self.trees.iter().all(|t| matches!(t, BoostTree::Reg(_)));
        let all_oblivious = self
            .trees
            .iter()
            .all(|t| matches!(t, BoostTree::Oblivious(_)));
        if !all_reg && !all_oblivious {
            return;
        }
        let nan_route = if all_reg {
            NanRoute::Right
        } else {
            NanRoute::Left
        };
        // The packed layout stores feature ids as u16 (trees never store a
        // feature count, so a crafted snapshot could exceed that).
        if self
            .max_feature_index()
            .is_some_and(|m| m > usize::from(u16::MAX))
        {
            return;
        }
        let d = self.max_feature_index().map_or(0, |m| m + 1);
        let mut per_feature = vec![Vec::new(); d];
        for tree in &self.trees {
            match tree {
                BoostTree::Reg(t) => {
                    for node in &t.nodes {
                        if let RegNode::Split {
                            feature, threshold, ..
                        } = *node
                        {
                            per_feature[feature].push(threshold);
                        }
                    }
                }
                BoostTree::Oblivious(t) => {
                    for &(feature, threshold) in &t.conditions {
                        per_feature[feature].push(threshold);
                    }
                }
            }
        }
        let Some(bins) = FeatureBins::from_split_thresholds(per_feature, nan_route) else {
            return;
        };
        let trees = self
            .trees
            .iter()
            .map(|tree| match tree {
                BoostTree::Reg(t) => {
                    QuantBoostTree::Reg(QuantNodes::from_arena(&t.quant_desc(), &bins))
                }
                BoostTree::Oblivious(t) => QuantBoostTree::Oblivious(
                    QuantOblivious::from_conditions(&t.conditions, t.leaf_weights.clone(), &bins),
                ),
            })
            .collect();
        self.quant = Some(GbdtQuant { bins, trees });
    }
}

fn sigmoid(z: f64) -> f64 {
    crate::classical::linear::sigmoid(z)
}

/// Gain of a candidate child pair under the XGBoost objective.
fn split_gain(gl: f64, hl: f64, gr: f64, hr: f64, lambda: f64) -> f64 {
    let term = |g: f64, h: f64| g * g / (h + lambda);
    0.5 * (term(gl, hl) + term(gr, hr) - term(gl + gr, hl + hr))
}

/// Per-feature quantile binning used by the Histogram/Oblivious variants.
#[derive(Debug)]
struct Binning {
    /// `edges[f]` are ascending upper-inclusive bin boundaries for feature f;
    /// bin `b` covers `(edges[b-1], edges[b]]` and the last bin is open-ended.
    edges: Vec<Vec<f64>>,
}

impl Binning {
    fn fit(x: &Matrix, n_bins: usize) -> Self {
        let mut edges = Vec::with_capacity(x.cols());
        for f in 0..x.cols() {
            let mut vals = x.col(f);
            vals.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite features"));
            vals.dedup();
            let mut e = Vec::new();
            if vals.len() > 1 {
                let per_bin = (vals.len() as f64 / n_bins as f64).max(1.0);
                let mut k = per_bin;
                while (k as usize) < vals.len() {
                    let edge = vals[(k as usize) - 1];
                    if e.last() != Some(&edge) {
                        e.push(edge);
                    }
                    k += per_bin;
                }
                // Ensure the largest value below the max is an edge so a
                // split can isolate the top bin.
                let last_interior = vals[vals.len() - 2];
                if e.last() != Some(&last_interior) && e.len() + 1 < n_bins {
                    e.push(last_interior);
                }
            }
            edges.push(e);
        }
        Binning { edges }
    }

    fn bin(&self, feature: usize, value: f64) -> u16 {
        let e = &self.edges[feature];
        // Number of edges strictly below `value` == partition_point(edge < value).
        e.partition_point(|&edge| edge < value) as u16
    }

    fn n_bins(&self, feature: usize) -> usize {
        self.edges[feature].len() + 1
    }

    /// Raw-value threshold for "bin index <= b".
    fn threshold(&self, feature: usize, bin: usize) -> f64 {
        self.edges[feature][bin]
    }
}

impl Classifier for GradientBoosting {
    fn fit(&mut self, x: &Matrix, y: &[usize]) {
        assert_eq!(x.rows(), y.len(), "x rows must match label count");
        assert!(x.rows() > 0, "cannot fit on an empty dataset");
        let n = x.rows();
        let d = x.cols();
        let pos = y.iter().filter(|&&l| l == 1).count() as f64;
        let rate = (pos / n as f64).clamp(1e-6, 1.0 - 1e-6);
        self.base_score = (rate / (1.0 - rate)).ln();
        self.trees.clear();

        let binning = match self.config.variant {
            BoostVariant::Exact => None,
            _ => Some(Binning::fit(x, self.config.n_bins)),
        };
        // Pre-binned matrix for binned variants.
        let binned: Option<Vec<Vec<u16>>> = binning.as_ref().map(|b| {
            (0..n)
                .map(|i| (0..d).map(|f| b.bin(f, x[(i, f)])).collect())
                .collect()
        });

        let mut rng = SplitMix::new(self.config.seed);
        let mut scores = vec![self.base_score; n];

        for _round in 0..self.config.n_rounds {
            // Second-order statistics of the logistic loss.
            let mut grad = vec![0.0; n];
            let mut hess = vec![0.0; n];
            for i in 0..n {
                let p = sigmoid(scores[i]);
                grad[i] = p - y[i] as f64;
                hess[i] = (p * (1.0 - p)).max(1e-12);
            }

            // Row subsample.
            let rows: Vec<usize> = if self.config.subsample < 1.0 {
                (0..n)
                    .filter(|_| rng.unit() < self.config.subsample)
                    .collect()
            } else {
                (0..n).collect()
            };
            if rows.is_empty() {
                continue;
            }
            // Column subsample.
            let cols: Vec<usize> = if self.config.colsample < 1.0 {
                let mut fs: Vec<usize> = (0..d).collect();
                rng.shuffle(&mut fs);
                let keep = ((d as f64 * self.config.colsample).ceil() as usize).max(1);
                fs.truncate(keep);
                fs.sort_unstable();
                fs
            } else {
                (0..d).collect()
            };

            let tree = match self.config.variant {
                BoostVariant::Exact => {
                    BoostTree::Reg(build_exact(x, &grad, &hess, &rows, &cols, &self.config))
                }
                BoostVariant::Histogram => BoostTree::Reg(build_histogram(
                    binned
                        .as_ref()
                        .expect("binned matrix for histogram variant"),
                    binning.as_ref().expect("binning for histogram variant"),
                    &grad,
                    &hess,
                    &rows,
                    &cols,
                    &self.config,
                )),
                BoostVariant::Oblivious => BoostTree::Oblivious(build_oblivious(
                    binned
                        .as_ref()
                        .expect("binned matrix for oblivious variant"),
                    binning.as_ref().expect("binning for oblivious variant"),
                    &grad,
                    &hess,
                    &rows,
                    &cols,
                    &self.config,
                )),
            };

            for (i, score) in scores.iter_mut().enumerate().take(n) {
                *score += tree.predict_row(x.row(i));
            }
            self.trees.push(tree);
        }
        self.rebuild_quant();
    }

    fn predict_proba(&self, x: &Matrix) -> Vec<f64> {
        assert!(
            !self.trees.is_empty() || self.base_score != 0.0,
            "predict before fit"
        );
        self.raw_scores(x).into_iter().map(sigmoid).collect()
    }

    fn name(&self) -> &'static str {
        match self.config.variant {
            BoostVariant::Exact => "XGBoost",
            BoostVariant::Histogram => "LightGBM",
            BoostVariant::Oblivious => "CatBoost",
        }
    }
}

// --- Persistence -----------------------------------------------------------

use phishinghook_persist::{PersistError, Reader, Restore, Snapshot, Writer};

impl Snapshot for BoostVariant {
    fn snapshot(&self, w: &mut Writer) {
        w.put_u8(match self {
            BoostVariant::Exact => 0,
            BoostVariant::Histogram => 1,
            BoostVariant::Oblivious => 2,
        });
    }
}

impl Restore for BoostVariant {
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        match r.take_u8()? {
            0 => Ok(BoostVariant::Exact),
            1 => Ok(BoostVariant::Histogram),
            2 => Ok(BoostVariant::Oblivious),
            tag => Err(PersistError::Malformed(format!(
                "unknown boosting variant tag {tag:#04x}"
            ))),
        }
    }
}

impl Snapshot for GbdtConfig {
    fn snapshot(&self, w: &mut Writer) {
        self.variant.snapshot(w);
        w.put_usize(self.n_rounds);
        w.put_f64(self.learning_rate);
        w.put_usize(self.max_depth);
        w.put_usize(self.max_leaves);
        w.put_f64(self.lambda);
        w.put_f64(self.gamma);
        w.put_f64(self.min_child_weight);
        w.put_f64(self.subsample);
        w.put_f64(self.colsample);
        w.put_usize(self.n_bins);
        w.put_u64(self.seed);
    }
}

impl Restore for GbdtConfig {
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(GbdtConfig {
            variant: BoostVariant::restore(r)?,
            n_rounds: r.take_usize()?,
            learning_rate: r.take_f64()?,
            max_depth: r.take_usize()?,
            max_leaves: r.take_usize()?,
            lambda: r.take_f64()?,
            gamma: r.take_f64()?,
            min_child_weight: r.take_f64()?,
            subsample: r.take_f64()?,
            colsample: r.take_f64()?,
            n_bins: r.take_usize()?,
            seed: r.take_u64()?,
        })
    }
}

impl Snapshot for RegNode {
    fn snapshot(&self, w: &mut Writer) {
        match *self {
            RegNode::Leaf { weight } => {
                w.put_u8(0);
                w.put_f64(weight);
            }
            RegNode::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                w.put_u8(1);
                w.put_usize(feature);
                w.put_f64(threshold);
                w.put_usize(left);
                w.put_usize(right);
            }
        }
    }
}

impl Restore for RegNode {
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        match r.take_u8()? {
            0 => Ok(RegNode::Leaf {
                weight: r.take_f64()?,
            }),
            1 => Ok(RegNode::Split {
                feature: r.take_usize()?,
                threshold: r.take_f64()?,
                left: r.take_usize()?,
                right: r.take_usize()?,
            }),
            tag => Err(PersistError::Malformed(format!(
                "unknown boost-node tag {tag:#04x}"
            ))),
        }
    }
}

impl Snapshot for BoostTree {
    fn snapshot(&self, w: &mut Writer) {
        match self {
            BoostTree::Reg(t) => {
                w.put_u8(0);
                t.nodes.snapshot(w);
            }
            BoostTree::Oblivious(t) => {
                w.put_u8(1);
                w.put_usize(t.conditions.len());
                for &(feature, threshold) in &t.conditions {
                    w.put_usize(feature);
                    w.put_f64(threshold);
                }
                t.leaf_weights.snapshot(w);
            }
        }
    }
}

impl Restore for BoostTree {
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        match r.take_u8()? {
            0 => {
                let nodes: Vec<RegNode> = Vec::restore(r)?;
                for (i, node) in nodes.iter().enumerate() {
                    if let RegNode::Split { left, right, .. } = *node {
                        // Forward-only children (builders push parents
                        // first), so a crafted cyclic tree cannot hang
                        // `predict_row`.
                        if left >= nodes.len() || right >= nodes.len() || left <= i || right <= i {
                            return Err(PersistError::Malformed(format!(
                                "boost node {i} has invalid children ({left}/{right} of {})",
                                nodes.len()
                            )));
                        }
                    }
                }
                Ok(BoostTree::Reg(RegTree { nodes }))
            }
            1 => {
                let n_conditions = r.take_len(16)?; // 8-byte feature + 8-byte threshold each
                let mut conditions = Vec::with_capacity(n_conditions);
                for _ in 0..n_conditions {
                    conditions.push((r.take_usize()?, r.take_f64()?));
                }
                let leaf_weights: Vec<f64> = Vec::restore(r)?;
                // predict_row indexes leaves by the condition bit-vector, so
                // the weight table must cover all 2^levels indices.
                let expected = 1usize.checked_shl(conditions.len() as u32).ok_or_else(|| {
                    PersistError::Malformed(format!(
                        "oblivious tree with {} levels overflows",
                        conditions.len()
                    ))
                })?;
                if leaf_weights.len() != expected {
                    return Err(PersistError::Malformed(format!(
                        "oblivious tree with {} levels needs {expected} leaves, has {}",
                        conditions.len(),
                        leaf_weights.len()
                    )));
                }
                Ok(BoostTree::Oblivious(ObliviousTree {
                    conditions,
                    leaf_weights,
                }))
            }
            tag => Err(PersistError::Malformed(format!(
                "unknown boost-tree tag {tag:#04x}"
            ))),
        }
    }
}

impl Snapshot for GradientBoosting {
    fn snapshot(&self, w: &mut Writer) {
        self.config.snapshot(w);
        w.put_f64(self.base_score);
        self.trees.snapshot(w);
    }
}

impl Restore for GradientBoosting {
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let mut model = GradientBoosting {
            config: GbdtConfig::restore(r)?,
            base_score: r.take_f64()?,
            trees: Vec::restore(r)?,
            quant: None,
        };
        model.rebuild_quant();
        Ok(model)
    }
}

/// Depth-wise exact greedy tree (XGBoost-style).
fn build_exact(
    x: &Matrix,
    grad: &[f64],
    hess: &[f64],
    rows: &[usize],
    cols: &[usize],
    cfg: &GbdtConfig,
) -> RegTree {
    let mut tree = RegTree { nodes: Vec::new() };
    let mut indices = rows.to_vec();
    build_exact_node(x, grad, hess, &mut indices, cols, cfg, 0, &mut tree);
    tree
}

#[allow(clippy::too_many_arguments)]
fn build_exact_node(
    x: &Matrix,
    grad: &[f64],
    hess: &[f64],
    indices: &mut [usize],
    cols: &[usize],
    cfg: &GbdtConfig,
    depth: usize,
    tree: &mut RegTree,
) -> usize {
    let g: f64 = indices.iter().map(|&i| grad[i]).sum();
    let h: f64 = indices.iter().map(|&i| hess[i]).sum();
    let leaf_weight = -g / (h + cfg.lambda) * cfg.learning_rate;

    if depth >= cfg.max_depth || indices.len() < 2 {
        tree.nodes.push(RegNode::Leaf {
            weight: leaf_weight,
        });
        return tree.nodes.len() - 1;
    }

    // Exact greedy split over sorted raw values.
    let mut best: Option<(f64, usize, f64)> = None;
    let mut pairs: Vec<(f64, f64, f64)> = Vec::with_capacity(indices.len());
    for &f in cols {
        pairs.clear();
        pairs.extend(indices.iter().map(|&i| (x[(i, f)], grad[i], hess[i])));
        pairs.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).expect("finite features"));
        let mut gl = 0.0;
        let mut hl = 0.0;
        for k in 0..pairs.len() - 1 {
            gl += pairs[k].1;
            hl += pairs[k].2;
            if pairs[k].0 == pairs[k + 1].0 {
                continue;
            }
            let (gr, hr) = (g - gl, h - hl);
            if hl < cfg.min_child_weight || hr < cfg.min_child_weight {
                continue;
            }
            let gain = split_gain(gl, hl, gr, hr, cfg.lambda);
            if gain > cfg.gamma && best.is_none_or(|(bg, _, _)| gain > bg) {
                best = Some((gain, f, 0.5 * (pairs[k].0 + pairs[k + 1].0)));
            }
        }
    }

    let Some((_, feature, threshold)) = best else {
        tree.nodes.push(RegNode::Leaf {
            weight: leaf_weight,
        });
        return tree.nodes.len() - 1;
    };

    let mut split_point = 0;
    for i in 0..indices.len() {
        if x[(indices[i], feature)] <= threshold {
            indices.swap(i, split_point);
            split_point += 1;
        }
    }
    let node_id = tree.nodes.len();
    tree.nodes.push(RegNode::Split {
        feature,
        threshold,
        left: usize::MAX,
        right: usize::MAX,
    });
    let (li, ri) = indices.split_at_mut(split_point);
    let left = build_exact_node(x, grad, hess, li, cols, cfg, depth + 1, tree);
    let right = build_exact_node(x, grad, hess, ri, cols, cfg, depth + 1, tree);
    if let RegNode::Split {
        left: l, right: r, ..
    } = &mut tree.nodes[node_id]
    {
        *l = left;
        *r = right;
    }
    node_id
}

/// Best-first (leaf-wise) histogram tree (LightGBM-style).
fn build_histogram(
    binned: &[Vec<u16>],
    binning: &Binning,
    grad: &[f64],
    hess: &[f64],
    rows: &[usize],
    cols: &[usize],
    cfg: &GbdtConfig,
) -> RegTree {
    struct Candidate {
        indices: Vec<usize>,
        gain: f64,
        feature: usize,
        bin: usize,
        node_id: usize,
    }

    /// Best (gain, feature, bin) for one leaf, from per-bin histograms.
    fn best_for(
        binned: &[Vec<u16>],
        binning: &Binning,
        grad: &[f64],
        hess: &[f64],
        indices: &[usize],
        cols: &[usize],
        cfg: &GbdtConfig,
    ) -> Option<(f64, usize, usize)> {
        let g: f64 = indices.iter().map(|&i| grad[i]).sum();
        let h: f64 = indices.iter().map(|&i| hess[i]).sum();
        let mut best: Option<(f64, usize, usize)> = None;
        for &f in cols {
            let nb = binning.n_bins(f);
            if nb < 2 {
                continue;
            }
            let mut hist_g = vec![0.0; nb];
            let mut hist_h = vec![0.0; nb];
            for &i in indices {
                let b = binned[i][f] as usize;
                hist_g[b] += grad[i];
                hist_h[b] += hess[i];
            }
            let mut gl = 0.0;
            let mut hl = 0.0;
            for b in 0..nb - 1 {
                gl += hist_g[b];
                hl += hist_h[b];
                let (gr, hr) = (g - gl, h - hl);
                if hl < cfg.min_child_weight || hr < cfg.min_child_weight {
                    continue;
                }
                let gain = split_gain(gl, hl, gr, hr, cfg.lambda);
                if gain > cfg.gamma && best.is_none_or(|(bg, _, _)| gain > bg) {
                    best = Some((gain, f, b));
                }
            }
        }
        best
    }

    let mut tree = RegTree { nodes: Vec::new() };
    let leaf_weight = |idx: &[usize]| {
        let g: f64 = idx.iter().map(|&i| grad[i]).sum();
        let h: f64 = idx.iter().map(|&i| hess[i]).sum();
        -g / (h + cfg.lambda) * cfg.learning_rate
    };

    tree.nodes.push(RegNode::Leaf {
        weight: leaf_weight(rows),
    });
    let mut frontier: Vec<Candidate> = Vec::new();
    if let Some((gain, feature, bin)) = best_for(binned, binning, grad, hess, rows, cols, cfg) {
        frontier.push(Candidate {
            indices: rows.to_vec(),
            gain,
            feature,
            bin,
            node_id: 0,
        });
    }
    let mut n_leaves = 1;

    while n_leaves < cfg.max_leaves && !frontier.is_empty() {
        // Pop the highest-gain candidate (leaf-wise growth).
        let best_idx = frontier
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.gain.partial_cmp(&b.1.gain).expect("finite gains"))
            .map(|(i, _)| i)
            .expect("frontier not empty");
        let cand = frontier.swap_remove(best_idx);

        let threshold = binning.threshold(cand.feature, cand.bin);
        let (li, ri): (Vec<usize>, Vec<usize>) = cand
            .indices
            .iter()
            .partition(|&&i| (binned[i][cand.feature] as usize) <= cand.bin);
        debug_assert!(!li.is_empty() && !ri.is_empty());

        let left_id = tree.nodes.len();
        tree.nodes.push(RegNode::Leaf {
            weight: leaf_weight(&li),
        });
        let right_id = tree.nodes.len();
        tree.nodes.push(RegNode::Leaf {
            weight: leaf_weight(&ri),
        });
        tree.nodes[cand.node_id] = RegNode::Split {
            feature: cand.feature,
            threshold,
            left: left_id,
            right: right_id,
        };
        n_leaves += 1;

        for (idx, node_id) in [(li, left_id), (ri, right_id)] {
            if let Some((gain, feature, bin)) =
                best_for(binned, binning, grad, hess, &idx, cols, cfg)
            {
                frontier.push(Candidate {
                    indices: idx,
                    gain,
                    feature,
                    bin,
                    node_id,
                });
            }
        }
    }
    tree
}

/// Symmetric/oblivious tree (CatBoost-style): one condition per level shared
/// by every node at that level.
fn build_oblivious(
    binned: &[Vec<u16>],
    binning: &Binning,
    grad: &[f64],
    hess: &[f64],
    rows: &[usize],
    cols: &[usize],
    cfg: &GbdtConfig,
) -> ObliviousTree {
    // leaf_of[i] = current leaf index of sample rows[i].
    let mut leaf_of = vec![0usize; rows.len()];
    let mut conditions: Vec<(usize, f64)> = Vec::new();

    for level in 0..cfg.max_depth {
        let n_leaves = 1 << level;
        // For every (feature, bin), gain summed across all current leaves.
        let mut best: Option<(f64, usize, usize)> = None;
        for &f in cols {
            let nb = binning.n_bins(f);
            if nb < 2 {
                continue;
            }
            // Per-leaf per-bin histograms.
            let mut hist_g = vec![0.0; n_leaves * nb];
            let mut hist_h = vec![0.0; n_leaves * nb];
            let mut leaf_g = vec![0.0; n_leaves];
            let mut leaf_h = vec![0.0; n_leaves];
            for (k, &i) in rows.iter().enumerate() {
                let leaf = leaf_of[k];
                let b = binned[i][f] as usize;
                hist_g[leaf * nb + b] += grad[i];
                hist_h[leaf * nb + b] += hess[i];
                leaf_g[leaf] += grad[i];
                leaf_h[leaf] += hess[i];
            }
            // Scan bins; total gain = Σ_leaf gain(leaf split at bin).
            let mut gl = vec![0.0; n_leaves];
            let mut hl = vec![0.0; n_leaves];
            for b in 0..nb - 1 {
                let mut total_gain = 0.0;
                let mut valid = false;
                for leaf in 0..n_leaves {
                    gl[leaf] += hist_g[leaf * nb + b];
                    hl[leaf] += hist_h[leaf * nb + b];
                    let (gr, hr) = (leaf_g[leaf] - gl[leaf], leaf_h[leaf] - hl[leaf]);
                    if hl[leaf] >= cfg.min_child_weight && hr >= cfg.min_child_weight {
                        total_gain += split_gain(gl[leaf], hl[leaf], gr, hr, cfg.lambda);
                        valid = true;
                    }
                }
                if valid && total_gain > cfg.gamma && best.is_none_or(|(bg, _, _)| total_gain > bg)
                {
                    best = Some((total_gain, f, b));
                }
            }
        }

        let Some((_, feature, bin)) = best else { break };
        let threshold = binning.threshold(feature, bin);
        conditions.push((feature, threshold));
        for (k, &i) in rows.iter().enumerate() {
            if (binned[i][feature] as usize) > bin {
                leaf_of[k] |= 1 << level;
            }
        }
    }

    // Leaf weights from accumulated statistics.
    let n_leaves = 1 << conditions.len();
    let mut leaf_g = vec![0.0; n_leaves];
    let mut leaf_h = vec![0.0; n_leaves];
    for (k, &i) in rows.iter().enumerate() {
        // leaf_of bits beyond the realized depth are zero by construction.
        leaf_g[leaf_of[k] & (n_leaves - 1)] += grad[i];
        leaf_h[leaf_of[k] & (n_leaves - 1)] += hess[i];
    }
    let leaf_weights = leaf_g
        .iter()
        .zip(&leaf_h)
        .map(|(g, h)| -g / (h + cfg.lambda) * cfg.learning_rate)
        .collect();

    ObliviousTree {
        conditions,
        leaf_weights,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(n: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = SplitMix::new(seed);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let label = i % 2;
            let c = if label == 0 { -1.0 } else { 1.0 };
            rows.push(vec![c + rng.normal() * 0.8, c + rng.normal() * 0.8]);
            y.push(label);
        }
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn snapshot_round_trip_per_variant_is_bit_identical() {
        use phishinghook_persist::{from_envelope, to_envelope};
        let (x, y) = blobs(60, 31);
        for variant in [
            BoostVariant::Exact,
            BoostVariant::Histogram,
            BoostVariant::Oblivious,
        ] {
            let mut model = GradientBoosting::new(GbdtConfig {
                variant,
                n_rounds: 12,
                ..GbdtConfig::default()
            });
            model.fit(&x, &y);
            let bytes = to_envelope("gbdt", &model);
            let back: GradientBoosting = from_envelope("gbdt", &bytes).expect("round-trips");
            assert_eq!(back.config(), model.config());
            let (a, b) = (model.predict_proba(&x), back.predict_proba(&x));
            assert_eq!(
                a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                b.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{variant:?}"
            );
        }
    }

    fn xor(n: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = SplitMix::new(seed);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let a = rng.unit() > 0.5;
            let b = rng.unit() > 0.5;
            rows.push(vec![
                if a { 1.0 } else { 0.0 } + rng.normal() * 0.1,
                if b { 1.0 } else { 0.0 } + rng.normal() * 0.1,
            ]);
            y.push(usize::from(a ^ b));
        }
        (Matrix::from_rows(&rows), y)
    }

    fn accuracy(model: &mut GradientBoosting, x: &Matrix, y: &[usize]) -> f64 {
        model.fit(x, y);
        let correct = model
            .predict(x)
            .iter()
            .zip(y)
            .filter(|(a, b)| a == b)
            .count();
        correct as f64 / y.len() as f64
    }

    #[test]
    fn exact_learns_blobs() {
        let (x, y) = blobs(200, 1);
        let mut m = GradientBoosting::with_variant(BoostVariant::Exact);
        assert!(accuracy(&mut m, &x, &y) > 0.9);
    }

    #[test]
    fn histogram_learns_blobs() {
        let (x, y) = blobs(200, 2);
        let mut m = GradientBoosting::with_variant(BoostVariant::Histogram);
        assert!(accuracy(&mut m, &x, &y) > 0.9);
    }

    #[test]
    fn oblivious_learns_blobs() {
        let (x, y) = blobs(200, 3);
        let mut m = GradientBoosting::with_variant(BoostVariant::Oblivious);
        assert!(accuracy(&mut m, &x, &y) > 0.9);
    }

    #[test]
    fn all_variants_learn_xor() {
        // XOR requires depth >= 2 interactions — a real tree-learner test.
        for (variant, seed) in [
            (BoostVariant::Exact, 10),
            (BoostVariant::Histogram, 11),
            (BoostVariant::Oblivious, 12),
        ] {
            let (x, y) = xor(300, seed);
            let mut m = GradientBoosting::with_variant(variant);
            let acc = accuracy(&mut m, &x, &y);
            assert!(acc > 0.95, "{variant:?} only reached {acc}");
        }
    }

    #[test]
    fn generalizes_to_held_out_data() {
        let (x, y) = xor(300, 20);
        let (xt, yt) = xor(150, 21);
        let mut m = GradientBoosting::with_variant(BoostVariant::Histogram);
        m.fit(&x, &y);
        let correct = m
            .predict(&xt)
            .iter()
            .zip(&yt)
            .filter(|(a, b)| a == b)
            .count();
        assert!(correct as f64 / yt.len() as f64 > 0.9);
    }

    #[test]
    fn deterministic_under_seed() {
        let (x, y) = blobs(100, 5);
        let mut a = GradientBoosting::with_variant(BoostVariant::Exact);
        let mut b = GradientBoosting::with_variant(BoostVariant::Exact);
        a.fit(&x, &y);
        b.fit(&x, &y);
        assert_eq!(a.predict_proba(&x), b.predict_proba(&x));
    }

    #[test]
    fn base_score_matches_class_prior() {
        // With zero rounds, predictions equal the class prior.
        let (x, _) = blobs(100, 6);
        let y: Vec<usize> = (0..100).map(|i| usize::from(i < 25)).collect();
        let mut m = GradientBoosting::new(GbdtConfig {
            n_rounds: 0,
            ..Default::default()
        });
        m.fit(&x, &y);
        for p in m.predict_proba(&x) {
            assert!((p - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn subsampling_still_learns() {
        let (x, y) = blobs(300, 7);
        let mut m = GradientBoosting::new(GbdtConfig {
            variant: BoostVariant::Histogram,
            subsample: 0.7,
            colsample: 0.5,
            ..Default::default()
        });
        assert!(accuracy(&mut m, &x, &y) > 0.85);
    }

    #[test]
    fn n_trees_equals_rounds() {
        let (x, y) = blobs(60, 8);
        let mut m = GradientBoosting::new(GbdtConfig {
            n_rounds: 25,
            ..Default::default()
        });
        m.fit(&x, &y);
        assert_eq!(m.n_trees(), 25);
    }

    #[test]
    fn binning_thresholds_are_consistent() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0], vec![4.0], vec![5.0]]);
        let b = Binning::fit(&x, 4);
        // Every training value must map into [0, n_bins).
        for v in [1.0, 2.0, 3.0, 4.0, 5.0] {
            assert!((b.bin(0, v) as usize) < b.n_bins(0));
        }
        // Monotone: larger values never get smaller bins.
        assert!(b.bin(0, 1.0) <= b.bin(0, 3.0));
        assert!(b.bin(0, 3.0) <= b.bin(0, 5.0));
        // Threshold semantics: value <= threshold(bin) iff bin(value) <= bin.
        for bin in 0..b.n_bins(0) - 1 {
            let t = b.threshold(0, bin);
            for v in [1.0, 2.0, 3.0, 4.0, 5.0] {
                assert_eq!(
                    v <= t,
                    (b.bin(0, v) as usize) <= bin,
                    "v={v} bin={bin} t={t}"
                );
            }
        }
    }

    #[test]
    fn probabilities_bounded() {
        let (x, y) = blobs(80, 9);
        for variant in [
            BoostVariant::Exact,
            BoostVariant::Histogram,
            BoostVariant::Oblivious,
        ] {
            let mut m = GradientBoosting::with_variant(variant);
            m.fit(&x, &y);
            for p in m.predict_proba(&x) {
                assert!((0.0..=1.0).contains(&p) && p.is_finite());
            }
        }
    }

    #[test]
    fn quantized_path_is_bit_identical_per_variant() {
        let (x, y) = blobs(150, 41);
        for variant in [
            BoostVariant::Exact,
            BoostVariant::Histogram,
            BoostVariant::Oblivious,
        ] {
            let mut m = GradientBoosting::new(GbdtConfig {
                variant,
                n_rounds: 20,
                ..GbdtConfig::default()
            });
            m.fit(&x, &y);
            // Evaluate on perturbed rows, including NaN and out-of-range.
            let mut rows: Vec<Vec<f64>> = x.iter_rows().map(<[f64]>::to_vec).collect();
            for (i, row) in rows.iter_mut().enumerate() {
                if i % 9 == 0 {
                    row[i % 2] = f64::NAN;
                }
                if i % 6 == 0 {
                    row[(i + 1) % 2] = 1e12;
                }
            }
            let xe = Matrix::from_rows(&rows);
            let f64_path = m.predict_proba(&xe);
            let quant = m.predict_proba_quantized(&xe).expect("within bin budget");
            assert_eq!(
                f64_path.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                quant.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{variant:?}"
            );
            assert!(m.quant_bins().expect("quantized") >= 2, "{variant:?}");
        }
    }

    #[test]
    fn restored_booster_rebuilds_the_quantized_mirror() {
        use phishinghook_persist::{from_envelope, to_envelope};
        let (x, y) = blobs(60, 42);
        for variant in [
            BoostVariant::Exact,
            BoostVariant::Histogram,
            BoostVariant::Oblivious,
        ] {
            let mut m = GradientBoosting::new(GbdtConfig {
                variant,
                n_rounds: 8,
                ..GbdtConfig::default()
            });
            m.fit(&x, &y);
            let bytes = to_envelope("gbdt", &m);
            let back: GradientBoosting = from_envelope("gbdt", &bytes).expect("round-trips");
            assert_eq!(back.quant_bins(), m.quant_bins(), "{variant:?}");
            assert_eq!(
                back.predict_proba_quantized(&x).expect("quantized"),
                m.predict_proba_quantized(&x).expect("quantized"),
                "{variant:?}"
            );
        }
    }
}
