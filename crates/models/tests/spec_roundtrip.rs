//! Property tests for the `DetectorSpec` grammar: every constructible spec
//! round-trips through its canonical string form
//! (`parse(display(spec)) == spec`), and arbitrary input strings never
//! panic the parser — they either parse or return a typed [`SpecError`].

use phishinghook_models::{DetectorSpec, FeatureSet, HscKind, HscSpec, SpecError, Vote, HSC_KINDS};
use proptest::prelude::*;

/// Maps an arbitrary draw to one of the seven families.
fn kind_from(raw: u64) -> HscKind {
    HSC_KINDS[(raw % 7) as usize]
}

/// Builds a valid spec from raw fuzz material: `shape` picks single vs.
/// ensemble, the vote rule and the feature set, `members` picks families
/// (and, for singles, whether a seed is present), `seed` is the explicit
/// seed value.
fn spec_from(shape: u8, members: &[u64], seed: u64) -> DetectorSpec {
    let with_seed = shape & 0x10 != 0;
    let quantize = shape & 0x08 == 0;
    let features = match (shape >> 5) % 3 {
        0 => FeatureSet::Histogram,
        1 => FeatureSet::Trace,
        _ => FeatureSet::HistogramTrace,
    };
    if shape & 1 == 0 {
        DetectorSpec::Hsc(HscSpec {
            kind: kind_from(members[0]),
            seed: with_seed.then_some(seed),
            features,
            quantize,
        })
    } else {
        let kinds: Vec<HscKind> = members.iter().map(|&m| kind_from(m)).collect();
        let vote = match (shape >> 1) % 3 {
            0 => Vote::Soft,
            1 => Vote::Hard,
            _ => Vote::Weighted(
                members
                    .iter()
                    .map(|&m| (m % 1000) as f64 / 8.0 + 0.125)
                    .collect(),
            ),
        };
        DetectorSpec::Ensemble {
            members: kinds,
            vote,
            seed: with_seed.then_some(seed),
            features,
            quantize,
        }
    }
}

proptest! {
    #[test]
    fn every_spec_round_trips_through_display(
        shape in proptest::arbitrary::any::<u8>(),
        members in proptest::collection::vec(proptest::arbitrary::any::<u64>(), 1..6),
        seed in proptest::arbitrary::any::<u64>(),
    ) {
        let spec = spec_from(shape, &members, seed);
        let rendered = spec.to_string();
        let reparsed: DetectorSpec = rendered
            .parse()
            .unwrap_or_else(|e| panic!("canonical `{rendered}` failed to parse: {e}"));
        prop_assert_eq!(&reparsed, &spec, "`{}` did not round-trip", rendered);
        // Display is canonical: rendering the reparse changes nothing.
        prop_assert_eq!(reparsed.to_string(), rendered);
    }

    #[test]
    fn arbitrary_strings_never_panic_the_parser(
        bytes in proptest::collection::vec(proptest::arbitrary::any::<u8>(), 0..48),
    ) {
        let text = String::from_utf8_lossy(&bytes);
        // Either outcome is fine; panicking or looping is not.
        let _ = text.parse::<DetectorSpec>();
    }

    #[test]
    fn near_miss_specs_return_typed_errors(
        family in proptest::arbitrary::any::<u64>(),
        junk in proptest::arbitrary::any::<u16>(),
    ) {
        // A valid family with a corrupted option segment must be a typed
        // error, never a panic or a silent success.
        let token = kind_from(family).token();
        let text = format!("{token}:opt{junk}=x");
        match text.parse::<DetectorSpec>() {
            Err(SpecError::UnknownOption(_)) => {}
            other => prop_assert!(false, "`{}` → {:?}", text, other),
        }
    }
}

#[test]
fn unknown_families_and_structural_errors_are_typed() {
    assert!(matches!(
        "definitely-not-a-model".parse::<DetectorSpec>(),
        Err(SpecError::UnknownFamily(_))
    ));
    assert!(matches!(
        "ensemble:".parse::<DetectorSpec>(),
        Err(SpecError::EmptyEnsemble)
    ));
    assert!(matches!(
        "ensemble:rf+lgbm:vote=weighted:weights=1,2,3".parse::<DetectorSpec>(),
        Err(SpecError::WeightCount {
            weights: 3,
            members: 2
        })
    ));
}
