//! The three vision models: ViT+R2D2, ECA+EfficientNet and ViT+Freq.
//!
//! Bytecode is rendered to RGB tensors (byte-colour R2D2 encoding, or the
//! disassembly-frequency encoding) and classified by either a Vision
//! Transformer or an ECA-attended EfficientNet-style CNN.
//!
//! Substitution note (DESIGN.md §2): the paper fine-tunes an ImageNet
//! pretrained ViT-B/16 at 224×224. Offline and CPU-bound, we train the same
//! *architectures* from scratch at reduced width/resolution; the encoding
//! and classification code paths are identical.

use crate::detector::{Category, Detector};
use phishinghook_features::{freq_image, r2d2_image, FreqLookup};
use phishinghook_ml::nn::layers::{Dense, LayerNorm, TransformerBlock};
use phishinghook_ml::nn::{Adam, Optimizer, Tensor};
use phishinghook_ml::SplitMix;

/// Image-encoding flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Encoding {
    /// Raw bytes as RGB (R2D2).
    R2d2,
    /// Disassembly-frequency pixels (requires a training-set lookup).
    Freq,
}

/// Backbone flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackboneKind {
    /// Vision-Transformer-style patch encoder.
    VitLite,
    /// ECA + EfficientNet-style CNN.
    EcaEffNet,
}

/// Hyperparameters shared by the vision models.
#[derive(Debug, Clone, PartialEq)]
pub struct VisionConfig {
    /// Square image side (paper: 224; reduced default for CPU training).
    pub image_size: usize,
    /// ViT patch side.
    pub patch: usize,
    /// Model width.
    pub dim: usize,
    /// Transformer depth / CNN stage count.
    pub depth: usize,
    /// Attention heads (ViT).
    pub heads: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Minibatch size.
    pub batch: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Parameter-init / shuffling seed.
    pub seed: u64,
}

impl Default for VisionConfig {
    fn default() -> Self {
        VisionConfig {
            image_size: 16,
            patch: 4,
            dim: 32,
            depth: 2,
            heads: 2,
            epochs: 6,
            batch: 16,
            lr: 5e-3,
            seed: 21,
        }
    }
}

/// ViT-style backbone: patch embedding + transformer encoder + mean pool.
struct VitLite {
    patch_embed: Dense,
    pos: Tensor,
    blocks: Vec<TransformerBlock>,
    ln: LayerNorm,
    head: Dense,
    cfg: VisionConfig,
}

impl VitLite {
    fn new(cfg: &VisionConfig, rng: &mut SplitMix) -> Self {
        let tokens = (cfg.image_size / cfg.patch).pow(2);
        let patch_dim = 3 * cfg.patch * cfg.patch;
        VitLite {
            patch_embed: Dense::new(rng, patch_dim, cfg.dim),
            pos: phishinghook_ml::nn::layers::normal_init(rng, &[tokens, cfg.dim], 0.02),
            blocks: (0..cfg.depth)
                .map(|_| TransformerBlock::new(rng, cfg.dim, cfg.heads, cfg.dim * 2))
                .collect(),
            ln: LayerNorm::new(cfg.dim),
            head: Dense::new(rng, cfg.dim, 2),
            cfg: cfg.clone(),
        }
    }

    fn params(&self) -> Vec<Tensor> {
        let mut p = self.patch_embed.params();
        p.push(self.pos.clone());
        for b in &self.blocks {
            p.extend(b.params());
        }
        p.extend(self.ln.params());
        p.extend(self.head.params());
        p
    }

    /// `[1, 2]` logits for one channel-first image buffer.
    fn forward(&self, image: &[f32]) -> Tensor {
        let s = self.cfg.image_size;
        let p = self.cfg.patch;
        let grid = s / p;
        let tokens = grid * grid;
        let patch_dim = 3 * p * p;
        // Patchify: token t gathers a p×p window from each channel.
        let mut data = vec![0.0f32; tokens * patch_dim];
        for ty in 0..grid {
            for tx in 0..grid {
                let t = ty * grid + tx;
                for c in 0..3 {
                    for py in 0..p {
                        for px in 0..p {
                            let src = c * s * s + (ty * p + py) * s + (tx * p + px);
                            let dst = t * patch_dim + c * p * p + py * p + px;
                            data[dst] = image[src];
                        }
                    }
                }
            }
        }
        let x = Tensor::new(data, &[tokens, patch_dim], false);
        let mut h = self.patch_embed.forward(&x).add(&self.pos);
        for b in &self.blocks {
            h = b.forward(&h, false);
        }
        let pooled = self.ln.forward(&h).mean_rows().reshape(&[1, self.cfg.dim]);
        self.head.forward(&pooled)
    }
}

/// ECA + EfficientNet-style backbone: conv stem, depthwise separable block,
/// efficient channel attention, global average pooling.
struct EcaEffNet {
    stem: Tensor, // [C1, 3, 3, 3]
    dw: Tensor,   // [C1, 3, 3]
    pw: Tensor,   // [C2, C1, 1, 1]
    eca: Dense,   // channel attention (the paper's "modified ECA")
    head: Dense,  // [C2 -> 2]
    image_size: usize,
}

impl EcaEffNet {
    fn new(cfg: &VisionConfig, rng: &mut SplitMix) -> Self {
        let (c1, c2) = (8, 16);
        let conv_init = |rng: &mut SplitMix, shape: &[usize]| {
            let fan_in: usize = shape[1..].iter().product();
            let sigma = (2.0 / fan_in as f64).sqrt();
            phishinghook_ml::nn::layers::normal_init(rng, shape, sigma)
        };
        EcaEffNet {
            stem: conv_init(rng, &[c1, 3, 3, 3]),
            dw: conv_init(rng, &[c1, 3, 3]),
            pw: conv_init(rng, &[c2, c1, 1, 1]),
            eca: Dense::new(rng, c2, c2),
            head: Dense::new(rng, c2, 2),
            image_size: cfg.image_size,
        }
    }

    fn params(&self) -> Vec<Tensor> {
        let mut p = vec![self.stem.clone(), self.dw.clone(), self.pw.clone()];
        p.extend(self.eca.params());
        p.extend(self.head.params());
        p
    }

    fn forward(&self, image: &[f32]) -> Tensor {
        let s = self.image_size;
        let x = Tensor::new(image.to_vec(), &[1, 3, s, s], false);
        let h = x.conv2d(&self.stem, 2, 1).relu(); // [1, C1, s/2, s/2]
        let h = h.depthwise_conv2d(&self.dw, 1, 1).relu();
        let h = h.conv2d(&self.pw, 1, 0).relu(); // [1, C2, s/2, s/2]
                                                 // ECA: channel descriptor → gate → channel-scaled features.
        let descriptor = h.global_avg_pool(); // [1, C2]
        let gate = self.eca.forward(&descriptor).sigmoid();
        let attended = h.scale_channels(&gate);
        let pooled = attended.global_avg_pool(); // [1, C2]
        self.head.forward(&pooled)
    }
}

enum Backbone {
    Vit(VitLite),
    Eff(EcaEffNet),
}

impl Backbone {
    fn forward(&self, image: &[f32]) -> Tensor {
        match self {
            Backbone::Vit(m) => m.forward(image),
            Backbone::Eff(m) => m.forward(image),
        }
    }

    fn params(&self) -> Vec<Tensor> {
        match self {
            Backbone::Vit(m) => m.params(),
            Backbone::Eff(m) => m.params(),
        }
    }
}

/// A vision-model detector (encoding + backbone + training loop).
pub struct VisionDetector {
    name: &'static str,
    encoding: Encoding,
    backbone_kind: BackboneKind,
    config: VisionConfig,
    backbone: Option<Backbone>,
    freq_lookup: Option<FreqLookup>,
}

impl std::fmt::Debug for VisionDetector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "VisionDetector({})", self.name)
    }
}

impl VisionDetector {
    /// ViT over R2D2 byte images.
    pub fn vit_r2d2(config: VisionConfig) -> Self {
        VisionDetector {
            name: "ViT+R2D2",
            encoding: Encoding::R2d2,
            backbone_kind: BackboneKind::VitLite,
            config,
            backbone: None,
            freq_lookup: None,
        }
    }

    /// ECA+EfficientNet over R2D2 byte images.
    pub fn eca_efficientnet(config: VisionConfig) -> Self {
        VisionDetector {
            name: "ECA+EfficientNet",
            encoding: Encoding::R2d2,
            backbone_kind: BackboneKind::EcaEffNet,
            config,
            backbone: None,
            freq_lookup: None,
        }
    }

    /// ViT over frequency-encoded disassembly images.
    pub fn vit_freq(config: VisionConfig) -> Self {
        VisionDetector {
            name: "ViT+Freq",
            encoding: Encoding::Freq,
            backbone_kind: BackboneKind::VitLite,
            config,
            backbone: None,
            freq_lookup: None,
        }
    }

    fn encode(&self, code: &[u8]) -> Vec<f32> {
        match self.encoding {
            Encoding::R2d2 => r2d2_image(code, self.config.image_size),
            Encoding::Freq => freq_image(
                code,
                self.freq_lookup.as_ref().expect("freq lookup fitted"),
                self.config.image_size,
            ),
        }
    }
}

impl Detector for VisionDetector {
    fn name(&self) -> &str {
        self.name
    }

    fn category(&self) -> Category {
        Category::Vision
    }

    fn fit(&mut self, codes: &[&[u8]], labels: &[usize]) {
        assert_eq!(codes.len(), labels.len(), "one label per bytecode");
        assert!(!codes.is_empty(), "cannot fit on an empty dataset");
        let mut rng = SplitMix::new(self.config.seed);
        if self.encoding == Encoding::Freq {
            self.freq_lookup = Some(FreqLookup::fit(codes));
        }
        let backbone = match self.backbone_kind {
            BackboneKind::VitLite => Backbone::Vit(VitLite::new(&self.config, &mut rng)),
            BackboneKind::EcaEffNet => Backbone::Eff(EcaEffNet::new(&self.config, &mut rng)),
        };
        let images: Vec<Vec<f32>> = {
            // encode() borrows freq_lookup, set above.
            let this = &*self;
            codes
                .iter()
                .map(|c| match this.encoding {
                    Encoding::R2d2 => r2d2_image(c, this.config.image_size),
                    Encoding::Freq => freq_image(
                        c,
                        this.freq_lookup.as_ref().expect("freq lookup fitted"),
                        this.config.image_size,
                    ),
                })
                .collect()
        };

        let mut opt = Adam::new(backbone.params(), self.config.lr);
        let mut order: Vec<usize> = (0..codes.len()).collect();
        for _epoch in 0..self.config.epochs {
            rng.shuffle(&mut order);
            for chunk in order.chunks(self.config.batch) {
                let logits: Vec<Tensor> = chunk
                    .iter()
                    .map(|&i| backbone.forward(&images[i]))
                    .collect();
                let batch_labels: Vec<usize> = chunk.iter().map(|&i| labels[i]).collect();
                let loss = Tensor::concat_rows(&logits).cross_entropy_logits(&batch_labels);
                opt.zero_grad();
                loss.backward();
                opt.step();
            }
        }
        self.backbone = Some(backbone);
    }

    fn predict(&self, codes: &[&[u8]]) -> Vec<usize> {
        let backbone = self.backbone.as_ref().expect("predict before fit");
        codes
            .iter()
            .map(|c| {
                let logits = backbone.forward(&self.encode(c)).to_vec();
                usize::from(logits[1] > logits[0])
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phishinghook_data::{Corpus, CorpusConfig};

    fn fast_config() -> VisionConfig {
        VisionConfig {
            epochs: 20,
            lr: 3e-3,
            ..VisionConfig::default()
        }
    }

    fn cnn_config() -> VisionConfig {
        VisionConfig {
            epochs: 20,
            lr: 1e-2,
            ..VisionConfig::default()
        }
    }

    fn corpus_split() -> (Vec<Vec<u8>>, Vec<usize>) {
        corpus_split_sized(160)
    }

    fn corpus_split_sized(n_contracts: usize) -> (Vec<Vec<u8>>, Vec<usize>) {
        let corpus = Corpus::generate(&CorpusConfig {
            n_contracts,
            seed: 5,
            ..Default::default()
        });
        (
            corpus.records.iter().map(|r| r.bytecode.clone()).collect(),
            corpus.records.iter().map(|r| r.label.as_index()).collect(),
        )
    }

    /// 3:1 train/test split at `n_contracts` scale. 160 (120 train / 40
    /// test) is the smallest fixture where ViT+R2D2 and ECA+EfficientNet
    /// clear the beats-chance bar with margin; ViT+Freq (the weakest model)
    /// needs the full 240.
    fn check_beats_chance_at(mut det: VisionDetector, n_contracts: usize) {
        let (codes, labels) = corpus_split_sized(n_contracts);
        let refs: Vec<&[u8]> = codes.iter().map(Vec::as_slice).collect();
        let split = 3 * n_contracts / 4;
        let (train_x, test_x) = refs.split_at(split);
        let (train_y, test_y) = labels.split_at(split);
        det.fit(train_x, train_y);
        let preds = det.predict(test_x);
        let correct = preds.iter().zip(test_y).filter(|(a, b)| a == b).count();
        let acc = correct as f64 / test_y.len() as f64;
        assert!(acc > 0.55, "{} accuracy {acc}", det.name());
    }

    #[test]
    fn vit_r2d2_beats_chance() {
        check_beats_chance_at(VisionDetector::vit_r2d2(fast_config()), 160);
    }

    #[test]
    fn eca_efficientnet_beats_chance() {
        check_beats_chance_at(VisionDetector::eca_efficientnet(cnn_config()), 160);
    }

    #[test]
    fn vit_freq_beats_chance() {
        check_beats_chance_at(VisionDetector::vit_freq(fast_config()), 240);
    }

    #[test]
    #[ignore = "debug only"]
    fn effnet_debug() {
        let (codes, labels) = corpus_split();
        let refs: Vec<&[u8]> = codes.iter().map(Vec::as_slice).collect();
        let (train_x, test_x) = refs.split_at(120);
        let (train_y, test_y) = labels.split_at(120);
        for (epochs, lr) in [(12usize, 3e-3f32), (25, 5e-3), (25, 1e-2)] {
            let mut det = VisionDetector::eca_efficientnet(VisionConfig {
                epochs,
                lr,
                ..Default::default()
            });
            det.fit(train_x, train_y);
            let tr = det
                .predict(train_x)
                .iter()
                .zip(train_y)
                .filter(|(a, b)| a == b)
                .count() as f64
                / train_y.len() as f64;
            let te = det
                .predict(test_x)
                .iter()
                .zip(test_y)
                .filter(|(a, b)| a == b)
                .count() as f64
                / test_y.len() as f64;
            eprintln!("epochs={epochs} lr={lr}: train={tr:.3} test={te:.3}");
        }
    }

    #[test]
    #[ignore = "debug only"]
    fn vit_debug() {
        let (codes, labels) = corpus_split();
        let refs: Vec<&[u8]> = codes.iter().map(Vec::as_slice).collect();
        let (train_x, test_x) = refs.split_at(120);
        let (train_y, test_y) = labels.split_at(120);
        for (epochs, lr) in [
            (20usize, 3e-3f32),
            (20, 6e-3),
            (30, 6e-3),
            (30, 1e-2),
            (40, 3e-3),
        ] {
            let mut det = VisionDetector::vit_r2d2(VisionConfig {
                epochs,
                lr,
                ..Default::default()
            });
            det.fit(train_x, train_y);
            let tr = det
                .predict(train_x)
                .iter()
                .zip(train_y)
                .filter(|(a, b)| a == b)
                .count() as f64
                / train_y.len() as f64;
            let te = det
                .predict(test_x)
                .iter()
                .zip(test_y)
                .filter(|(a, b)| a == b)
                .count() as f64
                / test_y.len() as f64;
            eprintln!("epochs={epochs} lr={lr}: train={tr:.3} test={te:.3}");
        }
    }

    #[test]
    fn categories_and_names() {
        let det = VisionDetector::vit_r2d2(fast_config());
        assert_eq!(det.category(), Category::Vision);
        assert_eq!(det.name(), "ViT+R2D2");
    }
}
