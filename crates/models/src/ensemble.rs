//! Voting ensembles over histogram similarity classifiers.
//!
//! The paper's headline observation is that the opcode-histogram family
//! *jointly* covers the phishing-contract space; [`EnsembleDetector`] makes
//! that scenario deployable: it fits N member HSCs on one shared histogram
//! extraction, combines their class-1 probabilities under a [`Vote`] rule,
//! and snapshots/restores through the same [`Snapshot`]/[`Restore`]
//! contract as a single detector — the `"hsc-ensemble"` envelope kind nests
//! one complete member envelope per model, so every member snapshot is
//! independently CRC-guarded and version-checked.
//!
//! Ensembles are built most conveniently from a spec string:
//!
//! ```
//! use phishinghook_models::{Detector, DetectorRegistry};
//!
//! let mut det = DetectorRegistry::global()
//!     .build_str("ensemble:rf+lgbm:vote=soft", 7)
//!     .expect("valid spec");
//! let train: Vec<&[u8]> = vec![&[0x60, 0x80, 0x52], &[0x00, 0x01]];
//! det.fit(&train, &[1, 0]);
//! assert_eq!(det.predict(&train).len(), 2);
//! ```

use crate::detector::{Category, Detector, FoldFeatures};
use crate::hsc::HscDetector;
use crate::spec::{FeatureSet, HscKind, SpecError, Vote};
use phishinghook_features::HistogramExtractor;
use phishinghook_ml::Matrix;
use phishinghook_persist::{PersistError, Reader, Restore, Snapshot, Writer};

/// Envelope kind tag of [`EnsembleDetector`] snapshots. The payload nests
/// one full member envelope (kind [`crate::hsc::SNAPSHOT_KIND`]) per model.
pub const SNAPSHOT_KIND: &str = "hsc-ensemble";

/// A voting ensemble of histogram similarity classifiers.
///
/// All members consume the identical opcode-histogram features, so fitting
/// extracts once and shares the vocabulary; scoring transforms a batch once
/// and runs every member on the same matrix.
#[derive(Debug)]
pub struct EnsembleDetector {
    /// Canonical spec string, e.g. `"ensemble:rf+lgbm:vote=soft"` — this is
    /// the ensemble's [`Detector::name`].
    name: String,
    members: Vec<HscDetector>,
    vote: Vote,
}

/// Maps a member's Table II display name back to its spec token (members
/// only know their display name).
fn member_token(member: &HscDetector) -> &'static str {
    crate::spec::HSC_KINDS
        .into_iter()
        .find(|k| k.display_name() == member.name())
        .map(HscKind::token)
        .expect("HSC members carry Table II names")
}

fn canonical_name(members: &[HscDetector], vote: &Vote) -> String {
    use std::fmt::Write;
    let mut name = String::from("ensemble:");
    for (i, member) in members.iter().enumerate() {
        if i > 0 {
            name.push('+');
        }
        name.push_str(member_token(member));
    }
    match vote {
        Vote::Soft => name.push_str(":vote=soft"),
        Vote::Hard => name.push_str(":vote=hard"),
        Vote::Weighted(weights) => {
            name.push_str(":vote=weighted:weights=");
            for (i, w) in weights.iter().enumerate() {
                if i > 0 {
                    name.push(',');
                }
                write!(name, "{w}").expect("write to String");
            }
        }
    }
    // Same canonical-order rule as `DetectorSpec`'s Display: the default
    // feature set is omitted, anything else renders after the vote.
    let features = members[0].features();
    if features != FeatureSet::default() {
        write!(name, ":features={}", features.token()).expect("write to String");
    }
    name
}

impl EnsembleDetector {
    /// Wraps member detectors under a voting rule.
    ///
    /// # Errors
    /// [`SpecError::EmptyEnsemble`] with no members;
    /// [`SpecError::WeightCount`] when a weighted vote's weight count does
    /// not match the member count; [`SpecError::MixedFeatureSets`] when
    /// members disagree on their feature channels (they all score one
    /// shared feature matrix).
    pub fn new(members: Vec<HscDetector>, vote: Vote) -> Result<Self, SpecError> {
        if members.is_empty() {
            return Err(SpecError::EmptyEnsemble);
        }
        if let Vote::Weighted(weights) = &vote {
            if weights.len() != members.len() {
                return Err(SpecError::WeightCount {
                    weights: weights.len(),
                    members: members.len(),
                });
            }
        }
        if members
            .iter()
            .any(|m| m.features() != members[0].features())
        {
            return Err(SpecError::MixedFeatureSets);
        }
        Ok(EnsembleDetector {
            name: canonical_name(&members, &vote),
            members,
            vote,
        })
    }

    /// The member detectors, in scoring order.
    pub fn members(&self) -> &[HscDetector] {
        &self.members
    }

    /// The voting rule.
    pub fn vote(&self) -> &Vote {
        &self.vote
    }

    /// `true` once every member is fitted.
    pub fn is_fitted(&self) -> bool {
        self.members.iter().all(HscDetector::is_fitted)
    }

    /// The shared fitted histogram extractor, when the feature set carries
    /// that channel (every member holds an identical one).
    pub fn extractor(&self) -> Option<&HistogramExtractor> {
        self.members.first().and_then(HscDetector::extractor)
    }

    /// The feature channels this ensemble's members train and score on
    /// ([`EnsembleDetector::new`] guarantees they agree).
    pub fn features(&self) -> FeatureSet {
        self.members[0].features()
    }

    /// Enables or disables the quantized scoring path on every member
    /// (builder-style — the registry applies a spec's `quantize=` option
    /// here). Execution config only: fitted state is untouched, and the
    /// canonical name does not change.
    pub fn with_quantize(mut self, quantize: bool) -> Self {
        self.members = self
            .members
            .into_iter()
            .map(|m| m.with_quantize(quantize))
            .collect();
        self
    }

    /// Whether members score through their quantized mirrors
    /// ([`EnsembleDetector::with_quantize`] sets all members together).
    pub fn quantize(&self) -> bool {
        self.members[0].quantize()
    }

    /// Widest per-feature bin count across the members' quantized mirrors;
    /// `None` when no member has one (non-tree models, or before fit).
    pub fn quant_bins(&self) -> Option<usize> {
        self.members
            .iter()
            .filter_map(HscDetector::quant_bins)
            .max()
    }

    /// Width of the shared feature rows every member scores.
    ///
    /// # Panics
    /// Panics when called before [`Detector::fit`].
    pub fn n_features(&self) -> usize {
        self.members[0].n_features()
    }

    /// Streams the shared feature rows of `codes` into `out`
    /// (`codes.len() × n_features()`) — extraction happens once regardless
    /// of member count.
    ///
    /// # Panics
    /// Panics before fit, or on an `out` shape mismatch.
    pub fn featurize_into(&self, codes: &[&[u8]], out: &mut Matrix) {
        self.members[0].featurize_into(codes, out);
    }

    /// Combines per-member class-1 probabilities for one row position.
    fn combine(&self, member_probs: &[Vec<f64>], row: usize) -> f64 {
        match &self.vote {
            Vote::Soft => {
                let sum: f64 = member_probs.iter().map(|p| p[row]).sum();
                sum / member_probs.len() as f64
            }
            Vote::Hard => {
                let votes = member_probs.iter().filter(|p| p[row] >= 0.5).count();
                votes as f64 / member_probs.len() as f64
            }
            Vote::Weighted(weights) => {
                let total: f64 = weights.iter().sum();
                let sum: f64 = member_probs
                    .iter()
                    .zip(weights)
                    .map(|(p, w)| w * p[row])
                    .sum();
                sum / total
            }
        }
    }

    /// Ensemble class-1 probability per row of an already-extracted feature
    /// matrix (rows from this ensemble's shared [`EnsembleDetector::extractor`]).
    pub fn predict_proba(&self, x: &Matrix) -> Vec<f64> {
        self.combine_probas(&self.member_probas(x))
    }

    /// Combines already-computed per-member probabilities (one vector per
    /// member, as produced by [`EnsembleDetector::member_probas`]) under
    /// this ensemble's voting rule — callers that need both the member and
    /// the combined scores run inference once and derive the vote from it.
    pub fn combine_probas(&self, member_probs: &[Vec<f64>]) -> Vec<f64> {
        let rows = member_probs.first().map_or(0, Vec::len);
        (0..rows)
            .map(|row| self.combine(member_probs, row))
            .collect()
    }

    /// Per-member class-1 probabilities on an already-extracted matrix, in
    /// member order — the observable the wire protocol's `per_model` field
    /// carries.
    pub fn member_probas(&self, x: &Matrix) -> Vec<Vec<f64>> {
        self.members.iter().map(|m| m.predict_proba(x)).collect()
    }

    /// Serializes the ensemble into a versioned snapshot envelope.
    pub fn to_snapshot_bytes(&self) -> Vec<u8> {
        phishinghook_persist::to_envelope(SNAPSHOT_KIND, self)
    }

    /// Restores an ensemble from snapshot bytes.
    ///
    /// # Errors
    /// Any [`PersistError`]: outer-envelope problems, a nested member
    /// envelope of the wrong kind, member-count mismatches against the
    /// voting rule, or members with inconsistent vocabularies.
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<Self, PersistError> {
        phishinghook_persist::from_envelope(SNAPSHOT_KIND, bytes)
    }

    /// Saves the ensemble snapshot to a file.
    ///
    /// # Errors
    /// [`PersistError::Io`] on filesystem failure.
    pub fn save_snapshot(&self, path: impl AsRef<std::path::Path>) -> Result<(), PersistError> {
        phishinghook_persist::save_file(path, SNAPSHOT_KIND, self)
    }

    /// Loads an ensemble snapshot from a file.
    ///
    /// # Errors
    /// [`PersistError::Io`] when the file cannot be read, otherwise any
    /// decode error from [`EnsembleDetector::from_snapshot_bytes`].
    pub fn load_snapshot(path: impl AsRef<std::path::Path>) -> Result<Self, PersistError> {
        phishinghook_persist::load_file(path, SNAPSHOT_KIND)
    }
}

impl Detector for EnsembleDetector {
    fn name(&self) -> &str {
        &self.name
    }

    fn category(&self) -> Category {
        Category::Histogram
    }

    fn fit(&mut self, codes: &[&[u8]], labels: &[usize]) {
        assert_eq!(codes.len(), labels.len(), "one label per bytecode");
        // One shared extraction for all members: an empty test split makes
        // FoldFeatures a plain shared-training-features store.
        let fold = FoldFeatures::new(codes, &[]);
        for member in &mut self.members {
            member.fit_fold(&fold, labels);
        }
    }

    fn predict(&self, codes: &[&[u8]]) -> Vec<usize> {
        assert!(self.is_fitted(), "predict before fit");
        let x = self.members[0].featurize(codes);
        self.predict_proba(&x)
            .into_iter()
            .map(|p| usize::from(p >= 0.5))
            .collect()
    }

    fn fit_fold(&mut self, fold: &FoldFeatures<'_>, labels: &[usize]) {
        for member in &mut self.members {
            member.fit_fold(fold, labels);
        }
    }

    fn predict_fold(&self, fold: &FoldFeatures<'_>) -> Vec<usize> {
        let x = self.members[0].fold_test_matrix(fold);
        self.predict_proba(&x)
            .into_iter()
            .map(|p| usize::from(p >= 0.5))
            .collect()
    }
}

// --- Persistence -----------------------------------------------------------

impl Snapshot for Vote {
    fn snapshot(&self, w: &mut Writer) {
        match self {
            Vote::Soft => w.put_u8(0),
            Vote::Hard => w.put_u8(1),
            Vote::Weighted(weights) => {
                w.put_u8(2);
                weights.snapshot(w);
            }
        }
    }
}

impl Restore for Vote {
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        match r.take_u8()? {
            0 => Ok(Vote::Soft),
            1 => Ok(Vote::Hard),
            2 => Ok(Vote::Weighted(Vec::restore(r)?)),
            tag => Err(PersistError::Malformed(format!(
                "unknown vote tag {tag:#04x}"
            ))),
        }
    }
}

impl Snapshot for EnsembleDetector {
    fn snapshot(&self, w: &mut Writer) {
        self.vote.snapshot(w);
        // One complete, independently-checksummed envelope per member. The
        // canonical name is not stored: it is derived state, recomputed on
        // restore so it can never disagree with the members.
        w.put_usize(self.members.len());
        for member in &self.members {
            w.put_bytes(&member.to_snapshot_bytes());
        }
    }
}

impl Restore for EnsembleDetector {
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let vote = Vote::restore(r)?;
        let n = r.take_len(1)?;
        if n == 0 {
            return Err(PersistError::Malformed(
                "ensemble snapshot has zero members".to_owned(),
            ));
        }
        if let Vote::Weighted(weights) = &vote {
            if weights.len() != n {
                return Err(PersistError::Malformed(format!(
                    "ensemble snapshot carries {} weight(s) for {n} member(s)",
                    weights.len()
                )));
            }
            if !weights.iter().all(|w| w.is_finite() && *w >= 0.0)
                || weights.iter().sum::<f64>() <= 0.0
            {
                return Err(PersistError::Malformed(
                    "ensemble snapshot weights must be finite, non-negative and not all zero"
                        .to_owned(),
                ));
            }
        }
        let mut members = Vec::with_capacity(n);
        for _ in 0..n {
            // A nested envelope of any other kind fails here with the same
            // typed WrongKind error a top-level mismatch would produce.
            let member = HscDetector::from_snapshot_bytes(r.take_bytes()?)?;
            members.push(member);
        }
        // Members must agree on their feature extraction: scoring shares one
        // extracted matrix across all of them, so a vocabulary, budget or
        // channel mismatch would silently permute features at request time.
        let first_hist = members[0].extractor();
        let first_trace = members[0].trace_extractor();
        for member in &members[1..] {
            if member.extractor() != first_hist {
                return Err(PersistError::Malformed(format!(
                    "ensemble member `{}` disagrees with `{}` on the histogram vocabulary",
                    member.name(),
                    members[0].name(),
                )));
            }
            if member.trace_extractor() != first_trace {
                return Err(PersistError::Malformed(format!(
                    "ensemble member `{}` disagrees with `{}` on the trace extractor",
                    member.name(),
                    members[0].name(),
                )));
            }
        }
        EnsembleDetector::new(members, vote)
            .map_err(|e| PersistError::Malformed(format!("invalid ensemble structure: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DetectorRegistry;
    use crate::AnyDetector;
    use phishinghook_data::{Corpus, CorpusConfig};
    use std::sync::OnceLock;

    fn corpus() -> &'static (Vec<Vec<u8>>, Vec<usize>) {
        static CORPUS: OnceLock<(Vec<Vec<u8>>, Vec<usize>)> = OnceLock::new();
        CORPUS.get_or_init(|| {
            let corpus = Corpus::generate(&CorpusConfig {
                n_contracts: 120,
                seed: 13,
                ..Default::default()
            });
            let codes = corpus.records.iter().map(|r| r.bytecode.clone()).collect();
            let labels = corpus.records.iter().map(|r| r.label.as_index()).collect();
            (codes, labels)
        })
    }

    /// Wraps hand-assembled payload bytes in a valid envelope, for tests
    /// that corrupt the payload *structure* rather than its framing.
    fn envelope_of(payload: Vec<u8>) -> Vec<u8> {
        struct Raw(Vec<u8>);
        impl Snapshot for Raw {
            fn snapshot(&self, w: &mut Writer) {
                w.put_raw(&self.0);
            }
        }
        phishinghook_persist::to_envelope(SNAPSHOT_KIND, &Raw(payload))
    }

    fn fitted(spec: &str) -> EnsembleDetector {
        let (codes, labels) = corpus();
        let refs: Vec<&[u8]> = codes.iter().map(Vec::as_slice).collect();
        let built = DetectorRegistry::global()
            .build_str(spec, 7)
            .expect("valid spec");
        let AnyDetector::Ensemble(mut det) = built else {
            panic!("{spec} should build an ensemble")
        };
        det.fit(&refs[..80], &labels[..80]);
        det
    }

    #[test]
    fn structural_validation() {
        assert_eq!(
            EnsembleDetector::new(vec![], Vote::Soft).unwrap_err(),
            SpecError::EmptyEnsemble
        );
        let members = vec![HscDetector::random_forest(1), HscDetector::knn()];
        assert_eq!(
            EnsembleDetector::new(members, Vote::Weighted(vec![1.0])).unwrap_err(),
            SpecError::WeightCount {
                weights: 1,
                members: 2
            }
        );
    }

    #[test]
    fn name_is_the_canonical_spec() {
        let det = fitted("ensemble:rf+lgbm:vote=soft");
        assert_eq!(det.name(), "ensemble:rf+lgbm:vote=soft");
        assert_eq!(det.category(), Category::Histogram);
        assert_eq!(det.members().len(), 2);
        // The name itself parses back to a spec that rebuilds this shape.
        let spec: crate::DetectorSpec = det.name().parse().expect("name is a valid spec");
        assert_eq!(spec.n_models(), 2);
    }

    #[test]
    fn soft_vote_is_the_member_mean() {
        let det = fitted("ensemble:rf+lgbm:vote=soft");
        let (codes, _) = corpus();
        let probes: Vec<&[u8]> = codes[80..].iter().map(Vec::as_slice).collect();
        let x = det.extractor().unwrap().transform(&probes);
        let combined = det.predict_proba(&x);
        let members = det.member_probas(&x);
        for (row, &p) in combined.iter().enumerate() {
            let mean = (members[0][row] + members[1][row]) / 2.0;
            assert_eq!(p.to_bits(), mean.to_bits(), "row {row}");
        }
    }

    #[test]
    fn hard_vote_is_the_vote_fraction() {
        let det = fitted("ensemble:rf+lgbm+catboost:vote=hard");
        let (codes, _) = corpus();
        let probes: Vec<&[u8]> = codes[80..].iter().map(Vec::as_slice).collect();
        let x = det.extractor().unwrap().transform(&probes);
        let combined = det.predict_proba(&x);
        let members = det.member_probas(&x);
        for (row, &p) in combined.iter().enumerate() {
            let votes = members.iter().filter(|m| m[row] >= 0.5).count();
            assert_eq!(p, votes as f64 / 3.0, "row {row}");
        }
    }

    #[test]
    fn weighted_vote_honours_weights() {
        let det = fitted("ensemble:rf+lgbm:vote=weighted:weights=3,1");
        let (codes, _) = corpus();
        let probes: Vec<&[u8]> = codes[80..].iter().map(Vec::as_slice).collect();
        let x = det.extractor().unwrap().transform(&probes);
        let combined = det.predict_proba(&x);
        let members = det.member_probas(&x);
        for (row, &p) in combined.iter().enumerate() {
            let expect = (3.0 * members[0][row] + members[1][row]) / 4.0;
            assert_eq!(p.to_bits(), expect.to_bits(), "row {row}");
        }
    }

    #[test]
    fn members_share_one_extractor() {
        let det = fitted("ensemble:rf+lgbm+catboost:vote=soft");
        let first = det.members()[0].extractor().unwrap();
        for member in &det.members()[1..] {
            assert_eq!(member.extractor().unwrap(), first);
        }
        assert!(det.is_fitted());
    }

    #[test]
    fn ensemble_beats_chance() {
        let det = fitted("ensemble:rf+lgbm+catboost:vote=soft");
        let (codes, labels) = corpus();
        let probes: Vec<&[u8]> = codes[80..].iter().map(Vec::as_slice).collect();
        let preds = det.predict(&probes);
        let correct = preds
            .iter()
            .zip(&labels[80..])
            .filter(|(a, b)| a == b)
            .count();
        let acc = correct as f64 / preds.len() as f64;
        assert!(acc > 0.6, "ensemble accuracy {acc}");
    }

    #[test]
    fn snapshot_round_trips() {
        let det = fitted("ensemble:rf+lgbm:vote=weighted:weights=2,1");
        let bytes = det.to_snapshot_bytes();
        // Deterministic bytes.
        assert_eq!(bytes, det.to_snapshot_bytes());
        let back = EnsembleDetector::from_snapshot_bytes(&bytes).expect("restores");
        assert_eq!(back.name(), det.name());
        assert_eq!(back.vote(), det.vote());

        let (codes, _) = corpus();
        let probes: Vec<&[u8]> = codes[80..].iter().map(Vec::as_slice).collect();
        let x = det.extractor().unwrap().transform(&probes);
        let a: Vec<u64> = det.predict_proba(&x).iter().map(|p| p.to_bits()).collect();
        let b: Vec<u64> = back.predict_proba(&x).iter().map(|p| p.to_bits()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn quantized_snapshot_round_trips_with_identical_verdicts() {
        // The quantized mirror is derived state: it is rebuilt on restore
        // (never persisted), the envelope bytes are identical whether the
        // toggle is on or off, and a restored ensemble scores verdicts
        // identical to the original through the quantized path.
        let det = fitted("ensemble:rf+lgbm+catboost:vote=soft");
        assert!(det.quantize());
        assert!(det.quant_bins().is_some());

        let bytes = det.to_snapshot_bytes();
        // `quantize` never enters the envelope: toggling it changes nothing,
        // so snapshots written before the quantized engine existed restore
        // exactly as they always did (no format bump).
        let toggled = fitted("ensemble:rf+lgbm+catboost:vote=soft").with_quantize(false);
        assert_eq!(bytes, toggled.to_snapshot_bytes());

        let back = EnsembleDetector::from_snapshot_bytes(&bytes).expect("restores");
        // Restore lands on the default execution config with the mirror
        // rebuilt from the restored trees.
        assert!(back.quantize());
        assert_eq!(back.quant_bins(), det.quant_bins());

        let (codes, _) = corpus();
        let probes: Vec<&[u8]> = codes[80..].iter().map(Vec::as_slice).collect();
        let x = det.extractor().unwrap().transform(&probes);
        let a: Vec<u64> = det.predict_proba(&x).iter().map(|p| p.to_bits()).collect();
        let b: Vec<u64> = back.predict_proba(&x).iter().map(|p| p.to_bits()).collect();
        assert_eq!(a, b);
        // And the quantized path agrees with the f64 reference arena on
        // every verdict (here: bit-identical probabilities).
        let reference: Vec<u64> = toggled
            .predict_proba(&x)
            .iter()
            .map(|p| p.to_bits())
            .collect();
        assert_eq!(a, reference);
    }

    #[test]
    fn mismatched_member_snapshots_are_rejected() {
        // Hand-assemble a payload whose weight count disagrees with its
        // member count: must be a typed Malformed error, not a panic.
        let det = fitted("ensemble:rf+lgbm:vote=soft");
        let mut w = Writer::new();
        Vote::Weighted(vec![1.0]).snapshot(&mut w); // 1 weight…
        w.put_usize(2); // …but 2 members
        for member in det.members() {
            w.put_bytes(&member.to_snapshot_bytes());
        }
        let bytes = envelope_of(w.into_bytes());
        let err = EnsembleDetector::from_snapshot_bytes(&bytes).unwrap_err();
        assert!(matches!(err, PersistError::Malformed(_)), "{err:?}");
    }

    #[test]
    fn wrong_member_kind_is_rejected() {
        // Nest an *ensemble* envelope where a member (hsc-detector) envelope
        // belongs: the nested kind check must fail with WrongKind.
        let det = fitted("ensemble:rf+lgbm:vote=soft");
        let mut w = Writer::new();
        Vote::Soft.snapshot(&mut w);
        w.put_usize(1);
        w.put_bytes(&det.to_snapshot_bytes());
        let bytes = envelope_of(w.into_bytes());
        match EnsembleDetector::from_snapshot_bytes(&bytes).unwrap_err() {
            PersistError::WrongKind { expected, found } => {
                assert_eq!(expected, crate::hsc::SNAPSHOT_KIND);
                assert_eq!(found, SNAPSHOT_KIND);
            }
            other => panic!("expected WrongKind, got {other:?}"),
        }
    }

    #[test]
    fn mixed_member_feature_sets_are_rejected() {
        let members = vec![
            HscDetector::random_forest(1).with_features(FeatureSet::HistogramTrace),
            HscDetector::knn(),
        ];
        assert_eq!(
            EnsembleDetector::new(members, Vote::Soft).unwrap_err(),
            SpecError::MixedFeatureSets
        );
    }

    #[test]
    fn feature_set_rides_the_canonical_name_and_round_trips() {
        let det = fitted("ensemble:rf+lgbm:vote=soft:features=hist+trace");
        assert_eq!(det.name(), "ensemble:rf+lgbm:vote=soft:features=hist+trace");
        assert_eq!(det.features(), FeatureSet::HistogramTrace);
        // The name parses back to a spec that rebuilds the same shape.
        let spec: crate::DetectorSpec = det.name().parse().expect("name is a valid spec");
        assert_eq!(spec.to_string(), det.name());

        // Shared featurization scores identically through the snapshot.
        let (codes, labels) = corpus();
        let probes: Vec<&[u8]> = codes[80..].iter().map(Vec::as_slice).collect();
        let back =
            EnsembleDetector::from_snapshot_bytes(&det.to_snapshot_bytes()).expect("restores");
        assert_eq!(back.name(), det.name());
        assert_eq!(back.predict(&probes), det.predict(&probes));
        // And it actually classifies (the corpus is not honeypot-hard).
        let correct = det
            .predict(&probes)
            .iter()
            .zip(&labels[80..])
            .filter(|(a, b)| a == b)
            .count();
        assert!(correct as f64 / probes.len() as f64 > 0.6);
    }

    #[test]
    fn zero_member_snapshot_is_rejected() {
        let mut w = Writer::new();
        Vote::Soft.snapshot(&mut w);
        w.put_usize(0);
        let bytes = envelope_of(w.into_bytes());
        let err = EnsembleDetector::from_snapshot_bytes(&bytes).unwrap_err();
        assert!(matches!(err, PersistError::Malformed(_)), "{err:?}");
    }
}
