//! Typed detector specifications and the registry that builds them.
//!
//! A [`DetectorSpec`] is the one front door for naming a deployable
//! detector: a short string such as `"rf:seed=42"`, `"xgb"`, or
//! `"ensemble:rf+lgbm+catboost:vote=soft"` parses into a validated value
//! that round-trips through [`std::fmt::Display`], and the
//! [`DetectorRegistry`] turns any spec into a ready-to-fit
//! [`crate::AnyDetector`]. Everything downstream — the CLI's
//! `--model` flag, the [`Scanner`](crate::Scanner) facade, the wire
//! protocol's `model` field — speaks this grammar instead of the previous
//! scatter of bespoke constructors (`all_hscs`, `detector_by_name`,
//! per-family `HscDetector::…` calls).
//!
//! # Grammar
//!
//! ```text
//! spec      := family [":" option]*                      single HSC
//!            | "ensemble" ":" family ("+" family)+ [":" option]*
//! option    := "seed=" u64
//!            | "features=" ("hist" | "trace" | "hist+trace")
//!            | "quantize=" ("on" | "off")
//!            | "vote=" ("soft" | "hard" | "weighted")    ensembles only
//!            | "weights=" f64 ("," f64)*                 vote=weighted only
//! family    := "rf" | "knn" | "svm" | "lr" | "xgb" | "lgbm" | "catboost"
//!              (plus the aliases listed by [`DetectorRegistry::families`])
//! ```
//!
//! `features=` picks the feature channels the detector trains on: `hist`
//! (the default — static opcode histograms), `trace` (dynamic
//! execution-trace features from the dispatcher explorer), or `hist+trace`
//! (both, column-concatenated). Any family or ensemble composes with any
//! feature set.
//!
//! `quantize=` controls the execution engine for tree models, not the model
//! itself: `on` (the default) scores through the quantized u16 node walk
//! rebuilt after fit/restore, `off` forces the f64 reference arena. Both
//! produce verdict-identical output; the toggle exists for benchmarking and
//! for bisecting a suspected engine discrepancy. Because it does not change
//! model identity, the default (`on`) is omitted from the canonical form and
//! the flag never enters persisted snapshots.
//!
//! Family tokens are case-insensitive and accept spaces/underscores for
//! dashes, so the paper's Table II spellings (`"Random Forest"`) parse too.
//! `DetectorSpec::to_string` always renders the canonical form; parsing a
//! rendered spec yields an equal value (property-tested in
//! `tests/spec_roundtrip.rs`).

use std::fmt;
use std::str::FromStr;

/// Which of the seven histogram-similarity-classifier families a spec
/// names, in the paper's Table II order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HscKind {
    /// `rf` — bagged random forest (the paper's best model).
    RandomForest,
    /// `knn` — k-nearest neighbours.
    Knn,
    /// `svm` — RBF-kernel SVM via random Fourier features.
    Svm,
    /// `lr` — L2 logistic regression.
    LogisticRegression,
    /// `xgb` — exact greedy gradient boosting.
    Xgboost,
    /// `lgbm` — histogram leaf-wise gradient boosting.
    Lightgbm,
    /// `catboost` — oblivious-tree gradient boosting.
    Catboost,
}

/// The seven kinds in Table II order.
pub const HSC_KINDS: [HscKind; 7] = [
    HscKind::RandomForest,
    HscKind::Knn,
    HscKind::Svm,
    HscKind::LogisticRegression,
    HscKind::Xgboost,
    HscKind::Lightgbm,
    HscKind::Catboost,
];

impl HscKind {
    /// Canonical (shortest) spec token, e.g. `"rf"`.
    pub fn token(self) -> &'static str {
        match self {
            HscKind::RandomForest => "rf",
            HscKind::Knn => "knn",
            HscKind::Svm => "svm",
            HscKind::LogisticRegression => "lr",
            HscKind::Xgboost => "xgb",
            HscKind::Lightgbm => "lgbm",
            HscKind::Catboost => "catboost",
        }
    }

    /// The paper's Table II spelling, e.g. `"Random Forest"`.
    pub fn display_name(self) -> &'static str {
        match self {
            HscKind::RandomForest => "Random Forest",
            HscKind::Knn => "k-NN",
            HscKind::Svm => "SVM",
            HscKind::LogisticRegression => "Logistic Regression",
            HscKind::Xgboost => "XGBoost",
            HscKind::Lightgbm => "LightGBM",
            HscKind::Catboost => "CatBoost",
        }
    }

    /// Accepted aliases (beyond [`HscKind::token`]), already normalized to
    /// lowercase-with-dashes.
    pub fn aliases(self) -> &'static [&'static str] {
        match self {
            HscKind::RandomForest => &["random-forest"],
            HscKind::Knn => &["k-nn"],
            HscKind::Svm => &[],
            HscKind::LogisticRegression => &["logreg", "logistic-regression"],
            HscKind::Xgboost => &["xgboost"],
            HscKind::Lightgbm => &["lightgbm"],
            HscKind::Catboost => &[],
        }
    }

    /// Seed decorrelation offset, XORed into a shared base seed when one
    /// seed drives several members (matches the historical `all_hscs`
    /// assignment, so registry-built detectors reproduce it bit-for-bit).
    pub fn seed_offset(self) -> u64 {
        match self {
            HscKind::RandomForest => 0,
            HscKind::Knn => 0, // k-NN takes no seed
            HscKind::Svm => 1,
            HscKind::LogisticRegression => 0, // LR takes no seed
            HscKind::Xgboost => 2,
            HscKind::Lightgbm => 3,
            HscKind::Catboost => 4,
        }
    }

    /// Parses one family token (case-insensitive; spaces and underscores
    /// count as dashes, so Table II spellings work).
    pub fn parse_token(token: &str) -> Result<Self, SpecError> {
        let norm = token.trim().to_ascii_lowercase().replace([' ', '_'], "-");
        HSC_KINDS
            .into_iter()
            .find(|k| k.token() == norm || k.aliases().contains(&norm.as_str()))
            .ok_or_else(|| SpecError::UnknownFamily(token.trim().to_owned()))
    }
}

/// How an ensemble combines its members' class-1 probabilities.
#[derive(Debug, Clone, PartialEq)]
pub enum Vote {
    /// Mean of member probabilities.
    Soft,
    /// Fraction of members voting phishing (probability ≥ 0.5).
    Hard,
    /// Weighted mean; one non-negative finite weight per member, not all
    /// zero.
    Weighted(Vec<f64>),
}

impl Vote {
    fn keyword(&self) -> &'static str {
        match self {
            Vote::Soft => "soft",
            Vote::Hard => "hard",
            Vote::Weighted(_) => "weighted",
        }
    }
}

/// Which feature channels a detector trains and scores on — the spec
/// grammar's `features=` axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FeatureSet {
    /// Static opcode-occurrence histograms (the paper's HSC features; the
    /// default).
    #[default]
    Histogram,
    /// Dynamic execution-trace features from the dispatcher explorer
    /// ([`phishinghook_features::TraceExtractor`]).
    Trace,
    /// Both channels, column-concatenated (histogram columns first).
    HistogramTrace,
}

impl FeatureSet {
    /// Canonical spec token: `"hist"`, `"trace"`, or `"hist+trace"`.
    pub fn token(self) -> &'static str {
        match self {
            FeatureSet::Histogram => "hist",
            FeatureSet::Trace => "trace",
            FeatureSet::HistogramTrace => "hist+trace",
        }
    }

    /// `true` when the set includes the static histogram channel.
    pub fn includes_histogram(self) -> bool {
        matches!(self, FeatureSet::Histogram | FeatureSet::HistogramTrace)
    }

    /// `true` when the set includes the dynamic trace channel.
    pub fn includes_trace(self) -> bool {
        matches!(self, FeatureSet::Trace | FeatureSet::HistogramTrace)
    }

    /// Parses a `features=` value (case-insensitive; `histogram` is an
    /// alias for `hist`, and `trace+hist` normalizes to `hist+trace`).
    fn parse(value: &str) -> Result<Self, SpecError> {
        let bad = |reason: &str| SpecError::BadValue {
            option: "features",
            value: value.to_owned(),
            reason: reason.to_owned(),
        };
        let mut hist = false;
        let mut trace = false;
        for part in value.split('+') {
            match part.trim().to_ascii_lowercase().as_str() {
                "hist" | "histogram" => {
                    if hist {
                        return Err(bad("`hist` listed twice"));
                    }
                    hist = true;
                }
                "trace" => {
                    if trace {
                        return Err(bad("`trace` listed twice"));
                    }
                    trace = true;
                }
                _ => return Err(bad("expected `hist`, `trace` or `hist+trace`")),
            }
        }
        match (hist, trace) {
            (true, false) => Ok(FeatureSet::Histogram),
            (false, true) => Ok(FeatureSet::Trace),
            (true, true) => Ok(FeatureSet::HistogramTrace),
            (false, false) => Err(bad("expected `hist`, `trace` or `hist+trace`")),
        }
    }
}

impl fmt::Display for FeatureSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// A single-HSC spec: family plus an optional explicit seed.
///
/// Without an explicit seed, building substitutes a caller-provided default
/// (XORed with [`HscKind::seed_offset`] for decorrelation); with one, the
/// seed is used exactly as written.
#[derive(Debug, Clone, PartialEq)]
pub struct HscSpec {
    /// Which family to build.
    pub kind: HscKind,
    /// Explicit seed, if the spec carried `seed=…`.
    pub seed: Option<u64>,
    /// Which feature channels to train on (`features=…`; defaults to
    /// static histograms).
    pub features: FeatureSet,
    /// Whether tree models score through the quantized engine
    /// (`quantize=…`; defaults to `true`).
    pub quantize: bool,
}

/// A parsed, validated detector description.
#[derive(Debug, Clone, PartialEq)]
pub enum DetectorSpec {
    /// One histogram similarity classifier.
    Hsc(HscSpec),
    /// A voting ensemble over HSC members.
    Ensemble {
        /// Member families, in scoring order.
        members: Vec<HscKind>,
        /// Voting rule.
        vote: Vote,
        /// Explicit base seed for member decorrelation, if given.
        seed: Option<u64>,
        /// Feature channels shared by every member.
        features: FeatureSet,
        /// Whether tree members score through the quantized engine
        /// (defaults to `true`).
        quantize: bool,
    },
}

impl DetectorSpec {
    /// The number of underlying models this spec builds.
    pub fn n_models(&self) -> usize {
        match self {
            DetectorSpec::Hsc(_) => 1,
            DetectorSpec::Ensemble { members, .. } => members.len(),
        }
    }

    /// `true` for ensemble specs.
    pub fn is_ensemble(&self) -> bool {
        matches!(self, DetectorSpec::Ensemble { .. })
    }
}

impl fmt::Display for DetectorSpec {
    /// Renders the canonical form: lowercase tokens, options in
    /// `vote`, `weights`, `features`, `quantize`, `seed` order (defaults
    /// omitted). `parse(to_string()) == self`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DetectorSpec::Hsc(HscSpec {
                kind,
                seed,
                features,
                quantize,
            }) => {
                write!(f, "{}", kind.token())?;
                if *features != FeatureSet::default() {
                    write!(f, ":features={}", features.token())?;
                }
                if !quantize {
                    write!(f, ":quantize=off")?;
                }
                if let Some(seed) = seed {
                    write!(f, ":seed={seed}")?;
                }
                Ok(())
            }
            DetectorSpec::Ensemble {
                members,
                vote,
                seed,
                features,
                quantize,
            } => {
                write!(f, "ensemble:")?;
                for (i, member) in members.iter().enumerate() {
                    if i > 0 {
                        write!(f, "+")?;
                    }
                    write!(f, "{}", member.token())?;
                }
                write!(f, ":vote={}", vote.keyword())?;
                if let Vote::Weighted(weights) = vote {
                    write!(f, ":weights=")?;
                    for (i, w) in weights.iter().enumerate() {
                        if i > 0 {
                            write!(f, ",")?;
                        }
                        // `{}` on f64 prints the shortest string that parses
                        // back to the same value, so weights round-trip.
                        write!(f, "{w}")?;
                    }
                }
                if *features != FeatureSet::default() {
                    write!(f, ":features={}", features.token())?;
                }
                if !quantize {
                    write!(f, ":quantize=off")?;
                }
                if let Some(seed) = seed {
                    write!(f, ":seed={seed}")?;
                }
                Ok(())
            }
        }
    }
}

/// Typed ways a spec string can be invalid. Parsing never panics.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The spec string is empty (or only whitespace/colons).
    Empty,
    /// The family token names no known detector family.
    UnknownFamily(String),
    /// An `ensemble:` spec with no members.
    EmptyEnsemble,
    /// An option key the grammar does not define.
    UnknownOption(String),
    /// The same option appeared twice.
    DuplicateOption(&'static str),
    /// An option value failed to parse or is out of range.
    BadValue {
        /// Which option.
        option: &'static str,
        /// The offending raw text.
        value: String,
        /// Why it was rejected.
        reason: String,
    },
    /// An option that only applies to ensembles (`vote`, `weights`) was
    /// given on a single-model spec, or `weights` without `vote=weighted`.
    OptionNotApplicable {
        /// Which option.
        option: &'static str,
        /// What it was (wrongly) applied to.
        context: String,
    },
    /// `weights=` count does not match the member count.
    WeightCount {
        /// Number of weights given.
        weights: usize,
        /// Number of ensemble members.
        members: usize,
    },
    /// Ensemble members were constructed with differing feature sets (they
    /// must all score one shared feature matrix).
    MixedFeatureSets,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Empty => write!(f, "empty detector spec"),
            SpecError::UnknownFamily(t) => write!(
                f,
                "unknown detector family `{t}` (try `rf`, `knn`, `svm`, `lr`, `xgb`, `lgbm`, `catboost`, or `ensemble:…`)"
            ),
            SpecError::EmptyEnsemble => write!(f, "ensemble spec has no members"),
            SpecError::UnknownOption(o) => write!(f, "unknown spec option `{o}`"),
            SpecError::DuplicateOption(o) => write!(f, "spec option `{o}` given twice"),
            SpecError::BadValue {
                option,
                value,
                reason,
            } => write!(f, "bad `{option}` value `{value}`: {reason}"),
            SpecError::OptionNotApplicable { option, context } => {
                write!(f, "option `{option}` does not apply to {context}")
            }
            SpecError::WeightCount { weights, members } => write!(
                f,
                "weights count {weights} does not match member count {members}"
            ),
            SpecError::MixedFeatureSets => write!(
                f,
                "ensemble members disagree on their feature set (all members must share one)"
            ),
        }
    }
}

impl std::error::Error for SpecError {}

/// Accumulates `key=value` options shared by both spec shapes.
#[derive(Default)]
struct Options {
    seed: Option<u64>,
    vote: Option<&'static str>,
    weights: Option<Vec<f64>>,
    features: Option<FeatureSet>,
    quantize: Option<bool>,
}

impl Options {
    fn parse_segment(&mut self, segment: &str) -> Result<(), SpecError> {
        let (key, value) = segment
            .split_once('=')
            .ok_or_else(|| SpecError::UnknownOption(segment.to_owned()))?;
        match key.trim().to_ascii_lowercase().as_str() {
            "seed" => {
                if self.seed.is_some() {
                    return Err(SpecError::DuplicateOption("seed"));
                }
                self.seed = Some(value.trim().parse().map_err(|_| SpecError::BadValue {
                    option: "seed",
                    value: value.to_owned(),
                    reason: "expected an unsigned 64-bit integer".to_owned(),
                })?);
            }
            "vote" => {
                if self.vote.is_some() {
                    return Err(SpecError::DuplicateOption("vote"));
                }
                self.vote = Some(match value.trim().to_ascii_lowercase().as_str() {
                    "soft" => "soft",
                    "hard" => "hard",
                    "weighted" => "weighted",
                    _ => {
                        return Err(SpecError::BadValue {
                            option: "vote",
                            value: value.to_owned(),
                            reason: "expected `soft`, `hard` or `weighted`".to_owned(),
                        })
                    }
                });
            }
            "weights" => {
                if self.weights.is_some() {
                    return Err(SpecError::DuplicateOption("weights"));
                }
                let mut weights = Vec::new();
                for part in value.split(',') {
                    let w: f64 = part.trim().parse().map_err(|_| SpecError::BadValue {
                        option: "weights",
                        value: value.to_owned(),
                        reason: format!("`{part}` is not a number"),
                    })?;
                    if !w.is_finite() || w < 0.0 {
                        return Err(SpecError::BadValue {
                            option: "weights",
                            value: value.to_owned(),
                            reason: format!("weight `{part}` must be finite and non-negative"),
                        });
                    }
                    weights.push(w);
                }
                if weights.iter().sum::<f64>() <= 0.0 {
                    return Err(SpecError::BadValue {
                        option: "weights",
                        value: value.to_owned(),
                        reason: "weights must not all be zero".to_owned(),
                    });
                }
                self.weights = Some(weights);
            }
            "features" => {
                if self.features.is_some() {
                    return Err(SpecError::DuplicateOption("features"));
                }
                self.features = Some(FeatureSet::parse(value)?);
            }
            "quantize" => {
                if self.quantize.is_some() {
                    return Err(SpecError::DuplicateOption("quantize"));
                }
                self.quantize = Some(match value.trim().to_ascii_lowercase().as_str() {
                    "on" | "true" => true,
                    "off" | "false" => false,
                    _ => {
                        return Err(SpecError::BadValue {
                            option: "quantize",
                            value: value.to_owned(),
                            reason: "expected `on` or `off`".to_owned(),
                        })
                    }
                });
            }
            other => return Err(SpecError::UnknownOption(other.to_owned())),
        }
        Ok(())
    }
}

impl FromStr for DetectorSpec {
    type Err = SpecError;

    fn from_str(s: &str) -> Result<Self, SpecError> {
        let s = s.trim();
        if s.is_empty() {
            return Err(SpecError::Empty);
        }
        let mut segments = s.split(':');
        let head = segments.next().expect("split yields at least one segment");

        if head.trim().eq_ignore_ascii_case("ensemble") {
            let member_segment = segments.next().unwrap_or("").trim();
            if member_segment.is_empty() {
                return Err(SpecError::EmptyEnsemble);
            }
            let members = member_segment
                .split('+')
                .map(HscKind::parse_token)
                .collect::<Result<Vec<_>, _>>()?;
            let mut opts = Options::default();
            for segment in segments {
                opts.parse_segment(segment)?;
            }
            let vote = match (opts.vote.unwrap_or("soft"), opts.weights) {
                ("weighted", Some(weights)) => {
                    if weights.len() != members.len() {
                        return Err(SpecError::WeightCount {
                            weights: weights.len(),
                            members: members.len(),
                        });
                    }
                    Vote::Weighted(weights)
                }
                ("weighted", None) => {
                    return Err(SpecError::BadValue {
                        option: "vote",
                        value: "weighted".to_owned(),
                        reason: "vote=weighted requires a `weights=…` option".to_owned(),
                    })
                }
                (_, Some(_)) => {
                    return Err(SpecError::OptionNotApplicable {
                        option: "weights",
                        context: "a non-weighted vote".to_owned(),
                    })
                }
                ("hard", None) => Vote::Hard,
                _ => Vote::Soft,
            };
            Ok(DetectorSpec::Ensemble {
                members,
                vote,
                seed: opts.seed,
                features: opts.features.unwrap_or_default(),
                quantize: opts.quantize.unwrap_or(true),
            })
        } else {
            let kind = HscKind::parse_token(head)?;
            let mut opts = Options::default();
            for segment in segments {
                opts.parse_segment(segment)?;
            }
            if opts.vote.is_some() {
                return Err(SpecError::OptionNotApplicable {
                    option: "vote",
                    context: format!("single model `{}`", kind.token()),
                });
            }
            if opts.weights.is_some() {
                return Err(SpecError::OptionNotApplicable {
                    option: "weights",
                    context: format!("single model `{}`", kind.token()),
                });
            }
            Ok(DetectorSpec::Hsc(HscSpec {
                kind,
                seed: opts.seed,
                features: opts.features.unwrap_or_default(),
                quantize: opts.quantize.unwrap_or(true),
            }))
        }
    }
}

// --- Registry --------------------------------------------------------------

use crate::ensemble::EnsembleDetector;
use crate::hsc::HscDetector;
use crate::scanner::AnyDetector;

/// One row of the registry's family table, for discovery/help output.
#[derive(Debug, Clone, Copy)]
pub struct FamilyInfo {
    /// The family this row describes.
    pub kind: HscKind,
    /// Canonical spec token.
    pub token: &'static str,
    /// Table II display name.
    pub display_name: &'static str,
    /// Accepted aliases.
    pub aliases: &'static [&'static str],
}

/// Builds detectors from [`DetectorSpec`]s.
///
/// The registry is the single construction path for every deployable
/// detector: the CLI, the [`Scanner`](crate::Scanner), the benchmarks and
/// the evaluation pipeline all go through [`DetectorRegistry::build`]
/// (directly or via a spec string), replacing the former `all_hscs` /
/// `detector_by_name` scatter. Building is deterministic: the same spec and
/// default seed always produce an identically-initialized detector.
#[derive(Debug, Default, Clone, Copy)]
pub struct DetectorRegistry;

impl DetectorRegistry {
    /// The process-wide registry (stateless today; a value type so future
    /// backends can carry configuration).
    pub fn global() -> &'static DetectorRegistry {
        static REGISTRY: DetectorRegistry = DetectorRegistry;
        &REGISTRY
    }

    /// Every registered family, in Table II order.
    pub fn families(&self) -> Vec<FamilyInfo> {
        HSC_KINDS
            .into_iter()
            .map(|kind| FamilyInfo {
                kind,
                token: kind.token(),
                display_name: kind.display_name(),
                aliases: kind.aliases(),
            })
            .collect()
    }

    /// The seven single-HSC specs in Table II order (no explicit seeds, so
    /// building with default seed `s` reproduces the historical
    /// `all_hscs(s)` bit-for-bit).
    pub fn hsc_specs(&self) -> Vec<DetectorSpec> {
        HSC_KINDS
            .into_iter()
            .map(|kind| {
                DetectorSpec::Hsc(HscSpec {
                    kind,
                    seed: None,
                    features: FeatureSet::Histogram,
                    quantize: true,
                })
            })
            .collect()
    }

    /// Builds one unfitted HSC of `kind` seeded exactly with `seed`.
    pub fn build_hsc(&self, kind: HscKind, seed: u64) -> HscDetector {
        match kind {
            HscKind::RandomForest => HscDetector::random_forest(seed),
            HscKind::Knn => HscDetector::knn(),
            HscKind::Svm => HscDetector::svm(seed),
            HscKind::LogisticRegression => HscDetector::logistic_regression(),
            HscKind::Xgboost => HscDetector::xgboost(seed),
            HscKind::Lightgbm => HscDetector::lightgbm(seed),
            HscKind::Catboost => HscDetector::catboost(seed),
        }
    }

    /// Builds an unfitted detector from a spec.
    ///
    /// Seed resolution: an explicit `seed=` in the spec wins; otherwise
    /// `default_seed` is decorrelated per family via
    /// [`HscKind::seed_offset`] (ensemble members always decorrelate from
    /// the base seed this way).
    pub fn build(&self, spec: &DetectorSpec, default_seed: u64) -> AnyDetector {
        match spec {
            DetectorSpec::Hsc(HscSpec {
                kind,
                seed,
                features,
                quantize,
            }) => {
                let seed = seed.unwrap_or(default_seed ^ kind.seed_offset());
                AnyDetector::Hsc(
                    self.build_hsc(*kind, seed)
                        .with_features(*features)
                        .with_quantize(*quantize),
                )
            }
            DetectorSpec::Ensemble {
                members,
                vote,
                seed,
                features,
                quantize,
            } => {
                let base = seed.unwrap_or(default_seed);
                let members: Vec<HscDetector> = members
                    .iter()
                    .map(|&kind| {
                        self.build_hsc(kind, base ^ kind.seed_offset())
                            .with_features(*features)
                            .with_quantize(*quantize)
                    })
                    .collect();
                AnyDetector::Ensemble(
                    EnsembleDetector::new(members, vote.clone())
                        .expect("a parsed spec is structurally valid"),
                )
            }
        }
    }

    /// Parses a spec string and builds it in one step.
    ///
    /// # Errors
    /// Any [`SpecError`] from parsing; building a parsed spec cannot fail.
    pub fn build_str(&self, spec: &str, default_seed: u64) -> Result<AnyDetector, SpecError> {
        Ok(self.build(&spec.parse()?, default_seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> DetectorSpec {
        s.parse()
            .unwrap_or_else(|e| panic!("`{s}` should parse: {e}"))
    }

    #[test]
    fn single_specs_parse_and_round_trip() {
        for (text, canonical) in [
            ("rf", "rf"),
            ("RF", "rf"),
            ("Random Forest", "rf"),
            ("random-forest:seed=42", "rf:seed=42"),
            ("k-NN", "knn"),
            ("logistic_regression", "lr"),
            ("xgboost", "xgb"),
            ("lightgbm:seed=0", "lgbm:seed=0"),
            ("catboost", "catboost"),
        ] {
            let spec = parse(text);
            assert_eq!(spec.to_string(), canonical, "{text}");
            assert_eq!(parse(&spec.to_string()), spec, "{text}");
        }
    }

    #[test]
    fn ensemble_specs_parse_and_round_trip() {
        let spec = parse("ensemble:rf+lgbm+catboost:vote=soft");
        assert_eq!(
            spec,
            DetectorSpec::Ensemble {
                members: vec![HscKind::RandomForest, HscKind::Lightgbm, HscKind::Catboost],
                vote: Vote::Soft,
                seed: None,
                features: FeatureSet::Histogram,
                quantize: true,
            }
        );
        assert_eq!(spec.to_string(), "ensemble:rf+lgbm+catboost:vote=soft");
        assert_eq!(spec.n_models(), 3);
        assert!(spec.is_ensemble());

        // Vote defaults to soft; seed and weighted votes round-trip.
        assert_eq!(parse("ensemble:rf+knn"), parse("ensemble:rf+knn:vote=soft"));
        let weighted = parse("ensemble:rf+lgbm:vote=weighted:weights=2,1:seed=9");
        assert_eq!(
            weighted.to_string(),
            "ensemble:rf+lgbm:vote=weighted:weights=2,1:seed=9"
        );
        assert_eq!(parse(&weighted.to_string()), weighted);
    }

    #[test]
    fn feature_set_axis_parses_and_round_trips() {
        // Default (hist) is omitted from the canonical form.
        assert_eq!(parse("rf:features=hist").to_string(), "rf");
        assert_eq!(parse("rf:features=histogram"), parse("rf"));
        // Non-default feature sets render and round-trip.
        for (text, canonical) in [
            ("rf:features=trace", "rf:features=trace"),
            ("rf:features=TRACE:seed=3", "rf:features=trace:seed=3"),
            ("rf:features=hist+trace", "rf:features=hist+trace"),
            ("rf:features=trace+hist", "rf:features=hist+trace"),
            (
                "ensemble:rf+lgbm:vote=hard:features=hist+trace",
                "ensemble:rf+lgbm:vote=hard:features=hist+trace",
            ),
            (
                "ensemble:rf+lgbm:features=trace:seed=5",
                "ensemble:rf+lgbm:vote=soft:features=trace:seed=5",
            ),
        ] {
            let spec = parse(text);
            assert_eq!(spec.to_string(), canonical, "{text}");
            assert_eq!(parse(&spec.to_string()), spec, "{text}");
        }
        let DetectorSpec::Hsc(spec) = parse("rf:features=hist+trace") else {
            panic!("single spec")
        };
        assert_eq!(spec.features, FeatureSet::HistogramTrace);
        assert!(spec.features.includes_histogram());
        assert!(spec.features.includes_trace());
        assert!(!FeatureSet::Trace.includes_histogram());
    }

    #[test]
    fn quantize_axis_parses_and_round_trips() {
        // The default (on) is omitted from the canonical form.
        assert_eq!(parse("rf:quantize=on").to_string(), "rf");
        assert_eq!(parse("rf:quantize=true"), parse("rf"));
        let DetectorSpec::Hsc(on) = parse("rf") else {
            panic!("single spec")
        };
        assert!(on.quantize);
        // Off renders, round-trips, and sits after features / before seed.
        for (text, canonical) in [
            ("rf:quantize=off", "rf:quantize=off"),
            ("rf:quantize=OFF:seed=3", "rf:quantize=off:seed=3"),
            ("rf:quantize=false", "rf:quantize=off"),
            (
                "rf:quantize=off:features=trace",
                "rf:features=trace:quantize=off",
            ),
            (
                "ensemble:rf+lgbm:quantize=off:vote=hard",
                "ensemble:rf+lgbm:vote=hard:quantize=off",
            ),
            (
                "ensemble:rf+lgbm:features=trace:quantize=off:seed=5",
                "ensemble:rf+lgbm:vote=soft:features=trace:quantize=off:seed=5",
            ),
        ] {
            let spec = parse(text);
            assert_eq!(spec.to_string(), canonical, "{text}");
            assert_eq!(parse(&spec.to_string()), spec, "{text}");
        }
        let DetectorSpec::Hsc(off) = parse("rf:quantize=off") else {
            panic!("single spec")
        };
        assert!(!off.quantize);

        // Bad values and duplicates are typed errors.
        let err = |s: &str| s.parse::<DetectorSpec>().unwrap_err();
        assert!(matches!(
            err("rf:quantize=maybe"),
            SpecError::BadValue {
                option: "quantize",
                ..
            }
        ));
        assert!(matches!(
            err("rf:quantize="),
            SpecError::BadValue {
                option: "quantize",
                ..
            }
        ));
        assert_eq!(
            err("rf:quantize=on:quantize=off"),
            SpecError::DuplicateOption("quantize")
        );
    }

    #[test]
    fn registry_applies_the_quantize_toggle() {
        let registry = DetectorRegistry::global();
        let on = registry.build_str("rf", 7).unwrap();
        let off = registry.build_str("rf:quantize=off", 7).unwrap();
        assert!(on.quantize());
        assert!(!off.quantize());
        let ens = registry
            .build_str("ensemble:rf+lgbm:quantize=off", 7)
            .unwrap();
        assert!(!ens.quantize());
    }

    #[test]
    fn bad_feature_sets_are_typed_errors() {
        let err = |s: &str| s.parse::<DetectorSpec>().unwrap_err();
        for bad in [
            "rf:features=",
            "rf:features=image",
            "rf:features=hist+hist",
            "rf:features=trace+trace+hist",
        ] {
            assert!(
                matches!(
                    err(bad),
                    SpecError::BadValue {
                        option: "features",
                        ..
                    }
                ),
                "{bad}"
            );
        }
        assert_eq!(
            err("rf:features=trace:features=hist"),
            SpecError::DuplicateOption("features")
        );
    }

    #[test]
    fn malformed_specs_are_typed_errors() {
        use SpecError as E;
        let err = |s: &str| s.parse::<DetectorSpec>().unwrap_err();
        assert_eq!(err(""), E::Empty);
        assert_eq!(err("  "), E::Empty);
        assert!(matches!(err("resnet"), E::UnknownFamily(_)));
        assert_eq!(err("ensemble:"), E::EmptyEnsemble);
        assert_eq!(err("ensemble"), E::EmptyEnsemble);
        assert!(matches!(err("ensemble:rf+resnet"), E::UnknownFamily(_)));
        assert!(matches!(err("rf:bogus=1"), E::UnknownOption(_)));
        assert!(matches!(err("rf:frobnicate"), E::UnknownOption(_)));
        assert_eq!(err("rf:seed=1:seed=2"), E::DuplicateOption("seed"));
        assert!(matches!(
            err("rf:seed=banana"),
            E::BadValue { option: "seed", .. }
        ));
        assert!(matches!(
            err("rf:seed=-3"),
            E::BadValue { option: "seed", .. }
        ));
        assert!(matches!(
            err("rf:vote=soft"),
            E::OptionNotApplicable { option: "vote", .. }
        ));
        assert!(matches!(
            err("ensemble:rf+knn:vote=maybe"),
            E::BadValue { option: "vote", .. }
        ));
        assert!(matches!(
            err("ensemble:rf+knn:vote=weighted"),
            E::BadValue { option: "vote", .. }
        ));
        assert!(matches!(
            err("ensemble:rf+knn:vote=soft:weights=1,2"),
            E::OptionNotApplicable {
                option: "weights",
                ..
            }
        ));
        assert_eq!(
            err("ensemble:rf+knn:vote=weighted:weights=1"),
            E::WeightCount {
                weights: 1,
                members: 2
            }
        );
        assert!(matches!(
            err("ensemble:rf+knn:vote=weighted:weights=1,nan"),
            E::BadValue {
                option: "weights",
                ..
            }
        ));
        assert!(matches!(
            err("ensemble:rf+knn:vote=weighted:weights=0,0"),
            E::BadValue {
                option: "weights",
                ..
            }
        ));
        // Errors render human-readable text.
        assert!(err("resnet")
            .to_string()
            .contains("unknown detector family"));
    }

    #[test]
    fn registry_lists_seven_families() {
        let families = DetectorRegistry::global().families();
        assert_eq!(families.len(), 7);
        assert_eq!(families[0].display_name, "Random Forest");
        assert_eq!(families[0].token, "rf");
        let specs = DetectorRegistry::global().hsc_specs();
        assert_eq!(specs.len(), 7);
        assert!(specs.iter().all(|s| !s.is_ensemble()));
    }
}
