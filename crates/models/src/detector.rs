//! The common interface all 16 PhishingHook models implement.

use std::fmt;

/// Model category, matching the paper's Table II footnotes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// † Histogram similarity classifiers.
    Histogram,
    /// ‡ Vision models.
    Vision,
    /// * Language models.
    Language,
    /// § Vulnerability detection models.
    VulnerabilityDetection,
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Category::Histogram => write!(f, "Histogram"),
            Category::Vision => write!(f, "Vision"),
            Category::Language => write!(f, "Language"),
            Category::VulnerabilityDetection => write!(f, "Vulnerability"),
        }
    }
}

/// A phishing detector over raw deployed bytecode.
///
/// Each implementation owns its feature extraction (histograms, images,
/// token sequences, …) so that anything fitted from data — vocabularies,
/// frequency lookup tables — is derived from the *training* split only.
pub trait Detector {
    /// Model name as it appears in the paper's Table II.
    fn name(&self) -> &'static str;

    /// Model category.
    fn category(&self) -> Category;

    /// Trains on bytecodes with binary labels (1 = phishing).
    ///
    /// # Panics
    /// Implementations may panic when `codes.len() != labels.len()` or the
    /// training set is empty.
    fn fit(&mut self, codes: &[&[u8]], labels: &[usize]);

    /// Predicts a binary label per bytecode.
    fn predict(&self, codes: &[&[u8]]) -> Vec<usize>;
}
