//! The common interface all 16 PhishingHook models implement, plus the
//! shared per-fold feature store that lets detectors of one family reuse
//! each other's extraction work.

use phishinghook_features::{HistogramExtractor, TraceExtractor};
use phishinghook_ml::Matrix;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Model category, matching the paper's Table II footnotes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// † Histogram similarity classifiers.
    Histogram,
    /// ‡ Vision models.
    Vision,
    /// * Language models.
    Language,
    /// § Vulnerability detection models.
    VulnerabilityDetection,
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Category::Histogram => write!(f, "Histogram"),
            Category::Vision => write!(f, "Vision"),
            Category::Language => write!(f, "Language"),
            Category::VulnerabilityDetection => write!(f, "Vulnerability"),
        }
    }
}

/// Fitted histogram features for one fold: the extractor (vocabulary from
/// the training split) plus the transformed train and test matrices.
#[derive(Debug, Clone)]
pub struct HistogramFeatures {
    /// The extractor fitted on the fold's training bytecodes.
    pub extractor: HistogramExtractor,
    /// Training-split feature matrix.
    pub train: Matrix,
    /// Test-split feature matrix (transformed with the training vocabulary).
    pub test: Matrix,
    /// Wall-clock seconds the one-time extraction took (fit + both
    /// transforms). The evaluation pipeline charges this to every detector
    /// that reuses the features, keeping per-model timing columns
    /// comparable to detectors that extract for themselves.
    pub build_secs: f64,
}

/// Shared dynamic-trace features for one fold: the (stateless) extractor
/// plus the transformed train and test matrices. The trace channel has no
/// fitted vocabulary — its columns are fixed — but the per-contract
/// exploration is the expensive part, so the matrices are what's shared.
#[derive(Debug, Clone)]
pub struct TraceFeatures {
    /// The extractor the matrices were produced with (default explorer
    /// budgets).
    pub extractor: TraceExtractor,
    /// Training-split trace-feature matrix.
    pub train: Matrix,
    /// Test-split trace-feature matrix.
    pub test: Matrix,
    /// Wall-clock seconds the one-time exploration took (both transforms).
    pub build_secs: f64,
}

/// Shared feature store for one cross-validation fold.
///
/// The evaluation pipeline builds one `FoldFeatures` per (run, fold) cell
/// and hands it to every detector via [`Detector::fit_fold`] /
/// [`Detector::predict_fold`]. Family-level extraction (e.g. the opcode
/// histograms all seven HSCs consume, or the dynamic execution traces any
/// `features=trace`-bearing detector consumes) is computed lazily, exactly
/// once, on first request — so seven HSC detectors share one disassembly
/// pass and one pair of feature matrices instead of redoing the work seven
/// times.
///
/// Everything derived from data is fitted on the *training* split only,
/// preserving the fold-hygiene contract of [`Detector::fit`].
pub struct FoldFeatures<'a> {
    train: &'a [&'a [u8]],
    test: &'a [&'a [u8]],
    histogram: OnceLock<HistogramFeatures>,
    histogram_hits: AtomicUsize,
    trace: OnceLock<TraceFeatures>,
    trace_hits: AtomicUsize,
}

impl<'a> FoldFeatures<'a> {
    /// Wraps a fold's train/test bytecode splits; no extraction happens
    /// until a detector asks for a feature family.
    pub fn new(train: &'a [&'a [u8]], test: &'a [&'a [u8]]) -> Self {
        FoldFeatures {
            train,
            test,
            histogram: OnceLock::new(),
            histogram_hits: AtomicUsize::new(0),
            trace: OnceLock::new(),
            trace_hits: AtomicUsize::new(0),
        }
    }

    /// The fold's training bytecodes.
    pub fn train_codes(&self) -> &'a [&'a [u8]] {
        self.train
    }

    /// The fold's test bytecodes.
    pub fn test_codes(&self) -> &'a [&'a [u8]] {
        self.test
    }

    /// The fold's histogram features, extracted on first call and shared by
    /// every subsequent caller.
    pub fn histogram(&self) -> &HistogramFeatures {
        self.histogram_hits.fetch_add(1, Ordering::Relaxed);
        self.histogram.get_or_init(|| {
            let t0 = std::time::Instant::now();
            let extractor = HistogramExtractor::fit(self.train);
            let train = extractor.transform(self.train);
            let test = extractor.transform(self.test);
            HistogramFeatures {
                extractor,
                train,
                test,
                build_secs: t0.elapsed().as_secs_f64(),
            }
        })
    }

    /// `(access count so far, one-time build seconds)` for the histogram
    /// family — `build_secs` is 0.0 until something triggers the build.
    /// The evaluation pipeline samples this around each detector's fit to
    /// attribute the shared extraction cost fairly.
    pub fn histogram_usage(&self) -> (usize, f64) {
        (
            self.histogram_hits.load(Ordering::Relaxed),
            self.histogram.get().map_or(0.0, |h| h.build_secs),
        )
    }

    /// The fold's dynamic-trace features, explored on first call (default
    /// explorer budgets) and shared by every subsequent caller.
    pub fn trace(&self) -> &TraceFeatures {
        self.trace_hits.fetch_add(1, Ordering::Relaxed);
        self.trace.get_or_init(|| {
            let t0 = std::time::Instant::now();
            let extractor = TraceExtractor::new();
            let train = extractor.transform(self.train);
            let test = extractor.transform(self.test);
            TraceFeatures {
                extractor,
                train,
                test,
                build_secs: t0.elapsed().as_secs_f64(),
            }
        })
    }

    /// `(access count so far, one-time build seconds)` for the trace
    /// family — the trace-channel analogue of
    /// [`FoldFeatures::histogram_usage`].
    pub fn trace_usage(&self) -> (usize, f64) {
        (
            self.trace_hits.load(Ordering::Relaxed),
            self.trace.get().map_or(0.0, |t| t.build_secs),
        )
    }
}

/// A phishing detector over raw deployed bytecode.
///
/// Each implementation owns its feature extraction (histograms, images,
/// token sequences, …) so that anything fitted from data — vocabularies,
/// frequency lookup tables — is derived from the *training* split only.
pub trait Detector {
    /// Model name — the paper's Table II spelling for the 16 single models,
    /// or a canonical spec string for composites such as ensembles.
    fn name(&self) -> &str;

    /// Model category.
    fn category(&self) -> Category;

    /// Trains on bytecodes with binary labels (1 = phishing).
    ///
    /// # Panics
    /// Implementations may panic when `codes.len() != labels.len()` or the
    /// training set is empty.
    fn fit(&mut self, codes: &[&[u8]], labels: &[usize]);

    /// Predicts a binary label per bytecode.
    fn predict(&self, codes: &[&[u8]]) -> Vec<usize>;

    /// Trains on a fold, drawing any shareable feature extraction from the
    /// fold's [`FoldFeatures`] store. The default delegates to
    /// [`Detector::fit`] over the raw training bytecodes; detectors whose
    /// features are family-wide (the HSCs) override this to reuse the
    /// shared matrices.
    fn fit_fold(&mut self, fold: &FoldFeatures<'_>, labels: &[usize]) {
        self.fit(fold.train_codes(), labels);
    }

    /// Predicts the fold's test split, reusing shared features where the
    /// detector's family supports it. Must be called on a detector fitted
    /// via [`Detector::fit_fold`] on the *same* fold.
    fn predict_fold(&self, fold: &FoldFeatures<'_>) -> Vec<usize> {
        self.predict(fold.test_codes())
    }
}
