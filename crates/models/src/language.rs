//! The five language models: SCSGuard, GPT-2α/β and T5α/β.
//!
//! * **SCSGuard** — bigram embedding → multi-head attention → GRU → linear
//!   head, exactly the architecture sketch in the paper's §IV-B.
//! * **GPT-2-style** — byte tokens, learned positions, *causal* transformer
//!   encoder, last-token-free mean pooling, classification head.
//! * **T5-style** — byte tokens, learned positions, bidirectional encoder.
//!
//! The α/β split reproduces the paper's Table II variants: α truncates each
//! bytecode to the model's sequence limit; β covers the full bytecode with
//! sliding windows and averages window logits.
//!
//! Substitution note (DESIGN.md §2): the paper fine-tunes HuggingFace
//! pretrained GPT-2/T5 checkpoints; offline we train scaled-down instances
//! of the same architectures from scratch.

use crate::detector::{Category, Detector};
use phishinghook_features::ngram::BigramVocab;
use phishinghook_features::tokenize::{tokenize, Tokenization, VOCAB_SIZE};
use phishinghook_ml::nn::layers::{
    normal_init, Dense, Embedding, Gru, MultiHeadAttention, TransformerBlock,
};
use phishinghook_ml::nn::{Adam, Optimizer, Tensor};
use phishinghook_ml::SplitMix;

/// Hyperparameters shared by the language models.
#[derive(Debug, Clone, PartialEq)]
pub struct LanguageConfig {
    /// Model width.
    pub dim: usize,
    /// Transformer depth (GPT-2/T5) — SCSGuard uses one attention block.
    pub depth: usize,
    /// Attention heads.
    pub heads: usize,
    /// Sequence length (α truncation / β window size).
    pub max_len: usize,
    /// β window stride.
    pub stride: usize,
    /// Cap on training windows per contract (β).
    pub max_windows: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Minibatch size (sequences).
    pub batch: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Seed.
    pub seed: u64,
}

impl Default for LanguageConfig {
    fn default() -> Self {
        LanguageConfig {
            dim: 32,
            depth: 2,
            heads: 2,
            max_len: 96,
            stride: 64,
            max_windows: 3,
            epochs: 3,
            batch: 16,
            lr: 2e-3,
            seed: 33,
        }
    }
}

// ---------------------------------------------------------------- SCSGuard

/// SCSGuard: bigram embedding + attention + GRU + linear head.
pub struct ScsGuardDetector {
    config: LanguageConfig,
    vocab_size: usize,
    state: Option<ScsGuardModel>,
}

struct ScsGuardModel {
    vocab: BigramVocab,
    embedding: Embedding,
    attention: MultiHeadAttention,
    gru: Gru,
    head: Dense,
}

impl ScsGuardModel {
    fn forward(&self, ids: &[usize]) -> Tensor {
        let x = self.embedding.forward(ids);
        let attended = self.attention.forward(&x, false).add(&x);
        let hidden = self.gru.forward_last(&attended);
        self.head.forward(&hidden)
    }

    fn params(&self) -> Vec<Tensor> {
        let mut p = self.embedding.params();
        p.extend(self.attention.params());
        p.extend(self.gru.params());
        p.extend(self.head.params());
        p
    }
}

impl std::fmt::Debug for ScsGuardDetector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ScsGuardDetector")
    }
}

impl ScsGuardDetector {
    /// Creates an unfitted SCSGuard with a bigram vocabulary of `vocab_size`.
    pub fn new(config: LanguageConfig) -> Self {
        ScsGuardDetector {
            config,
            vocab_size: 512,
            state: None,
        }
    }
}

impl Detector for ScsGuardDetector {
    fn name(&self) -> &str {
        "SCSGuard"
    }

    fn category(&self) -> Category {
        Category::Language
    }

    fn fit(&mut self, codes: &[&[u8]], labels: &[usize]) {
        assert_eq!(codes.len(), labels.len(), "one label per bytecode");
        let mut rng = SplitMix::new(self.config.seed);
        let vocab = BigramVocab::fit(codes, self.vocab_size, self.config.max_len);
        let model = ScsGuardModel {
            embedding: Embedding::new(&mut rng, vocab.len(), self.config.dim),
            attention: MultiHeadAttention::new(&mut rng, self.config.dim, self.config.heads),
            gru: Gru::new(&mut rng, self.config.dim, self.config.dim),
            head: Dense::new(&mut rng, self.config.dim, 2),
            vocab,
        };
        let sequences: Vec<Vec<usize>> = codes.iter().map(|c| model.vocab.encode(c)).collect();
        let mut opt = Adam::new(model.params(), self.config.lr);
        let mut order: Vec<usize> = (0..codes.len()).collect();
        for _ in 0..self.config.epochs {
            rng.shuffle(&mut order);
            for chunk in order.chunks(self.config.batch) {
                let logits: Vec<Tensor> = chunk
                    .iter()
                    .map(|&i| model.forward(&sequences[i]))
                    .collect();
                let batch_labels: Vec<usize> = chunk.iter().map(|&i| labels[i]).collect();
                let loss = Tensor::concat_rows(&logits).cross_entropy_logits(&batch_labels);
                opt.zero_grad();
                loss.backward();
                opt.step();
            }
        }
        self.state = Some(model);
    }

    fn predict(&self, codes: &[&[u8]]) -> Vec<usize> {
        let model = self.state.as_ref().expect("predict before fit");
        codes
            .iter()
            .map(|c| {
                let logits = model.forward(&model.vocab.encode(c)).to_vec();
                usize::from(logits[1] > logits[0])
            })
            .collect()
    }
}

// ----------------------------------------------------- GPT-2 / T5 variants

/// Architecture flavour of a [`TransformerLm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LmArch {
    /// Decoder-style causal attention (GPT-2).
    Gpt2,
    /// Bidirectional encoder (T5).
    T5,
}

/// A transformer language-model classifier (GPT-2α/β, T5α/β).
pub struct TransformerLm {
    name: &'static str,
    arch: LmArch,
    policy: Tokenization,
    config: LanguageConfig,
    state: Option<LmModel>,
}

struct LmModel {
    embedding: Embedding,
    pos: Tensor,
    blocks: Vec<TransformerBlock>,
    head: Dense,
    causal: bool,
}

impl LmModel {
    fn forward(&self, ids: &[usize]) -> Tensor {
        let x = self.embedding.forward(ids);
        let pos = Tensor::new(
            self.pos.to_vec()[..ids.len() * x.shape()[1]].to_vec(),
            &[ids.len(), x.shape()[1]],
            false,
        );
        // Positions participate in training through the stored parameter;
        // slicing is only needed when ids are shorter than max_len.
        let mut h = if ids.len() * x.shape()[1] == self.pos.len() {
            x.add(&self.pos)
        } else {
            x.add(&pos)
        };
        for b in &self.blocks {
            h = b.forward(&h, self.causal);
        }
        let d = h.shape()[1];
        let pooled = h.mean_rows().reshape(&[1, d]);
        self.head.forward(&pooled)
    }

    fn params(&self) -> Vec<Tensor> {
        let mut p = self.embedding.params();
        p.push(self.pos.clone());
        for b in &self.blocks {
            p.extend(b.params());
        }
        p.extend(self.head.params());
        p
    }
}

impl std::fmt::Debug for TransformerLm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TransformerLm({})", self.name)
    }
}

impl TransformerLm {
    /// GPT-2α: causal, truncated sequences.
    pub fn gpt2_alpha(config: LanguageConfig) -> Self {
        let policy = Tokenization::Truncate {
            max_len: config.max_len,
        };
        TransformerLm {
            name: "GPT-2α",
            arch: LmArch::Gpt2,
            policy,
            config,
            state: None,
        }
    }

    /// GPT-2β: causal, sliding-window chunks.
    pub fn gpt2_beta(config: LanguageConfig) -> Self {
        let policy = Tokenization::SlidingWindow {
            window: config.max_len,
            stride: config.stride,
        };
        TransformerLm {
            name: "GPT-2β",
            arch: LmArch::Gpt2,
            policy,
            config,
            state: None,
        }
    }

    /// T5α: bidirectional, truncated sequences.
    pub fn t5_alpha(config: LanguageConfig) -> Self {
        let policy = Tokenization::Truncate {
            max_len: config.max_len,
        };
        TransformerLm {
            name: "T5α",
            arch: LmArch::T5,
            policy,
            config,
            state: None,
        }
    }

    /// T5β: bidirectional, sliding-window chunks.
    pub fn t5_beta(config: LanguageConfig) -> Self {
        let policy = Tokenization::SlidingWindow {
            window: config.max_len,
            stride: config.stride,
        };
        TransformerLm {
            name: "T5β",
            arch: LmArch::T5,
            policy,
            config,
            state: None,
        }
    }
}

impl Detector for TransformerLm {
    fn name(&self) -> &str {
        self.name
    }

    fn category(&self) -> Category {
        Category::Language
    }

    fn fit(&mut self, codes: &[&[u8]], labels: &[usize]) {
        assert_eq!(codes.len(), labels.len(), "one label per bytecode");
        let mut rng = SplitMix::new(self.config.seed);
        let model = LmModel {
            embedding: Embedding::new(&mut rng, VOCAB_SIZE, self.config.dim),
            pos: normal_init(&mut rng, &[self.config.max_len, self.config.dim], 0.02),
            blocks: (0..self.config.depth)
                .map(|_| {
                    TransformerBlock::new(
                        &mut rng,
                        self.config.dim,
                        self.config.heads,
                        self.config.dim * 2,
                    )
                })
                .collect(),
            head: Dense::new(&mut rng, self.config.dim, 2),
            causal: self.arch == LmArch::Gpt2,
        };
        // One (sequence, label) pair per window; β caps windows per contract.
        let mut sequences: Vec<(Vec<usize>, usize)> = Vec::new();
        for (code, &label) in codes.iter().zip(labels) {
            for w in tokenize(code, self.policy)
                .into_iter()
                .take(self.config.max_windows)
            {
                sequences.push((w, label));
            }
        }
        let mut opt = Adam::new(model.params(), self.config.lr);
        let mut order: Vec<usize> = (0..sequences.len()).collect();
        for _ in 0..self.config.epochs {
            rng.shuffle(&mut order);
            for chunk in order.chunks(self.config.batch) {
                let logits: Vec<Tensor> = chunk
                    .iter()
                    .map(|&i| model.forward(&sequences[i].0))
                    .collect();
                let batch_labels: Vec<usize> = chunk.iter().map(|&i| sequences[i].1).collect();
                let loss = Tensor::concat_rows(&logits).cross_entropy_logits(&batch_labels);
                opt.zero_grad();
                loss.backward();
                opt.step();
            }
        }
        self.state = Some(model);
    }

    fn predict(&self, codes: &[&[u8]]) -> Vec<usize> {
        let model = self.state.as_ref().expect("predict before fit");
        codes
            .iter()
            .map(|c| {
                // β averages logits over the contract's windows.
                let mut sum = [0.0f32; 2];
                let windows = tokenize(c, self.policy);
                let n = windows.len().min(self.config.max_windows.max(1));
                for w in windows.into_iter().take(n) {
                    let l = model.forward(&w).to_vec();
                    sum[0] += l[0];
                    sum[1] += l[1];
                }
                usize::from(sum[1] > sum[0])
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phishinghook_data::{Corpus, CorpusConfig};

    fn fast_config() -> LanguageConfig {
        LanguageConfig {
            max_len: 48,
            stride: 32,
            epochs: 8,
            lr: 3e-3,
            ..Default::default()
        }
    }

    fn corpus_split() -> (Vec<Vec<u8>>, Vec<usize>) {
        // 120 train / 40 test is the smallest split where every language
        // model still clears the beats-chance bar with margin; larger
        // fixtures only rescale the same deterministic check.
        let corpus = Corpus::generate(&CorpusConfig {
            n_contracts: 160,
            seed: 6,
            ..Default::default()
        });
        (
            corpus.records.iter().map(|r| r.bytecode.clone()).collect(),
            corpus.records.iter().map(|r| r.label.as_index()).collect(),
        )
    }

    fn check_beats_chance(det: &mut dyn Detector) {
        let (codes, labels) = corpus_split();
        let refs: Vec<&[u8]> = codes.iter().map(Vec::as_slice).collect();
        let (train_x, test_x) = refs.split_at(120);
        let (train_y, test_y) = labels.split_at(120);
        det.fit(train_x, train_y);
        let preds = det.predict(test_x);
        let correct = preds.iter().zip(test_y).filter(|(a, b)| a == b).count();
        let acc = correct as f64 / test_y.len() as f64;
        assert!(acc > 0.55, "{} accuracy {acc}", det.name());
    }

    #[test]
    fn scsguard_beats_chance() {
        check_beats_chance(&mut ScsGuardDetector::new(fast_config()));
    }

    #[test]
    fn gpt2_alpha_beats_chance() {
        check_beats_chance(&mut TransformerLm::gpt2_alpha(fast_config()));
    }

    #[test]
    fn t5_alpha_beats_chance() {
        check_beats_chance(&mut TransformerLm::t5_alpha(fast_config()));
    }

    #[test]
    fn beta_variants_train_and_predict() {
        // β is heavier; just verify the full path runs and is deterministic.
        let (codes, labels) = corpus_split();
        let refs: Vec<&[u8]> = codes.iter().take(30).map(Vec::as_slice).collect();
        let labels = &labels[..30];
        let mut det = TransformerLm::gpt2_beta(LanguageConfig {
            max_len: 32,
            stride: 24,
            epochs: 1,
            max_windows: 2,
            ..Default::default()
        });
        det.fit(&refs, labels);
        let p1 = det.predict(&refs);
        let p2 = det.predict(&refs);
        assert_eq!(p1, p2);
        assert_eq!(p1.len(), 30);
    }

    #[test]
    fn names_match_table2() {
        let cfg = fast_config();
        assert_eq!(TransformerLm::gpt2_alpha(cfg.clone()).name(), "GPT-2α");
        assert_eq!(TransformerLm::gpt2_beta(cfg.clone()).name(), "GPT-2β");
        assert_eq!(TransformerLm::t5_alpha(cfg.clone()).name(), "T5α");
        assert_eq!(TransformerLm::t5_beta(cfg).name(), "T5β");
    }
}
