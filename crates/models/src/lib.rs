#![warn(missing_docs)]

//! The 16 PhishingHook detection models (paper §IV-B, Table II).
//!
//! | Category | Models |
//! |----------|--------|
//! | Histogram (†) | Random Forest, k-NN, SVM, Logistic Regression, XGBoost, LightGBM, CatBoost |
//! | Vision (‡) | ViT+R2D2, ECA+EfficientNet, ViT+Freq |
//! | Language (*) | SCSGuard, GPT-2α, GPT-2β, T5α, T5β |
//! | Vulnerability (§) | ESCORT |
//!
//! All models implement [`Detector`] over raw deployed bytecode and own
//! their feature extraction, so training-set-derived state (vocabularies,
//! frequency tables) never leaks from test folds.

pub mod detector;
pub mod ensemble;
pub mod escort_model;
pub mod hsc;
pub mod language;
pub mod scanner;
pub mod scoring;
pub mod spec;
pub mod vision;

pub use detector::{Category, Detector, FoldFeatures, HistogramFeatures, TraceFeatures};
pub use ensemble::EnsembleDetector;
pub use escort_model::{EscortConfig, EscortDetector};
#[allow(deprecated)]
pub use hsc::all_hscs;
pub use hsc::{HscDetector, HscModel};
pub use language::{LanguageConfig, ScsGuardDetector, TransformerLm};
pub use scanner::{AnyDetector, ResolveError, ScanReport, ScanRequest, Scanner, Target, Verdict};
#[allow(deprecated)]
pub use scoring::ScoringEngine;
pub use spec::{
    DetectorRegistry, DetectorSpec, FamilyInfo, FeatureSet, HscKind, HscSpec, SpecError, Vote,
    HSC_KINDS,
};
pub use vision::{VisionConfig, VisionDetector};

/// Scaling preset controlling the deep models' capacity and training budget
/// (the paper's GPU-scale settings are impractical on CPU; see DESIGN.md §2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preset {
    /// Small models, few epochs — CI and quick experiments.
    Fast,
    /// The defaults used by the experiment binaries.
    Standard,
}

impl Preset {
    /// Vision hyperparameters for the transformer backbones (ViT+R2D2,
    /// ViT+Freq). ViTs prefer a gentler learning rate than the CNN.
    pub fn vision(self, seed: u64) -> VisionConfig {
        match self {
            Preset::Fast => VisionConfig {
                epochs: 10,
                lr: 3e-3,
                seed,
                ..VisionConfig::default()
            },
            Preset::Standard => VisionConfig {
                epochs: 8,
                lr: 3e-3,
                seed,
                ..VisionConfig::default()
            },
        }
    }

    /// Vision hyperparameters for the CNN backbone (ECA+EfficientNet),
    /// which trains best with a higher learning rate.
    pub fn vision_cnn(self, seed: u64) -> VisionConfig {
        match self {
            Preset::Fast => VisionConfig {
                epochs: 12,
                lr: 1e-2,
                seed,
                ..VisionConfig::default()
            },
            Preset::Standard => VisionConfig {
                epochs: 10,
                lr: 8e-3,
                seed,
                ..VisionConfig::default()
            },
        }
    }

    /// Language hyperparameters for this preset.
    pub fn language(self, seed: u64) -> LanguageConfig {
        match self {
            Preset::Fast => LanguageConfig {
                max_len: 64,
                stride: 48,
                epochs: 6,
                lr: 3e-3,
                seed,
                ..LanguageConfig::default()
            },
            Preset::Standard => LanguageConfig {
                epochs: 4,
                seed,
                ..LanguageConfig::default()
            },
        }
    }

    /// ESCORT hyperparameters for this preset.
    pub fn escort(self, seed: u64) -> EscortConfig {
        match self {
            Preset::Fast => EscortConfig {
                pretrain_epochs: 3,
                transfer_epochs: 3,
                seed,
                ..EscortConfig::default()
            },
            Preset::Standard => EscortConfig {
                seed,
                ..EscortConfig::default()
            },
        }
    }
}

/// Builds all 16 detectors in the paper's Table II order.
pub fn all_detectors(preset: Preset, seed: u64) -> Vec<Box<dyn Detector>> {
    let registry = DetectorRegistry::global();
    let mut out: Vec<Box<dyn Detector>> = Vec::with_capacity(16);
    for spec in registry.hsc_specs() {
        out.push(Box::new(registry.build(&spec, seed)));
    }
    out.push(Box::new(VisionDetector::eca_efficientnet(
        preset.vision_cnn(seed ^ 0x10),
    )));
    out.push(Box::new(VisionDetector::vit_r2d2(
        preset.vision(seed ^ 0x11),
    )));
    out.push(Box::new(VisionDetector::vit_freq(
        preset.vision(seed ^ 0x12),
    )));
    out.push(Box::new(ScsGuardDetector::new(
        preset.language(seed ^ 0x20),
    )));
    out.push(Box::new(TransformerLm::gpt2_alpha(
        preset.language(seed ^ 0x21),
    )));
    out.push(Box::new(TransformerLm::t5_alpha(
        preset.language(seed ^ 0x22),
    )));
    out.push(Box::new(TransformerLm::gpt2_beta(
        preset.language(seed ^ 0x23),
    )));
    out.push(Box::new(TransformerLm::t5_beta(
        preset.language(seed ^ 0x24),
    )));
    out.push(Box::new(EscortDetector::new(preset.escort(seed ^ 0x30))));
    out
}

/// Builds one detector by its Table II name (`None` for unknown names).
#[deprecated(
    since = "0.1.0",
    note = "parse a `DetectorSpec` and build it via `DetectorRegistry::global().build` \
            (deep models remain reachable through `all_detectors`)"
)]
pub fn detector_by_name(name: &str, preset: Preset, seed: u64) -> Option<Box<dyn Detector>> {
    all_detectors(preset, seed)
        .into_iter()
        .find(|d| d.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_models_in_table_order() {
        let detectors = all_detectors(Preset::Fast, 1);
        assert_eq!(detectors.len(), 16);
        let names: Vec<&str> = detectors.iter().map(|d| d.name()).collect();
        assert_eq!(
            names,
            vec![
                "Random Forest",
                "k-NN",
                "SVM",
                "Logistic Regression",
                "XGBoost",
                "LightGBM",
                "CatBoost",
                "ECA+EfficientNet",
                "ViT+R2D2",
                "ViT+Freq",
                "SCSGuard",
                "GPT-2α",
                "T5α",
                "GPT-2β",
                "T5β",
                "ESCORT",
            ]
        );
    }

    #[test]
    fn category_counts_match_paper() {
        let detectors = all_detectors(Preset::Fast, 1);
        let count = |c: Category| detectors.iter().filter(|d| d.category() == c).count();
        assert_eq!(count(Category::Histogram), 7);
        assert_eq!(count(Category::Vision), 3);
        assert_eq!(count(Category::Language), 5);
        assert_eq!(count(Category::VulnerabilityDetection), 1);
    }

    #[test]
    fn lookup_by_name() {
        // The non-deprecated spelling of the old `detector_by_name`: find a
        // model in the Table II roster by its display name.
        let find = |name: &str| {
            all_detectors(Preset::Fast, 1)
                .into_iter()
                .find(|d| d.name() == name)
        };
        assert!(find("SCSGuard").is_some());
        assert!(find("BERT").is_none());
    }

    #[test]
    fn registry_hsc_specs_give_table2_names() {
        // The registry's hsc_specs() is the canonical source of the seven
        // HSCs (the deprecated all_hscs is a shim over it); its names must
        // stay in Table II order.
        let registry = DetectorRegistry::global();
        let names: Vec<String> = registry
            .hsc_specs()
            .iter()
            .map(|s| registry.build(s, 7).name().to_owned())
            .collect();
        assert_eq!(
            names,
            vec![
                "Random Forest",
                "k-NN",
                "SVM",
                "Logistic Regression",
                "XGBoost",
                "LightGBM",
                "CatBoost"
            ]
        );
    }
}
