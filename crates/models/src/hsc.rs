//! The seven histogram similarity classifiers (HSCs).
//!
//! Opcode histograms (unnormalized, training-set vocabulary) feeding Random
//! Forest, k-NN, SVM, Logistic Regression, XGBoost, LightGBM and CatBoost —
//! the paper's best-performing category (≈91.5% average accuracy, Random
//! Forest best overall at 93.63%).

use crate::detector::{Category, Detector};
use phishinghook_features::HistogramExtractor;
use phishinghook_ml::classical::forest::ForestConfig;
use phishinghook_ml::classical::gbdt::GbdtConfig;
use phishinghook_ml::classical::svm::RbfSvmConfig;
use phishinghook_ml::{
    BoostVariant, Classifier, GradientBoosting, KNearestNeighbors, LogisticRegression,
    RandomForest, RbfSvm,
};

/// Which classical model backs an [`HscDetector`].
#[derive(Debug)]
pub enum HscModel {
    /// Bagged random forest.
    RandomForest(RandomForest),
    /// k-nearest neighbours.
    Knn(KNearestNeighbors),
    /// RBF-kernel SVM (random Fourier features).
    Svm(RbfSvm),
    /// L2 logistic regression.
    LogisticRegression(LogisticRegression),
    /// Gradient boosting (exact / histogram / oblivious variants).
    Boosted(GradientBoosting),
}

impl HscModel {
    fn as_classifier(&self) -> &dyn Classifier {
        match self {
            HscModel::RandomForest(m) => m,
            HscModel::Knn(m) => m,
            HscModel::Svm(m) => m,
            HscModel::LogisticRegression(m) => m,
            HscModel::Boosted(m) => m,
        }
    }

    fn as_classifier_mut(&mut self) -> &mut dyn Classifier {
        match self {
            HscModel::RandomForest(m) => m,
            HscModel::Knn(m) => m,
            HscModel::Svm(m) => m,
            HscModel::LogisticRegression(m) => m,
            HscModel::Boosted(m) => m,
        }
    }
}

/// A histogram similarity classifier: histogram extraction + classical model.
#[derive(Debug)]
pub struct HscDetector {
    name: &'static str,
    model: HscModel,
    extractor: Option<HistogramExtractor>,
}

impl HscDetector {
    /// Random Forest HSC (the paper's best model).
    pub fn random_forest(seed: u64) -> Self {
        HscDetector {
            name: "Random Forest",
            model: HscModel::RandomForest(RandomForest::new(ForestConfig {
                n_trees: 100,
                max_depth: 20,
                seed,
                ..ForestConfig::default()
            })),
            extractor: None,
        }
    }

    /// k-NN HSC.
    pub fn knn() -> Self {
        HscDetector {
            name: "k-NN",
            model: HscModel::Knn(KNearestNeighbors::new(5)),
            extractor: None,
        }
    }

    /// SVM HSC.
    pub fn svm(seed: u64) -> Self {
        HscDetector {
            name: "SVM",
            model: HscModel::Svm(RbfSvm::new(RbfSvmConfig {
                seed,
                ..RbfSvmConfig::default()
            })),
            extractor: None,
        }
    }

    /// Logistic-regression HSC.
    pub fn logistic_regression() -> Self {
        HscDetector {
            name: "Logistic Regression",
            model: HscModel::LogisticRegression(LogisticRegression::with_defaults()),
            extractor: None,
        }
    }

    /// XGBoost-style HSC (exact greedy boosting).
    pub fn xgboost(seed: u64) -> Self {
        HscDetector {
            name: "XGBoost",
            model: HscModel::Boosted(GradientBoosting::new(GbdtConfig {
                variant: BoostVariant::Exact,
                seed,
                ..GbdtConfig::default()
            })),
            extractor: None,
        }
    }

    /// LightGBM-style HSC (histogram leaf-wise boosting).
    pub fn lightgbm(seed: u64) -> Self {
        HscDetector {
            name: "LightGBM",
            model: HscModel::Boosted(GradientBoosting::new(GbdtConfig {
                variant: BoostVariant::Histogram,
                seed,
                ..GbdtConfig::default()
            })),
            extractor: None,
        }
    }

    /// CatBoost-style HSC (oblivious-tree boosting).
    pub fn catboost(seed: u64) -> Self {
        HscDetector {
            name: "CatBoost",
            model: HscModel::Boosted(GradientBoosting::new(GbdtConfig {
                variant: BoostVariant::Oblivious,
                max_depth: 6,
                seed,
                ..GbdtConfig::default()
            })),
            extractor: None,
        }
    }

    /// The fitted histogram extractor (for interpretability tooling).
    pub fn extractor(&self) -> Option<&HistogramExtractor> {
        self.extractor.as_ref()
    }

    /// The backing model (for interpretability tooling — Fig. 9's SHAP
    /// analysis walks the random forest's trees).
    pub fn model(&self) -> &HscModel {
        &self.model
    }
}

impl Detector for HscDetector {
    fn name(&self) -> &str {
        self.name
    }

    fn category(&self) -> Category {
        Category::Histogram
    }

    fn fit(&mut self, codes: &[&[u8]], labels: &[usize]) {
        assert_eq!(codes.len(), labels.len(), "one label per bytecode");
        let extractor = HistogramExtractor::fit(codes);
        let x = extractor.transform(codes);
        self.model.as_classifier_mut().fit(&x, labels);
        self.extractor = Some(extractor);
    }

    fn predict(&self, codes: &[&[u8]]) -> Vec<usize> {
        let extractor = self.extractor.as_ref().expect("predict before fit");
        let x = extractor.transform(codes);
        self.model.as_classifier().predict(&x)
    }

    fn fit_fold(&mut self, fold: &crate::FoldFeatures<'_>, labels: &[usize]) {
        assert_eq!(
            fold.train_codes().len(),
            labels.len(),
            "one label per bytecode"
        );
        // All seven HSCs consume the identical histogram matrices; the first
        // one to arrive extracts, the rest reuse.
        let features = fold.histogram();
        self.model.as_classifier_mut().fit(&features.train, labels);
        self.extractor = Some(features.extractor.clone());
    }

    fn predict_fold(&self, fold: &crate::FoldFeatures<'_>) -> Vec<usize> {
        let fitted = self.extractor.as_ref().expect("predict before fit");
        let features = fold.histogram();
        // The fold's matrices are only valid for the vocabulary this model
        // was trained on; a fit_fold/predict_fold fold mismatch would
        // otherwise feed the model silently permuted columns.
        assert_eq!(
            fitted, &features.extractor,
            "predict_fold called with a different fold than fit_fold"
        );
        self.model.as_classifier().predict(&features.test)
    }
}

// --- Persistence -----------------------------------------------------------

use phishinghook_persist::{PersistError, Reader, Restore, Snapshot, Writer};

/// Envelope kind tag of [`HscDetector`] snapshots (see
/// `phishinghook_persist`'s crate docs for the envelope layout).
pub const SNAPSHOT_KIND: &str = "hsc-detector";

/// The seven HSC names in Table II order (the only names a snapshot may
/// carry; restoring interns back to these statics).
const HSC_NAMES: [&str; 7] = [
    "Random Forest",
    "k-NN",
    "SVM",
    "Logistic Regression",
    "XGBoost",
    "LightGBM",
    "CatBoost",
];

impl Snapshot for HscModel {
    fn snapshot(&self, w: &mut Writer) {
        match self {
            HscModel::RandomForest(m) => {
                w.put_u8(0);
                m.snapshot(w);
            }
            HscModel::Knn(m) => {
                w.put_u8(1);
                m.snapshot(w);
            }
            HscModel::Svm(m) => {
                w.put_u8(2);
                m.snapshot(w);
            }
            HscModel::LogisticRegression(m) => {
                w.put_u8(3);
                m.snapshot(w);
            }
            HscModel::Boosted(m) => {
                w.put_u8(4);
                m.snapshot(w);
            }
        }
    }
}

impl Restore for HscModel {
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        match r.take_u8()? {
            0 => Ok(HscModel::RandomForest(RandomForest::restore(r)?)),
            1 => Ok(HscModel::Knn(KNearestNeighbors::restore(r)?)),
            2 => Ok(HscModel::Svm(RbfSvm::restore(r)?)),
            3 => Ok(HscModel::LogisticRegression(LogisticRegression::restore(
                r,
            )?)),
            4 => Ok(HscModel::Boosted(GradientBoosting::restore(r)?)),
            tag => Err(PersistError::Malformed(format!(
                "unknown HSC model tag {tag:#04x}"
            ))),
        }
    }
}

impl Snapshot for HscDetector {
    fn snapshot(&self, w: &mut Writer) {
        w.put_str(self.name);
        self.model.snapshot(w);
        self.extractor.snapshot(w);
    }
}

impl Restore for HscDetector {
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let stored = r.take_str()?;
        let name = HSC_NAMES
            .into_iter()
            .find(|&n| n == stored)
            .ok_or_else(|| PersistError::Malformed(format!("unknown HSC name `{stored}`")))?;
        let model = HscModel::restore(r)?;
        let extractor: Option<HistogramExtractor> = Option::restore(r)?;
        // Cross-check the model's feature width against the extractor it is
        // paired with: a mismatch can never come from `fit`, and scoring
        // through it would index feature rows out of bounds at request time
        // instead of failing here at load time.
        if let Some(ex) = &extractor {
            let width = ex.n_features();
            let consistent = match &model {
                HscModel::RandomForest(m) => m.trees().iter().all(|t| t.n_features() == width),
                HscModel::Knn(m) => m.n_features() == width,
                HscModel::Svm(m) => m.n_features() == Some(width),
                HscModel::LogisticRegression(m) => m.weights().len() == width,
                HscModel::Boosted(m) => m.max_feature_index().is_none_or(|f| f < width),
            };
            if !consistent {
                return Err(PersistError::Malformed(format!(
                    "`{name}` model does not match its {width}-column extractor"
                )));
            }
        }
        Ok(HscDetector {
            name,
            model,
            extractor,
        })
    }
}

impl HscDetector {
    /// `true` once [`Detector::fit`] (or a fitted snapshot) has produced a
    /// histogram vocabulary.
    pub fn is_fitted(&self) -> bool {
        self.extractor.is_some()
    }

    /// Class-1 probabilities on an already-extracted feature matrix (rows
    /// from this detector's [`HscDetector::extractor`]). This is the serving
    /// hot path: combined with
    /// [`HistogramExtractor::transform_into`] it scores a batch without
    /// allocating per-contract rows.
    pub fn predict_proba(&self, x: &phishinghook_ml::Matrix) -> Vec<f64> {
        self.model.as_classifier().predict_proba(x)
    }

    /// Serializes the fitted detector into a versioned snapshot envelope.
    pub fn to_snapshot_bytes(&self) -> Vec<u8> {
        phishinghook_persist::to_envelope(SNAPSHOT_KIND, self)
    }

    /// Restores a detector from snapshot bytes.
    ///
    /// # Errors
    /// Any [`PersistError`]: wrong magic/kind, version skew, corruption
    /// (checksum), truncation, or a malformed payload.
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<Self, PersistError> {
        phishinghook_persist::from_envelope(SNAPSHOT_KIND, bytes)
    }

    /// Saves the detector snapshot to a file.
    ///
    /// # Errors
    /// [`PersistError::Io`] on filesystem failure.
    pub fn save_snapshot(&self, path: impl AsRef<std::path::Path>) -> Result<(), PersistError> {
        phishinghook_persist::save_file(path, SNAPSHOT_KIND, self)
    }

    /// Loads a detector snapshot from a file.
    ///
    /// # Errors
    /// [`PersistError::Io`] when the file cannot be read, otherwise any
    /// decode error from [`HscDetector::from_snapshot_bytes`].
    pub fn load_snapshot(path: impl AsRef<std::path::Path>) -> Result<Self, PersistError> {
        phishinghook_persist::load_file(path, SNAPSHOT_KIND)
    }
}

/// All seven HSC detectors in the paper's Table II order.
///
/// Kept for compatibility; new code should build from specs:
/// `DetectorRegistry::global().hsc_specs()` produces the same seven
/// detectors (bit-identically, given the same seed).
#[deprecated(
    since = "0.1.0",
    note = "build from specs via `DetectorRegistry::global()` — \
            `hsc_specs()` reproduces this list bit-for-bit"
)]
pub fn all_hscs(seed: u64) -> Vec<HscDetector> {
    let registry = crate::spec::DetectorRegistry::global();
    registry
        .hsc_specs()
        .iter()
        .map(|spec| match registry.build(spec, seed) {
            crate::scanner::AnyDetector::Hsc(det) => det,
            crate::scanner::AnyDetector::Ensemble(_) => unreachable!("hsc_specs are singles"),
        })
        .collect()
}

/// Test helper shared across this crate's test modules: all seven HSCs via
/// the registry (the non-deprecated spelling of the old `all_hscs`).
#[cfg(test)]
pub(crate) fn registry_hscs(seed: u64) -> Vec<HscDetector> {
    let registry = crate::spec::DetectorRegistry::global();
    registry
        .hsc_specs()
        .iter()
        .map(|spec| match registry.build(spec, seed) {
            crate::scanner::AnyDetector::Hsc(det) => det,
            crate::scanner::AnyDetector::Ensemble(_) => unreachable!("hsc_specs are singles"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use phishinghook_data::{Corpus, CorpusConfig};

    fn tiny_corpus() -> (Vec<Vec<u8>>, Vec<usize>) {
        let corpus = Corpus::generate(&CorpusConfig {
            n_contracts: 160,
            seed: 3,
            ..Default::default()
        });
        let codes: Vec<Vec<u8>> = corpus.records.iter().map(|r| r.bytecode.clone()).collect();
        let labels: Vec<usize> = corpus.records.iter().map(|r| r.label.as_index()).collect();
        (codes, labels)
    }

    #[test]
    fn every_hsc_beats_chance_on_the_corpus() {
        let (codes, labels) = tiny_corpus();
        let refs: Vec<&[u8]> = codes.iter().map(Vec::as_slice).collect();
        let (train_x, test_x) = refs.split_at(120);
        let (train_y, test_y) = labels.split_at(120);
        for mut det in registry_hscs(7) {
            det.fit(train_x, train_y);
            let preds = det.predict(test_x);
            let correct = preds.iter().zip(test_y).filter(|(a, b)| a == b).count();
            let acc = correct as f64 / test_y.len() as f64;
            assert!(acc > 0.6, "{} accuracy {acc}", det.name());
        }
    }

    #[test]
    fn names_match_table2() {
        let dets = registry_hscs(1);
        let names: Vec<&str> = dets.iter().map(|d| d.name()).collect();
        assert_eq!(
            names,
            vec![
                "Random Forest",
                "k-NN",
                "SVM",
                "Logistic Regression",
                "XGBoost",
                "LightGBM",
                "CatBoost"
            ]
        );
    }

    #[test]
    fn category_is_histogram() {
        assert_eq!(HscDetector::knn().category(), Category::Histogram);
    }

    #[test]
    #[should_panic(expected = "predict before fit")]
    fn predict_before_fit_panics() {
        let det = HscDetector::knn();
        let _ = det.predict(&[&[0x60, 0x80][..]]);
    }

    #[test]
    fn snapshot_with_mismatched_extractor_is_rejected() {
        // A model paired with an extractor of a different feature width can
        // never come from `fit`; restoring one must fail at load time, not
        // index out of bounds at scoring time.
        let (codes, labels) = tiny_corpus();
        let refs: Vec<&[u8]> = codes.iter().map(Vec::as_slice).collect();
        let mut det = HscDetector::random_forest(7);
        det.fit(&refs[..40], &labels[..40]);
        // Swap in a vocabulary fitted on one trivial bytecode (far fewer
        // columns than the forest was trained on).
        let narrow = phishinghook_features::HistogramExtractor::fit(&[&[0x60, 0x80][..]]);
        assert_ne!(narrow.n_features(), det.extractor().unwrap().n_features());
        det.extractor = Some(narrow);
        let err = HscDetector::from_snapshot_bytes(&det.to_snapshot_bytes()).unwrap_err();
        assert!(
            matches!(err, phishinghook_persist::PersistError::Malformed(_)),
            "{err:?}"
        );
    }

    #[test]
    fn fold_sharing_matches_per_detector_extraction() {
        // Training through the shared FoldFeatures store must produce the
        // same predictions as each detector extracting for itself.
        let (codes, labels) = tiny_corpus();
        let refs: Vec<&[u8]> = codes.iter().map(Vec::as_slice).collect();
        let (train_x, test_x) = refs.split_at(120);
        let (train_y, _) = labels.split_at(120);
        let fold = crate::FoldFeatures::new(train_x, test_x);
        for (mut shared, mut solo) in registry_hscs(7).into_iter().zip(registry_hscs(7)) {
            shared.fit_fold(&fold, train_y);
            solo.fit(train_x, train_y);
            assert_eq!(
                shared.predict_fold(&fold),
                solo.predict(test_x),
                "{}",
                solo.name()
            );
            // The fitted extractor is the shared one, cloned per detector.
            assert_eq!(
                shared.extractor().unwrap().columns(),
                solo.extractor().unwrap().columns()
            );
        }
    }
}
