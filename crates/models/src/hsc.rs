//! The seven histogram similarity classifiers (HSCs).
//!
//! Opcode histograms (unnormalized, training-set vocabulary) feeding Random
//! Forest, k-NN, SVM, Logistic Regression, XGBoost, LightGBM and CatBoost —
//! the paper's best-performing category (≈91.5% average accuracy, Random
//! Forest best overall at 93.63%).

use crate::detector::{Category, Detector};
use crate::spec::FeatureSet;
use phishinghook_features::{HistogramExtractor, TraceExtractor};
use phishinghook_ml::classical::forest::ForestConfig;
use phishinghook_ml::classical::gbdt::GbdtConfig;
use phishinghook_ml::classical::svm::RbfSvmConfig;
use phishinghook_ml::{
    BoostVariant, Classifier, GradientBoosting, KNearestNeighbors, LogisticRegression, Matrix,
    RandomForest, RbfSvm,
};
use std::borrow::Cow;

/// Column-concatenates two equally-tall matrices (`a`'s columns first) —
/// how the `hist+trace` feature set combines its channels.
pub(crate) fn hstack(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.rows(), b.rows(), "channel row counts must match");
    let mut out = Matrix::zeros(a.rows(), a.cols() + b.cols());
    for i in 0..a.rows() {
        let (left, right) = out.row_mut(i).split_at_mut(a.cols());
        left.copy_from_slice(a.row(i));
        right.copy_from_slice(b.row(i));
    }
    out
}

/// Which classical model backs an [`HscDetector`].
#[derive(Debug)]
pub enum HscModel {
    /// Bagged random forest.
    RandomForest(RandomForest),
    /// k-nearest neighbours.
    Knn(KNearestNeighbors),
    /// RBF-kernel SVM (random Fourier features).
    Svm(RbfSvm),
    /// L2 logistic regression.
    LogisticRegression(LogisticRegression),
    /// Gradient boosting (exact / histogram / oblivious variants).
    Boosted(GradientBoosting),
}

impl HscModel {
    fn as_classifier(&self) -> &dyn Classifier {
        match self {
            HscModel::RandomForest(m) => m,
            HscModel::Knn(m) => m,
            HscModel::Svm(m) => m,
            HscModel::LogisticRegression(m) => m,
            HscModel::Boosted(m) => m,
        }
    }

    fn as_classifier_mut(&mut self) -> &mut dyn Classifier {
        match self {
            HscModel::RandomForest(m) => m,
            HscModel::Knn(m) => m,
            HscModel::Svm(m) => m,
            HscModel::LogisticRegression(m) => m,
            HscModel::Boosted(m) => m,
        }
    }
}

/// A histogram similarity classifier: feature extraction + classical model.
///
/// By default the features are the paper's static opcode histograms; via
/// [`HscDetector::with_features`] (or a `features=` spec option) the same
/// model can instead train on dynamic execution-trace features, or on both
/// channels column-concatenated.
#[derive(Debug)]
pub struct HscDetector {
    name: &'static str,
    model: HscModel,
    extractor: Option<HistogramExtractor>,
    features: FeatureSet,
    trace: Option<TraceExtractor>,
    /// Score through the model's quantized mirror when it has one (tree
    /// models; default on). Runtime execution config, not model identity:
    /// never persisted, and snapshots restore with the default.
    quantize: bool,
}

impl HscDetector {
    /// Random Forest HSC (the paper's best model).
    pub fn random_forest(seed: u64) -> Self {
        HscDetector {
            name: "Random Forest",
            model: HscModel::RandomForest(RandomForest::new(ForestConfig {
                n_trees: 100,
                max_depth: 20,
                seed,
                ..ForestConfig::default()
            })),
            extractor: None,
            features: FeatureSet::Histogram,
            trace: None,
            quantize: true,
        }
    }

    /// k-NN HSC.
    pub fn knn() -> Self {
        HscDetector {
            name: "k-NN",
            model: HscModel::Knn(KNearestNeighbors::new(5)),
            extractor: None,
            features: FeatureSet::Histogram,
            trace: None,
            quantize: true,
        }
    }

    /// SVM HSC.
    pub fn svm(seed: u64) -> Self {
        HscDetector {
            name: "SVM",
            model: HscModel::Svm(RbfSvm::new(RbfSvmConfig {
                seed,
                ..RbfSvmConfig::default()
            })),
            extractor: None,
            features: FeatureSet::Histogram,
            trace: None,
            quantize: true,
        }
    }

    /// Logistic-regression HSC.
    pub fn logistic_regression() -> Self {
        HscDetector {
            name: "Logistic Regression",
            model: HscModel::LogisticRegression(LogisticRegression::with_defaults()),
            extractor: None,
            features: FeatureSet::Histogram,
            trace: None,
            quantize: true,
        }
    }

    /// XGBoost-style HSC (exact greedy boosting).
    pub fn xgboost(seed: u64) -> Self {
        HscDetector {
            name: "XGBoost",
            model: HscModel::Boosted(GradientBoosting::new(GbdtConfig {
                variant: BoostVariant::Exact,
                seed,
                ..GbdtConfig::default()
            })),
            extractor: None,
            features: FeatureSet::Histogram,
            trace: None,
            quantize: true,
        }
    }

    /// LightGBM-style HSC (histogram leaf-wise boosting).
    pub fn lightgbm(seed: u64) -> Self {
        HscDetector {
            name: "LightGBM",
            model: HscModel::Boosted(GradientBoosting::new(GbdtConfig {
                variant: BoostVariant::Histogram,
                seed,
                ..GbdtConfig::default()
            })),
            extractor: None,
            features: FeatureSet::Histogram,
            trace: None,
            quantize: true,
        }
    }

    /// CatBoost-style HSC (oblivious-tree boosting).
    pub fn catboost(seed: u64) -> Self {
        HscDetector {
            name: "CatBoost",
            model: HscModel::Boosted(GradientBoosting::new(GbdtConfig {
                variant: BoostVariant::Oblivious,
                max_depth: 6,
                seed,
                ..GbdtConfig::default()
            })),
            extractor: None,
            features: FeatureSet::Histogram,
            trace: None,
            quantize: true,
        }
    }

    /// The fitted histogram extractor (for interpretability tooling).
    pub fn extractor(&self) -> Option<&HistogramExtractor> {
        self.extractor.as_ref()
    }

    /// The backing model (for interpretability tooling — Fig. 9's SHAP
    /// analysis walks the random forest's trees).
    pub fn model(&self) -> &HscModel {
        &self.model
    }

    /// Sets the feature channels this detector trains and scores on
    /// (builder-style — the registry applies a spec's `features=` option
    /// here). Clears any previously fitted extraction state.
    pub fn with_features(mut self, features: FeatureSet) -> Self {
        self.features = features;
        self.extractor = None;
        self.trace = None;
        self
    }

    /// The feature channels this detector trains and scores on.
    pub fn features(&self) -> FeatureSet {
        self.features
    }

    /// Enables or disables the quantized scoring path (builder-style — the
    /// registry applies a spec's `quantize=` option here). Unlike
    /// [`HscDetector::with_features`] this is pure execution config: it
    /// does not clear fitted state, so it can toggle a loaded snapshot.
    pub fn with_quantize(mut self, quantize: bool) -> Self {
        self.quantize = quantize;
        self
    }

    /// Whether this detector scores through the quantized mirror when the
    /// backing model has one.
    pub fn quantize(&self) -> bool {
        self.quantize
    }

    /// Widest per-feature bin count of the backing model's quantized
    /// mirror; `None` for non-tree models or before fit.
    pub fn quant_bins(&self) -> Option<usize> {
        match &self.model {
            HscModel::RandomForest(m) => m.quant_bins(),
            HscModel::Boosted(m) => m.quant_bins(),
            _ => None,
        }
    }

    /// The trace extractor fitted alongside the model (`None` until fit,
    /// or when the feature set carries no trace channel).
    pub fn trace_extractor(&self) -> Option<&TraceExtractor> {
        self.trace.as_ref()
    }

    /// Width of this detector's fitted feature rows (the sum of its
    /// channels' column counts).
    ///
    /// # Panics
    /// Panics when called before [`Detector::fit`].
    pub fn n_features(&self) -> usize {
        let hist = || {
            self.extractor
                .as_ref()
                .expect("predict before fit")
                .n_features()
        };
        let trace = || {
            self.trace
                .as_ref()
                .expect("predict before fit")
                .n_features()
        };
        match self.features {
            FeatureSet::Histogram => hist(),
            FeatureSet::Trace => trace(),
            FeatureSet::HistogramTrace => hist() + trace(),
        }
    }

    /// Streams the feature rows of `codes` — per this detector's fitted
    /// feature set — into `out`, which must be
    /// `codes.len() × n_features()`. This is the serving hot path: the
    /// scratch matrix is reused across batches.
    ///
    /// # Panics
    /// Panics before fit, or on an `out` shape mismatch.
    pub fn featurize_into(&self, codes: &[&[u8]], out: &mut Matrix) {
        match self.features {
            FeatureSet::Histogram => self
                .extractor
                .as_ref()
                .expect("predict before fit")
                .transform_into(codes, out),
            FeatureSet::Trace => self
                .trace
                .as_ref()
                .expect("predict before fit")
                .transform_into(codes, out),
            FeatureSet::HistogramTrace => {
                let hist = self.extractor.as_ref().expect("predict before fit");
                let trace = self.trace.as_ref().expect("predict before fit");
                assert_eq!(out.rows(), codes.len(), "one output row per bytecode");
                assert_eq!(
                    out.cols(),
                    hist.n_features() + trace.n_features(),
                    "column count mismatch"
                );
                for (i, code) in codes.iter().enumerate() {
                    let (h, t) = out.row_mut(i).split_at_mut(hist.n_features());
                    hist.count_into(code, h);
                    trace.extract_into(code, t);
                }
            }
        }
    }

    /// The feature matrix of `codes` under this detector's fitted feature
    /// set — rows suitable for [`HscDetector::predict_proba`].
    ///
    /// # Panics
    /// Panics when called before [`Detector::fit`].
    pub fn featurize(&self, codes: &[&[u8]]) -> Matrix {
        let mut out = Matrix::zeros(codes.len(), self.n_features());
        self.featurize_into(codes, &mut out);
        out
    }

    /// The fold's test-split feature matrix for this detector's feature
    /// set, asserting the fold matches what the detector was fitted on —
    /// borrowed when one shared matrix serves as-is, owned when channels
    /// are concatenated.
    pub(crate) fn fold_test_matrix<'f>(
        &self,
        fold: &'f crate::FoldFeatures<'_>,
    ) -> Cow<'f, Matrix> {
        const FOLD_MISMATCH: &str = "predict_fold called with a different fold than fit_fold";
        let check_hist = |shared: &phishinghook_features::HistogramExtractor| {
            let fitted = self.extractor.as_ref().expect("predict before fit");
            assert_eq!(fitted, shared, "{FOLD_MISMATCH}");
        };
        let check_trace = |shared: &TraceExtractor| {
            let fitted = self.trace.as_ref().expect("predict before fit");
            assert_eq!(fitted, shared, "{FOLD_MISMATCH}");
        };
        match self.features {
            FeatureSet::Histogram => {
                let features = fold.histogram();
                check_hist(&features.extractor);
                Cow::Borrowed(&features.test)
            }
            FeatureSet::Trace => {
                let features = fold.trace();
                check_trace(&features.extractor);
                Cow::Borrowed(&features.test)
            }
            FeatureSet::HistogramTrace => {
                let hist = fold.histogram();
                let trace = fold.trace();
                check_hist(&hist.extractor);
                check_trace(&trace.extractor);
                Cow::Owned(hstack(&hist.test, &trace.test))
            }
        }
    }
}

impl Detector for HscDetector {
    fn name(&self) -> &str {
        self.name
    }

    fn category(&self) -> Category {
        Category::Histogram
    }

    fn fit(&mut self, codes: &[&[u8]], labels: &[usize]) {
        assert_eq!(codes.len(), labels.len(), "one label per bytecode");
        self.extractor = self
            .features
            .includes_histogram()
            .then(|| HistogramExtractor::fit(codes));
        self.trace = self.features.includes_trace().then(TraceExtractor::new);
        let x = self.featurize(codes);
        self.model.as_classifier_mut().fit(&x, labels);
    }

    fn predict(&self, codes: &[&[u8]]) -> Vec<usize> {
        let x = self.featurize(codes);
        // Route through `predict_proba` so the quantize toggle applies to
        // one-shot prediction exactly as it does to batch serving. The
        // verdict contract (same side of 0.5) is what the quantized path
        // guarantees; here it is in fact bit-identical.
        self.predict_proba(&x)
            .into_iter()
            .map(|p| usize::from(p >= 0.5))
            .collect()
    }

    fn fit_fold(&mut self, fold: &crate::FoldFeatures<'_>, labels: &[usize]) {
        assert_eq!(
            fold.train_codes().len(),
            labels.len(),
            "one label per bytecode"
        );
        // Detectors of one feature set consume identical matrices; the
        // first one to arrive extracts, the rest reuse.
        match self.features {
            FeatureSet::Histogram => {
                let features = fold.histogram();
                self.model.as_classifier_mut().fit(&features.train, labels);
                self.extractor = Some(features.extractor.clone());
                self.trace = None;
            }
            FeatureSet::Trace => {
                let features = fold.trace();
                self.model.as_classifier_mut().fit(&features.train, labels);
                self.extractor = None;
                self.trace = Some(features.extractor.clone());
            }
            FeatureSet::HistogramTrace => {
                let hist = fold.histogram();
                let trace = fold.trace();
                let x = hstack(&hist.train, &trace.train);
                self.model.as_classifier_mut().fit(&x, labels);
                self.extractor = Some(hist.extractor.clone());
                self.trace = Some(trace.extractor.clone());
            }
        }
    }

    fn predict_fold(&self, fold: &crate::FoldFeatures<'_>) -> Vec<usize> {
        // The fold's matrices are only valid for the extractors this model
        // was trained with; a fit_fold/predict_fold fold mismatch would
        // otherwise feed the model silently permuted columns
        // (`fold_test_matrix` asserts agreement per channel).
        let x = self.fold_test_matrix(fold);
        self.model.as_classifier().predict(&x)
    }
}

// --- Persistence -----------------------------------------------------------

use phishinghook_persist::{PersistError, Reader, Restore, Snapshot, Writer};

/// Envelope kind tag of [`HscDetector`] snapshots (see
/// `phishinghook_persist`'s crate docs for the envelope layout).
pub const SNAPSHOT_KIND: &str = "hsc-detector";

/// The seven HSC names in Table II order (the only names a snapshot may
/// carry; restoring interns back to these statics).
const HSC_NAMES: [&str; 7] = [
    "Random Forest",
    "k-NN",
    "SVM",
    "Logistic Regression",
    "XGBoost",
    "LightGBM",
    "CatBoost",
];

impl Snapshot for HscModel {
    fn snapshot(&self, w: &mut Writer) {
        match self {
            HscModel::RandomForest(m) => {
                w.put_u8(0);
                m.snapshot(w);
            }
            HscModel::Knn(m) => {
                w.put_u8(1);
                m.snapshot(w);
            }
            HscModel::Svm(m) => {
                w.put_u8(2);
                m.snapshot(w);
            }
            HscModel::LogisticRegression(m) => {
                w.put_u8(3);
                m.snapshot(w);
            }
            HscModel::Boosted(m) => {
                w.put_u8(4);
                m.snapshot(w);
            }
        }
    }
}

impl Restore for HscModel {
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        match r.take_u8()? {
            0 => Ok(HscModel::RandomForest(RandomForest::restore(r)?)),
            1 => Ok(HscModel::Knn(KNearestNeighbors::restore(r)?)),
            2 => Ok(HscModel::Svm(RbfSvm::restore(r)?)),
            3 => Ok(HscModel::LogisticRegression(LogisticRegression::restore(
                r,
            )?)),
            4 => Ok(HscModel::Boosted(GradientBoosting::restore(r)?)),
            tag => Err(PersistError::Malformed(format!(
                "unknown HSC model tag {tag:#04x}"
            ))),
        }
    }
}

impl Snapshot for HscDetector {
    fn snapshot(&self, w: &mut Writer) {
        w.put_str(self.name);
        self.model.snapshot(w);
        self.extractor.snapshot(w);
        // Trailing fields (appended after the original layout so that
        // histogram-only envelopes written by older builds stay readable —
        // restore treats their absence as the historical defaults).
        w.put_u8(match self.features {
            FeatureSet::Histogram => 0,
            FeatureSet::Trace => 1,
            FeatureSet::HistogramTrace => 2,
        });
        self.trace.snapshot(w);
    }
}

impl Restore for HscDetector {
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let stored = r.take_str()?;
        let name = HSC_NAMES
            .into_iter()
            .find(|&n| n == stored)
            .ok_or_else(|| PersistError::Malformed(format!("unknown HSC name `{stored}`")))?;
        let model = HscModel::restore(r)?;
        let extractor: Option<HistogramExtractor> = Option::restore(r)?;
        let (features, trace) = if r.remaining() > 0 {
            let features = match r.take_u8()? {
                0 => FeatureSet::Histogram,
                1 => FeatureSet::Trace,
                2 => FeatureSet::HistogramTrace,
                tag => {
                    return Err(PersistError::Malformed(format!(
                        "unknown feature-set tag {tag:#04x}"
                    )))
                }
            };
            (features, Option::<TraceExtractor>::restore(r)?)
        } else {
            // Pre-trace envelope: histogram channel only.
            (FeatureSet::Histogram, None)
        };
        // Each feature channel must be present exactly when the feature set
        // declares it — except that a never-fitted detector carries neither.
        let unfitted = extractor.is_none() && trace.is_none();
        let channels_consistent = unfitted
            || (features.includes_histogram() == extractor.is_some()
                && features.includes_trace() == trace.is_some());
        if !channels_consistent {
            return Err(PersistError::Malformed(format!(
                "`{name}` channels do not match its `{features}` feature set"
            )));
        }
        // Cross-check the model's feature width against the extractors it is
        // paired with: a mismatch can never come from `fit`, and scoring
        // through it would index feature rows out of bounds at request time
        // instead of failing here at load time.
        if !unfitted {
            let width = extractor.as_ref().map_or(0, HistogramExtractor::n_features)
                + trace.as_ref().map_or(0, TraceExtractor::n_features);
            let consistent = match &model {
                HscModel::RandomForest(m) => m.trees().iter().all(|t| t.n_features() == width),
                HscModel::Knn(m) => m.n_features() == width,
                HscModel::Svm(m) => m.n_features() == Some(width),
                HscModel::LogisticRegression(m) => m.weights().len() == width,
                HscModel::Boosted(m) => m.max_feature_index().is_none_or(|f| f < width),
            };
            if !consistent {
                return Err(PersistError::Malformed(format!(
                    "`{name}` model does not match its {width}-column feature channels"
                )));
            }
        }
        Ok(HscDetector {
            name,
            model,
            extractor,
            features,
            trace,
            // Execution config, not model identity: snapshots never carry
            // it, and a restored detector starts with the default (on).
            quantize: true,
        })
    }
}

impl HscDetector {
    /// `true` once [`Detector::fit`] (or a fitted snapshot) has produced
    /// every feature channel the detector's feature set declares.
    pub fn is_fitted(&self) -> bool {
        let hist_ok = !self.features.includes_histogram() || self.extractor.is_some();
        let trace_ok = !self.features.includes_trace() || self.trace.is_some();
        hist_ok && trace_ok && (self.extractor.is_some() || self.trace.is_some())
    }

    /// Class-1 probabilities on an already-extracted feature matrix (rows
    /// from this detector's [`HscDetector::featurize_into`]). This is the
    /// serving hot path: with a reused scratch matrix it scores a batch
    /// without allocating per-contract rows.
    pub fn predict_proba(&self, x: &phishinghook_ml::Matrix) -> Vec<f64> {
        if self.quantize {
            // Quantized fast path for tree models. Falls through to the f64
            // walk when the model has no mirror (non-tree, or over the bin
            // budget); when the mirror exists its probabilities are
            // bit-identical to the reference (see
            // `phishinghook_ml::classical::quant`).
            match &self.model {
                HscModel::RandomForest(m) => {
                    if let Some(p) = m.predict_proba_batch_quantized(x) {
                        return p;
                    }
                }
                HscModel::Boosted(m) => {
                    if let Some(p) = m.predict_proba_quantized(x) {
                        return p;
                    }
                }
                _ => {}
            }
        }
        self.model.as_classifier().predict_proba(x)
    }

    /// Serializes the fitted detector into a versioned snapshot envelope.
    pub fn to_snapshot_bytes(&self) -> Vec<u8> {
        phishinghook_persist::to_envelope(SNAPSHOT_KIND, self)
    }

    /// Restores a detector from snapshot bytes.
    ///
    /// # Errors
    /// Any [`PersistError`]: wrong magic/kind, version skew, corruption
    /// (checksum), truncation, or a malformed payload.
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<Self, PersistError> {
        phishinghook_persist::from_envelope(SNAPSHOT_KIND, bytes)
    }

    /// Saves the detector snapshot to a file.
    ///
    /// # Errors
    /// [`PersistError::Io`] on filesystem failure.
    pub fn save_snapshot(&self, path: impl AsRef<std::path::Path>) -> Result<(), PersistError> {
        phishinghook_persist::save_file(path, SNAPSHOT_KIND, self)
    }

    /// Loads a detector snapshot from a file.
    ///
    /// # Errors
    /// [`PersistError::Io`] when the file cannot be read, otherwise any
    /// decode error from [`HscDetector::from_snapshot_bytes`].
    pub fn load_snapshot(path: impl AsRef<std::path::Path>) -> Result<Self, PersistError> {
        phishinghook_persist::load_file(path, SNAPSHOT_KIND)
    }
}

/// All seven HSC detectors in the paper's Table II order.
///
/// Kept for compatibility; new code should build from specs:
/// `DetectorRegistry::global().hsc_specs()` produces the same seven
/// detectors (bit-identically, given the same seed).
#[deprecated(
    since = "0.1.0",
    note = "build from specs via `DetectorRegistry::global()` — \
            `hsc_specs()` reproduces this list bit-for-bit"
)]
pub fn all_hscs(seed: u64) -> Vec<HscDetector> {
    let registry = crate::spec::DetectorRegistry::global();
    registry
        .hsc_specs()
        .iter()
        .map(|spec| match registry.build(spec, seed) {
            crate::scanner::AnyDetector::Hsc(det) => det,
            crate::scanner::AnyDetector::Ensemble(_) => unreachable!("hsc_specs are singles"),
        })
        .collect()
}

/// Test helper shared across this crate's test modules: all seven HSCs via
/// the registry (the non-deprecated spelling of the old `all_hscs`).
#[cfg(test)]
pub(crate) fn registry_hscs(seed: u64) -> Vec<HscDetector> {
    let registry = crate::spec::DetectorRegistry::global();
    registry
        .hsc_specs()
        .iter()
        .map(|spec| match registry.build(spec, seed) {
            crate::scanner::AnyDetector::Hsc(det) => det,
            crate::scanner::AnyDetector::Ensemble(_) => unreachable!("hsc_specs are singles"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use phishinghook_data::{Corpus, CorpusConfig};

    fn tiny_corpus() -> (Vec<Vec<u8>>, Vec<usize>) {
        let corpus = Corpus::generate(&CorpusConfig {
            n_contracts: 160,
            seed: 3,
            ..Default::default()
        });
        let codes: Vec<Vec<u8>> = corpus.records.iter().map(|r| r.bytecode.clone()).collect();
        let labels: Vec<usize> = corpus.records.iter().map(|r| r.label.as_index()).collect();
        (codes, labels)
    }

    #[test]
    fn every_hsc_beats_chance_on_the_corpus() {
        let (codes, labels) = tiny_corpus();
        let refs: Vec<&[u8]> = codes.iter().map(Vec::as_slice).collect();
        let (train_x, test_x) = refs.split_at(120);
        let (train_y, test_y) = labels.split_at(120);
        for mut det in registry_hscs(7) {
            det.fit(train_x, train_y);
            let preds = det.predict(test_x);
            let correct = preds.iter().zip(test_y).filter(|(a, b)| a == b).count();
            let acc = correct as f64 / test_y.len() as f64;
            assert!(acc > 0.6, "{} accuracy {acc}", det.name());
        }
    }

    #[test]
    fn names_match_table2() {
        let dets = registry_hscs(1);
        let names: Vec<&str> = dets.iter().map(|d| d.name()).collect();
        assert_eq!(
            names,
            vec![
                "Random Forest",
                "k-NN",
                "SVM",
                "Logistic Regression",
                "XGBoost",
                "LightGBM",
                "CatBoost"
            ]
        );
    }

    #[test]
    fn category_is_histogram() {
        assert_eq!(HscDetector::knn().category(), Category::Histogram);
    }

    #[test]
    #[should_panic(expected = "predict before fit")]
    fn predict_before_fit_panics() {
        let det = HscDetector::knn();
        let _ = det.predict(&[&[0x60, 0x80][..]]);
    }

    #[test]
    fn snapshot_with_mismatched_extractor_is_rejected() {
        // A model paired with an extractor of a different feature width can
        // never come from `fit`; restoring one must fail at load time, not
        // index out of bounds at scoring time.
        let (codes, labels) = tiny_corpus();
        let refs: Vec<&[u8]> = codes.iter().map(Vec::as_slice).collect();
        let mut det = HscDetector::random_forest(7);
        det.fit(&refs[..40], &labels[..40]);
        // Swap in a vocabulary fitted on one trivial bytecode (far fewer
        // columns than the forest was trained on).
        let narrow = phishinghook_features::HistogramExtractor::fit(&[&[0x60, 0x80][..]]);
        assert_ne!(narrow.n_features(), det.extractor().unwrap().n_features());
        det.extractor = Some(narrow);
        let err = HscDetector::from_snapshot_bytes(&det.to_snapshot_bytes()).unwrap_err();
        assert!(
            matches!(err, phishinghook_persist::PersistError::Malformed(_)),
            "{err:?}"
        );
    }

    #[test]
    fn fold_sharing_matches_per_detector_extraction() {
        // Training through the shared FoldFeatures store must produce the
        // same predictions as each detector extracting for itself.
        let (codes, labels) = tiny_corpus();
        let refs: Vec<&[u8]> = codes.iter().map(Vec::as_slice).collect();
        let (train_x, test_x) = refs.split_at(120);
        let (train_y, _) = labels.split_at(120);
        let fold = crate::FoldFeatures::new(train_x, test_x);
        for (mut shared, mut solo) in registry_hscs(7).into_iter().zip(registry_hscs(7)) {
            shared.fit_fold(&fold, train_y);
            solo.fit(train_x, train_y);
            assert_eq!(
                shared.predict_fold(&fold),
                solo.predict(test_x),
                "{}",
                solo.name()
            );
            // The fitted extractor is the shared one, cloned per detector.
            assert_eq!(
                shared.extractor().unwrap().columns(),
                solo.extractor().unwrap().columns()
            );
        }
    }

    #[test]
    fn trace_fold_sharing_matches_per_detector_extraction() {
        // The shared-fold path must stay bit-equivalent to direct fit for
        // the dynamic channel and the combined channel, exactly as it is
        // for histograms.
        let (codes, labels) = tiny_corpus();
        let refs: Vec<&[u8]> = codes.iter().map(Vec::as_slice).collect();
        let (train_x, test_x) = (&refs[..60], &refs[60..80]);
        let train_y = &labels[..60];
        let fold = crate::FoldFeatures::new(train_x, test_x);
        for features in [FeatureSet::Trace, FeatureSet::HistogramTrace] {
            let mut shared = HscDetector::random_forest(7).with_features(features);
            let mut solo = HscDetector::random_forest(7).with_features(features);
            shared.fit_fold(&fold, train_y);
            solo.fit(train_x, train_y);
            assert_eq!(
                shared.predict_fold(&fold),
                solo.predict(test_x),
                "{features:?}"
            );
            assert!(shared.is_fitted());
            assert_eq!(shared.n_features(), solo.n_features());
        }
        // Four accesses (fit + predict per feature set), one build.
        let (hits, build_secs) = fold.trace_usage();
        assert_eq!(hits, 4);
        assert!(build_secs > 0.0);
    }

    #[test]
    fn snapshot_round_trip_preserves_trace_channel() {
        let (codes, labels) = tiny_corpus();
        let refs: Vec<&[u8]> = codes.iter().map(Vec::as_slice).collect();
        let mut det = HscDetector::logistic_regression().with_features(FeatureSet::HistogramTrace);
        det.fit(&refs[..80], &labels[..80]);
        let back = HscDetector::from_snapshot_bytes(&det.to_snapshot_bytes()).expect("round-trips");
        assert_eq!(back.features(), FeatureSet::HistogramTrace);
        assert_eq!(back.trace_extractor(), det.trace_extractor());
        assert_eq!(back.n_features(), det.n_features());
        let x = det.featurize(&refs[80..100]);
        let a = det.predict_proba(&x);
        let b = back.predict_proba(&back.featurize(&refs[80..100]));
        let bits = |v: &[f64]| v.iter().map(|p| p.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a), bits(&b));
    }

    #[test]
    fn legacy_envelope_without_trailing_fields_restores_to_histogram() {
        // Envelopes written before the feature-set axis end right after the
        // histogram extractor; restore must treat them as histogram-only.
        struct LegacyLayout<'a>(&'a HscDetector);
        impl Snapshot for LegacyLayout<'_> {
            fn snapshot(&self, w: &mut Writer) {
                w.put_str(self.0.name);
                self.0.model.snapshot(w);
                self.0.extractor.snapshot(w);
            }
        }
        let (codes, labels) = tiny_corpus();
        let refs: Vec<&[u8]> = codes.iter().map(Vec::as_slice).collect();
        let mut det = HscDetector::knn();
        det.fit(&refs[..60], &labels[..60]);
        let env = phishinghook_persist::to_envelope(SNAPSHOT_KIND, &LegacyLayout(&det));
        let back = HscDetector::from_snapshot_bytes(&env).expect("legacy envelope restores");
        assert_eq!(back.features(), FeatureSet::Histogram);
        assert!(back.trace_extractor().is_none());
        assert!(back.is_fitted());
        assert_eq!(back.predict(&refs[60..70]), det.predict(&refs[60..70]));
    }

    #[test]
    fn channel_mismatch_against_feature_set_is_rejected() {
        // A `features=trace` detector whose envelope carries a histogram
        // extractor (or vice versa) can never come from `fit`.
        let (codes, labels) = tiny_corpus();
        let refs: Vec<&[u8]> = codes.iter().map(Vec::as_slice).collect();
        let mut det = HscDetector::knn().with_features(FeatureSet::Trace);
        det.fit(&refs[..40], &labels[..40]);
        det.extractor = Some(HistogramExtractor::fit(&refs[..40]));
        det.features = FeatureSet::Histogram; // declares no trace channel
        let err = HscDetector::from_snapshot_bytes(&det.to_snapshot_bytes()).unwrap_err();
        assert!(
            matches!(err, phishinghook_persist::PersistError::Malformed(_)),
            "{err:?}"
        );
    }
}
