//! ESCORT — the vulnerability detection model, transferred to phishing.
//!
//! ESCORT's design (paper §IV-B): a DNN trunk over bytecode embeddings is
//! first trained to classify *code vulnerabilities* (multi-label), then new
//! tasks are served by attaching a fresh head to the frozen trunk (transfer
//! learning). The paper shows this transfer fails for phishing (55.91%
//! accuracy): phishing exploits human behaviour, not code defects, so the
//! vulnerability-shaped representation carries almost no phishing signal.
//!
//! This implementation reproduces that mechanism honestly: the trunk
//! pretrains on three static vulnerability pseudo-labels (`SELFDESTRUCT`
//! presence, `DELEGATECALL` presence, state-write-after-call), the trunk is
//! then frozen, and only a new linear head is trained on phishing labels.

use crate::detector::{Category, Detector};
use phishinghook_features::escort::{embed, vulnerability_labels, EMBED_DIM};
use phishinghook_ml::nn::layers::Dense;
use phishinghook_ml::nn::{Adam, Optimizer, Tensor};
use phishinghook_ml::SplitMix;

/// Hyperparameters for [`EscortDetector`].
#[derive(Debug, Clone, PartialEq)]
pub struct EscortConfig {
    /// Trunk hidden width.
    pub hidden: usize,
    /// Transferred representation width.
    pub feature_dim: usize,
    /// Pretraining epochs (vulnerability task).
    pub pretrain_epochs: usize,
    /// Transfer epochs (phishing head).
    pub transfer_epochs: usize,
    /// Minibatch size.
    pub batch: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Seed.
    pub seed: u64,
}

impl Default for EscortConfig {
    fn default() -> Self {
        EscortConfig {
            hidden: 32,
            feature_dim: 16,
            pretrain_epochs: 10,
            transfer_epochs: 15,
            batch: 32,
            lr: 5e-3,
            seed: 44,
        }
    }
}

struct EscortModel {
    fc1: Dense,
    fc2: Dense,
    phishing_head: Dense,
}

impl EscortModel {
    /// Frozen-trunk features for a batch embedding matrix.
    fn trunk(&self, x: &Tensor) -> Tensor {
        self.fc2.forward(&self.fc1.forward(x).relu()).relu()
    }
}

/// The ESCORT detector.
pub struct EscortDetector {
    config: EscortConfig,
    state: Option<EscortModel>,
}

impl std::fmt::Debug for EscortDetector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "EscortDetector")
    }
}

impl EscortDetector {
    /// Creates an unfitted ESCORT.
    pub fn new(config: EscortConfig) -> Self {
        EscortDetector {
            config,
            state: None,
        }
    }

    fn batch_tensor(codes: &[&[u8]], indices: &[usize], embeddings: &[Vec<f64>]) -> Tensor {
        let _ = codes;
        let dim = EMBED_DIM;
        let mut data = Vec::with_capacity(indices.len() * dim);
        for &i in indices {
            data.extend(embeddings[i].iter().map(|&v| v as f32));
        }
        Tensor::new(data, &[indices.len(), dim], false)
    }
}

impl Detector for EscortDetector {
    fn name(&self) -> &str {
        "ESCORT"
    }

    fn category(&self) -> Category {
        Category::VulnerabilityDetection
    }

    fn fit(&mut self, codes: &[&[u8]], labels: &[usize]) {
        assert_eq!(codes.len(), labels.len(), "one label per bytecode");
        let mut rng = SplitMix::new(self.config.seed);
        let cfg = &self.config;
        let model = EscortModel {
            fc1: Dense::new(&mut rng, EMBED_DIM, cfg.hidden),
            fc2: Dense::new(&mut rng, cfg.hidden, cfg.feature_dim),
            phishing_head: Dense::new(&mut rng, cfg.feature_dim, 2),
        };
        let embeddings: Vec<Vec<f64>> = codes.iter().map(|c| embed(c)).collect();
        let vuln: Vec<[bool; 3]> = codes.iter().map(|c| vulnerability_labels(c)).collect();

        // Phase 1: multi-branch vulnerability pretraining (trunk + 3 heads).
        let vuln_heads: Vec<Dense> = (0..3)
            .map(|_| Dense::new(&mut rng, cfg.feature_dim, 2))
            .collect();
        let mut params = model.fc1.params();
        params.extend(model.fc2.params());
        for h in &vuln_heads {
            params.extend(h.params());
        }
        let mut opt = Adam::new(params, cfg.lr);
        let mut order: Vec<usize> = (0..codes.len()).collect();
        for _ in 0..cfg.pretrain_epochs {
            rng.shuffle(&mut order);
            for chunk in order.chunks(cfg.batch) {
                let x = Self::batch_tensor(codes, chunk, &embeddings);
                let feats = model.trunk(&x);
                let mut loss: Option<Tensor> = None;
                for (task, head) in vuln_heads.iter().enumerate() {
                    let task_labels: Vec<usize> =
                        chunk.iter().map(|&i| usize::from(vuln[i][task])).collect();
                    let l = head.forward(&feats).cross_entropy_logits(&task_labels);
                    loss = Some(match loss {
                        Some(acc) => acc.add(&l),
                        None => l,
                    });
                }
                let loss = loss.expect("three vulnerability tasks");
                opt.zero_grad();
                loss.backward();
                opt.step();
            }
        }

        // Phase 2: freeze the trunk; train only the new phishing head.
        let mut head_opt = Adam::new(model.phishing_head.params(), cfg.lr);
        for _ in 0..cfg.transfer_epochs {
            rng.shuffle(&mut order);
            for chunk in order.chunks(cfg.batch) {
                let x = Self::batch_tensor(codes, chunk, &embeddings);
                let feats = model.trunk(&x);
                let batch_labels: Vec<usize> = chunk.iter().map(|&i| labels[i]).collect();
                let loss = model
                    .phishing_head
                    .forward(&feats)
                    .cross_entropy_logits(&batch_labels);
                head_opt.zero_grad();
                loss.backward();
                head_opt.step();
            }
        }
        self.state = Some(model);
    }

    fn predict(&self, codes: &[&[u8]]) -> Vec<usize> {
        let model = self.state.as_ref().expect("predict before fit");
        codes
            .iter()
            .map(|c| {
                let e: Vec<f32> = embed(c).iter().map(|&v| v as f32).collect();
                let x = Tensor::new(e, &[1, EMBED_DIM], false);
                let logits = model.phishing_head.forward(&model.trunk(&x)).to_vec();
                usize::from(logits[1] > logits[0])
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phishinghook_data::{Corpus, CorpusConfig};

    #[test]
    fn escort_runs_and_underperforms_hscs() {
        // The point of ESCORT in the paper: it works as a model but the
        // vulnerability-transferred representation is weak for phishing.
        let corpus = Corpus::generate(&CorpusConfig {
            n_contracts: 300,
            seed: 8,
            ..Default::default()
        });
        let codes: Vec<&[u8]> = corpus
            .records
            .iter()
            .map(|r| r.bytecode.as_slice())
            .collect();
        let labels: Vec<usize> = corpus.records.iter().map(|r| r.label.as_index()).collect();
        let (train_x, test_x) = codes.split_at(225);
        let (train_y, test_y) = labels.split_at(225);

        let mut escort = EscortDetector::new(EscortConfig::default());
        escort.fit(train_x, train_y);
        let preds = escort.predict(test_x);
        assert_eq!(preds.len(), test_y.len());
        let acc =
            preds.iter().zip(test_y).filter(|(a, b)| a == b).count() as f64 / test_y.len() as f64;
        // Must be a functioning classifier (not constant), yet clearly below
        // the ≈0.9 HSC band. The paper reports 55.91%.
        assert!(acc < 0.85, "ESCORT unexpectedly strong: {acc}");
        assert!(preds.contains(&0) && preds.contains(&1));
    }

    #[test]
    fn deterministic_under_seed() {
        let corpus = Corpus::generate(&CorpusConfig {
            n_contracts: 60,
            seed: 9,
            ..Default::default()
        });
        let codes: Vec<&[u8]> = corpus
            .records
            .iter()
            .map(|r| r.bytecode.as_slice())
            .collect();
        let labels: Vec<usize> = corpus.records.iter().map(|r| r.label.as_index()).collect();
        let mut a = EscortDetector::new(EscortConfig::default());
        let mut b = EscortDetector::new(EscortConfig::default());
        a.fit(&codes, &labels);
        b.fit(&codes, &labels);
        assert_eq!(a.predict(&codes), b.predict(&codes));
    }
}
