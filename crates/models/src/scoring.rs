//! The original train-once/score-forever serving path, superseded by
//! [`Scanner`](crate::Scanner).
//!
//! [`ScoringEngine`] wraps a fitted [`HscDetector`] (usually restored from a
//! snapshot) behind a batched scoring API that reuses one scratch feature
//! matrix across calls: each batch streams bytecodes through
//! [`HistogramExtractor::transform_into`] into the preallocated matrix and
//! scores it with the detector's batch inference — the same
//! disasm→extract→infer hot path the pipeline benchmark measures, with zero
//! steady-state allocation beyond the output vector.
//!
//! Engines are cheap to fan out across worker threads:
//! [`ScoringEngine::worker`] shares the (immutable, `Sync`) detector through
//! an [`Arc`] while giving each worker its own scratch buffer.
//!
//! The engine is single-HSC only. [`Scanner`](crate::Scanner) keeps the
//! identical hot path and numerics (bit-identical scores, asserted in this
//! module's tests) while also serving ensembles, typed requests and both
//! snapshot kinds — new code should use it instead.
//!
//! ```
//! use phishinghook_models::{Detector, HscDetector, ScoringEngine};
//!
//! let train: Vec<&[u8]> = vec![&[0x60, 0x80, 0x52], &[0x00, 0x01]];
//! let mut det = HscDetector::random_forest(7);
//! det.fit(&train, &[1, 0]);
//!
//! let bytes = det.to_snapshot_bytes();
//! let mut engine = ScoringEngine::from_snapshot_bytes(&bytes).unwrap();
//! let scores = engine.score_batch(&train);
//! assert_eq!(scores.len(), 2);
//! assert!(scores.iter().all(|p| (0.0..=1.0).contains(p)));
//! ```
#![allow(deprecated)] // the deprecated engine still implements itself

use crate::detector::Detector;
use crate::hsc::HscDetector;
use phishinghook_features::HistogramExtractor;
use phishinghook_ml::Matrix;
use phishinghook_persist::PersistError;
use std::sync::Arc;

/// A fitted detector plus reusable scoring buffers.
#[deprecated(
    since = "0.1.0",
    note = "superseded by `Scanner`, which serves ensembles and both snapshot \
            kinds through the same hot path"
)]
#[derive(Debug)]
pub struct ScoringEngine {
    detector: Arc<HscDetector>,
    scratch: Matrix,
}

impl ScoringEngine {
    /// Wraps a fitted detector.
    ///
    /// # Errors
    /// [`PersistError::Malformed`] when the detector was never fitted (an
    /// unfitted detector has no feature vocabulary to score with).
    pub fn new(detector: HscDetector) -> Result<Self, PersistError> {
        if !detector.is_fitted() {
            return Err(PersistError::Malformed(format!(
                "`{}` detector is not fitted; train it (or load a fitted snapshot) before serving",
                detector.name()
            )));
        }
        Ok(ScoringEngine {
            detector: Arc::new(detector),
            scratch: Matrix::zeros(0, 0),
        })
    }

    /// Restores an engine from snapshot bytes.
    ///
    /// # Errors
    /// Any [`PersistError`] from decoding, plus `Malformed` for an unfitted
    /// snapshot.
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<Self, PersistError> {
        Self::new(HscDetector::from_snapshot_bytes(bytes)?)
    }

    /// Loads an engine from a snapshot file.
    ///
    /// # Errors
    /// [`PersistError::Io`] when the file cannot be read, otherwise any
    /// decode error.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, PersistError> {
        Self::new(HscDetector::load_snapshot(path)?)
    }

    /// A sibling engine sharing this one's detector but owning its own
    /// scratch buffer — one per worker thread in a serving pool.
    pub fn worker(&self) -> ScoringEngine {
        ScoringEngine {
            detector: Arc::clone(&self.detector),
            scratch: Matrix::zeros(0, 0),
        }
    }

    /// The wrapped detector.
    pub fn detector(&self) -> &HscDetector {
        &self.detector
    }

    /// The fitted histogram extractor.
    fn extractor(&self) -> &HistogramExtractor {
        self.detector
            .extractor()
            .expect("ScoringEngine::new rejects unfitted detectors")
    }

    /// Model name (Table II spelling), e.g. `"Random Forest"`.
    pub fn model_name(&self) -> &str {
        self.detector.name()
    }

    /// Width of the feature vocabulary the engine scores with.
    pub fn n_features(&self) -> usize {
        self.extractor().n_features()
    }

    /// Class-1 (phishing) probability per bytecode.
    ///
    /// Feature rows are streamed in place into the engine's scratch matrix
    /// (resized, never reallocated while batch sizes are stable), then
    /// scored through the detector's batch inference.
    pub fn score_batch(&mut self, codes: &[&[u8]]) -> Vec<f64> {
        let extractor = self
            .detector
            .extractor()
            .expect("engine holds fitted detector");
        self.scratch.resize(codes.len(), extractor.n_features());
        extractor.transform_into(codes, &mut self.scratch);
        self.detector.predict_proba(&self.scratch)
    }

    /// Hard 0/1 verdicts (1 = phishing) by thresholding
    /// [`ScoringEngine::score_batch`] at 0.5.
    pub fn classify_batch(&mut self, codes: &[&[u8]]) -> Vec<usize> {
        self.score_batch(codes)
            .into_iter()
            .map(|p| usize::from(p >= 0.5))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::Detector;
    use crate::hsc::registry_hscs;
    use phishinghook_data::{Corpus, CorpusConfig};

    fn tiny_corpus() -> (Vec<Vec<u8>>, Vec<usize>) {
        let corpus = Corpus::generate(&CorpusConfig {
            n_contracts: 80,
            seed: 11,
            ..Default::default()
        });
        let codes = corpus.records.iter().map(|r| r.bytecode.clone()).collect();
        let labels = corpus.records.iter().map(|r| r.label.as_index()).collect();
        (codes, labels)
    }

    #[test]
    fn unfitted_detector_is_rejected() {
        let err = ScoringEngine::new(HscDetector::knn()).unwrap_err();
        assert!(matches!(err, PersistError::Malformed(_)), "{err:?}");
    }

    #[test]
    fn engine_matches_detector_predictions() {
        let (codes, labels) = tiny_corpus();
        let refs: Vec<&[u8]> = codes.iter().map(Vec::as_slice).collect();
        let mut det = HscDetector::random_forest(5);
        det.fit(&refs, &labels);
        let direct = det.predict(&refs);
        let mut engine = ScoringEngine::new(det).expect("fitted");
        assert_eq!(engine.classify_batch(&refs), direct);
        // Scratch reuse across differently-sized batches stays correct.
        assert_eq!(engine.classify_batch(&refs[..7]), direct[..7]);
        assert_eq!(engine.classify_batch(&refs), direct);
        assert!(engine.score_batch(&[]).is_empty());
    }

    #[test]
    fn worker_engines_share_the_detector_and_agree() {
        let (codes, labels) = tiny_corpus();
        let refs: Vec<&[u8]> = codes.iter().map(Vec::as_slice).collect();
        let mut det = HscDetector::logistic_regression();
        det.fit(&refs, &labels);
        let mut engine = ScoringEngine::new(det).expect("fitted");
        let expected = engine.score_batch(&refs);
        let outputs: Vec<Vec<f64>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let mut worker = engine.worker();
                    let refs = &refs;
                    scope.spawn(move || worker.score_batch(refs))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for out in outputs {
            assert_eq!(out, expected);
        }
    }

    #[test]
    fn engine_matches_scanner_on_singles_bit_identically() {
        // The deprecated engine and the Scanner that subsumes it share one
        // hot path; their scores must never drift apart while the shim
        // remains in the public API.
        let (codes, labels) = tiny_corpus();
        let refs: Vec<&[u8]> = codes.iter().map(Vec::as_slice).collect();
        let mut det = HscDetector::random_forest(9);
        det.fit(&refs[..60], &labels[..60]);
        let bytes = det.to_snapshot_bytes();
        let mut engine = ScoringEngine::from_snapshot_bytes(&bytes).expect("engine");
        let mut scanner = crate::Scanner::from_snapshot_bytes(&bytes).expect("scanner");
        let a: Vec<u64> = engine
            .score_batch(&refs)
            .iter()
            .map(|p| p.to_bits())
            .collect();
        let b: Vec<u64> = scanner
            .score_batch(&refs)
            .iter()
            .map(|p| p.to_bits())
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn snapshot_loaded_engine_scores_bit_identically() {
        let (codes, labels) = tiny_corpus();
        let refs: Vec<&[u8]> = codes.iter().map(Vec::as_slice).collect();
        for mut det in registry_hscs(3) {
            let name = det.name().to_owned();
            det.fit(&refs[..60], &labels[..60]);
            let mut original = ScoringEngine::new(det).expect("fitted");
            let bytes = original.detector().to_snapshot_bytes();
            let mut restored = ScoringEngine::from_snapshot_bytes(&bytes).expect("decodes");
            let (a, b) = (original.score_batch(&refs), restored.score_batch(&refs));
            assert_eq!(
                a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                b.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{name}"
            );
        }
    }
}
