//! The serving facade: typed scan requests over any spec-built detector.
//!
//! [`Scanner`] subsumes the earlier single-model `ScoringEngine`: it wraps
//! any fitted [`AnyDetector`] — one HSC or a voting ensemble, built from a
//! [`DetectorSpec`](crate::DetectorSpec) or restored from either snapshot
//! kind through one front door — behind the same batched, scratch-matrix
//! hot path. On top of the raw `score_batch` it adds the typed request
//! shape the wire protocol carries: [`ScanRequest`] `{ id, target }` in,
//! [`ScanReport`] `{ id, verdict, proba, per_model, model_version }` out,
//! with per-member probabilities whenever the model is an ensemble.
//!
//! A request's [`Target`] is either raw bytecode or a 20-byte chain
//! address; addresses resolve through a [`CodeSource`] (the simulated
//! chain's `eth_getCode`), so the address → bytecode hop lives in exactly
//! one place no matter which protocol — JSONL, HTTP, or a direct library
//! call — carried the request.
//!
//! Like the engine it replaces, a scanner is cheap to fan out:
//! [`Scanner::worker`] shares the immutable detector through an [`Arc`]
//! (restored once per process, never per connection) while giving each
//! worker its own scratch buffer.
//!
//! ```
//! use phishinghook_models::{Detector, DetectorRegistry, Scanner, ScanRequest};
//!
//! let train: Vec<&[u8]> = vec![&[0x60, 0x80, 0x52], &[0x00, 0x01]];
//! let mut det = DetectorRegistry::global()
//!     .build_str("ensemble:rf+lgbm:vote=soft", 7)
//!     .expect("valid spec");
//! det.fit(&train, &[1, 0]);
//!
//! let mut scanner = Scanner::new(det).expect("fitted");
//! let reports = scanner.scan_batch(
//!     &[ScanRequest::bytecode("req-1", vec![0x60, 0x80, 0x52])],
//!     None, // no chain attached: bytecode targets only
//! );
//! let report = reports[0].as_ref().expect("bytecode targets always score");
//! assert_eq!(report.id, "req-1");
//! assert_eq!(report.per_model.len(), 2); // one probability per member
//! ```

use crate::detector::{Category, Detector, FoldFeatures};
use crate::ensemble::EnsembleDetector;
use crate::hsc::HscDetector;
use phishinghook_data::{Address, CodeSource};
use phishinghook_features::HistogramExtractor;
use phishinghook_ml::Matrix;
use phishinghook_persist::{PersistError, FORMAT_VERSION};
use std::borrow::Cow;
use std::fmt;
use std::sync::Arc;

/// Any detector the registry can build and the scanner can serve: a single
/// HSC or an ensemble. Unifies construction, fitting, scoring and
/// persistence behind one type so callers never match on the family.
// Variant sizes differ (a single HSC inlines its model enum where an
// ensemble holds a Vec), but AnyDetectors are built a handful of times per
// process and immediately moved behind an Arc, never stored in bulk — the
// Box indirection the lint suggests would cost every scoring call more
// than the moves it saves.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum AnyDetector {
    /// One histogram similarity classifier.
    Hsc(HscDetector),
    /// A voting ensemble of HSCs.
    Ensemble(EnsembleDetector),
}

impl AnyDetector {
    /// `true` once the underlying model(s) carry a fitted vocabulary.
    pub fn is_fitted(&self) -> bool {
        match self {
            AnyDetector::Hsc(d) => d.is_fitted(),
            AnyDetector::Ensemble(d) => d.is_fitted(),
        }
    }

    /// The fitted histogram extractor, when the feature set carries that
    /// channel (shared by all members for an ensemble).
    pub fn extractor(&self) -> Option<&HistogramExtractor> {
        match self {
            AnyDetector::Hsc(d) => d.extractor(),
            AnyDetector::Ensemble(d) => d.extractor(),
        }
    }

    /// The feature channels the detector trains and scores on.
    pub fn features(&self) -> crate::spec::FeatureSet {
        match self {
            AnyDetector::Hsc(d) => d.features(),
            AnyDetector::Ensemble(d) => d.features(),
        }
    }

    /// Sets whether tree models score through the quantized engine.
    /// Runtime execution config — does not clear fitted state and is never
    /// persisted.
    #[must_use]
    pub fn with_quantize(self, quantize: bool) -> Self {
        match self {
            AnyDetector::Hsc(d) => AnyDetector::Hsc(d.with_quantize(quantize)),
            AnyDetector::Ensemble(d) => AnyDetector::Ensemble(d.with_quantize(quantize)),
        }
    }

    /// `true` when tree models score through the quantized engine.
    pub fn quantize(&self) -> bool {
        match self {
            AnyDetector::Hsc(d) => d.quantize(),
            AnyDetector::Ensemble(d) => d.quantize(),
        }
    }

    /// Widest per-feature bin count across the fitted quantized mirrors,
    /// when any underlying model carries one.
    pub fn quant_bins(&self) -> Option<usize> {
        match self {
            AnyDetector::Hsc(d) => d.quant_bins(),
            AnyDetector::Ensemble(d) => d.quant_bins(),
        }
    }

    /// Width of the fitted feature rows.
    ///
    /// # Panics
    /// Panics when called before [`Detector::fit`].
    pub fn n_features(&self) -> usize {
        match self {
            AnyDetector::Hsc(d) => d.n_features(),
            AnyDetector::Ensemble(d) => d.n_features(),
        }
    }

    /// Streams the feature rows of `codes` (per the fitted feature set)
    /// into `out`, which must be `codes.len() × n_features()`.
    ///
    /// # Panics
    /// Panics before fit, or on an `out` shape mismatch.
    pub fn featurize_into(&self, codes: &[&[u8]], out: &mut Matrix) {
        match self {
            AnyDetector::Hsc(d) => d.featurize_into(codes, out),
            AnyDetector::Ensemble(d) => d.featurize_into(codes, out),
        }
    }

    /// Combined class-1 probability per row of an already-extracted feature
    /// matrix.
    pub fn predict_proba(&self, x: &Matrix) -> Vec<f64> {
        match self {
            AnyDetector::Hsc(d) => d.predict_proba(x),
            AnyDetector::Ensemble(d) => d.predict_proba(x),
        }
    }

    /// Per-model `(name, probabilities)` on an already-extracted matrix: one
    /// entry for a single HSC, one per member for an ensemble.
    pub fn per_model_proba(&self, x: &Matrix) -> Vec<(String, Vec<f64>)> {
        match self {
            AnyDetector::Hsc(d) => vec![(d.name().to_owned(), d.predict_proba(x))],
            AnyDetector::Ensemble(d) => d
                .members()
                .iter()
                .map(|m| (m.name().to_owned(), m.predict_proba(x)))
                .collect(),
        }
    }

    /// Combined and per-model probabilities from **one** inference pass per
    /// underlying model: the per-model scores are computed first and the
    /// combined score is derived from them (identity for a single HSC, the
    /// voting rule for an ensemble) — bit-identical to calling
    /// [`AnyDetector::predict_proba`] and [`AnyDetector::per_model_proba`]
    /// separately, at half the cost.
    pub fn predict_with_members(&self, x: &Matrix) -> (Vec<f64>, Vec<(String, Vec<f64>)>) {
        match self {
            AnyDetector::Hsc(d) => {
                let probs = d.predict_proba(x);
                (probs.clone(), vec![(d.name().to_owned(), probs)])
            }
            AnyDetector::Ensemble(d) => {
                let member_probs = d.member_probas(x);
                let combined = d.combine_probas(&member_probs);
                let named = d
                    .members()
                    .iter()
                    .zip(member_probs)
                    .map(|(m, probs)| (m.name().to_owned(), probs))
                    .collect();
                (combined, named)
            }
        }
    }

    /// Class-1 probability per row from the *primary* model only: the
    /// single HSC itself, or an ensemble's first member — the cheapest
    /// answer the detector can give. Serving brownout uses this to keep
    /// answering under load at one inference pass instead of N.
    pub fn predict_primary_proba(&self, x: &Matrix) -> Vec<f64> {
        match self {
            AnyDetector::Hsc(d) => d.predict_proba(x),
            AnyDetector::Ensemble(e) => e.members()[0].predict_proba(x),
        }
    }

    /// The snapshot envelope kind this detector saves under.
    pub fn snapshot_kind(&self) -> &'static str {
        match self {
            AnyDetector::Hsc(_) => crate::hsc::SNAPSHOT_KIND,
            AnyDetector::Ensemble(_) => crate::ensemble::SNAPSHOT_KIND,
        }
    }

    /// Serializes into a versioned snapshot envelope (kind depends on the
    /// family; see [`AnyDetector::snapshot_kind`]).
    pub fn to_snapshot_bytes(&self) -> Vec<u8> {
        match self {
            AnyDetector::Hsc(d) => d.to_snapshot_bytes(),
            AnyDetector::Ensemble(d) => d.to_snapshot_bytes(),
        }
    }

    /// Restores a detector of *either* snapshot kind: the envelope's kind
    /// tag picks the decoder.
    ///
    /// # Errors
    /// Any [`PersistError`]; an envelope of an unrelated kind fails as
    /// [`PersistError::WrongKind`] against the HSC kind.
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<Self, PersistError> {
        match phishinghook_persist::envelope_kind(bytes)? {
            k if k == crate::ensemble::SNAPSHOT_KIND => Ok(AnyDetector::Ensemble(
                EnsembleDetector::from_snapshot_bytes(bytes)?,
            )),
            _ => Ok(AnyDetector::Hsc(HscDetector::from_snapshot_bytes(bytes)?)),
        }
    }

    /// Saves the snapshot to a file.
    ///
    /// # Errors
    /// [`PersistError::Io`] on filesystem failure.
    pub fn save_snapshot(&self, path: impl AsRef<std::path::Path>) -> Result<(), PersistError> {
        match self {
            AnyDetector::Hsc(d) => d.save_snapshot(path),
            AnyDetector::Ensemble(d) => d.save_snapshot(path),
        }
    }

    /// Loads a detector of either snapshot kind from a file.
    ///
    /// # Errors
    /// [`PersistError::Io`] when the file cannot be read, otherwise any
    /// decode error from [`AnyDetector::from_snapshot_bytes`].
    pub fn load_snapshot(path: impl AsRef<std::path::Path>) -> Result<Self, PersistError> {
        let bytes = std::fs::read(path).map_err(PersistError::Io)?;
        Self::from_snapshot_bytes(&bytes)
    }
}

impl Detector for AnyDetector {
    fn name(&self) -> &str {
        match self {
            AnyDetector::Hsc(d) => d.name(),
            AnyDetector::Ensemble(d) => d.name(),
        }
    }

    fn category(&self) -> Category {
        Category::Histogram
    }

    fn fit(&mut self, codes: &[&[u8]], labels: &[usize]) {
        match self {
            AnyDetector::Hsc(d) => d.fit(codes, labels),
            AnyDetector::Ensemble(d) => d.fit(codes, labels),
        }
    }

    fn predict(&self, codes: &[&[u8]]) -> Vec<usize> {
        match self {
            AnyDetector::Hsc(d) => d.predict(codes),
            AnyDetector::Ensemble(d) => d.predict(codes),
        }
    }

    fn fit_fold(&mut self, fold: &FoldFeatures<'_>, labels: &[usize]) {
        match self {
            AnyDetector::Hsc(d) => d.fit_fold(fold, labels),
            AnyDetector::Ensemble(d) => d.fit_fold(fold, labels),
        }
    }

    fn predict_fold(&self, fold: &FoldFeatures<'_>) -> Vec<usize> {
        match self {
            AnyDetector::Hsc(d) => d.predict_fold(fold),
            AnyDetector::Ensemble(d) => d.predict_fold(fold),
        }
    }
}

/// Binary verdict on one contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Class 0 — no phishing signature.
    Benign,
    /// Class 1 — phishing.
    Phishing,
}

impl Verdict {
    /// Thresholds a class-1 probability at 0.5.
    pub fn from_proba(p: f64) -> Self {
        if p >= 0.5 {
            Verdict::Phishing
        } else {
            Verdict::Benign
        }
    }

    /// The lowercase wire spelling (`"benign"` / `"phishing"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::Benign => "benign",
            Verdict::Phishing => "phishing",
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What a scan request points at: the contract's raw bytecode, or the
/// chain address to fetch it from.
///
/// Every request surface — proto v2 JSONL, HTTP `POST /predict`, and the
/// library-level [`Scanner::scan_batch`] — carries this one enum, and
/// [`Target::resolve`] is the single place an address becomes bytecode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Target {
    /// Raw deployed runtime bytecode, scored as-is.
    Bytecode(Vec<u8>),
    /// A 20-byte account address, resolved through a [`CodeSource`]
    /// (`eth_getCode`) before scoring.
    Address(Address),
}

impl Target {
    /// The bytecode to score: borrowed straight out of a
    /// [`Target::Bytecode`], or fetched from `source` for a
    /// [`Target::Address`].
    ///
    /// # Errors
    /// [`ResolveError::NoSource`] for an address target when no chain is
    /// attached, [`ResolveError::NoCode`] when the chain holds no code at
    /// the address (an EOA, or an unknown account).
    pub fn resolve(&self, source: Option<&dyn CodeSource>) -> Result<Cow<'_, [u8]>, ResolveError> {
        match self {
            Target::Bytecode(code) => Ok(Cow::Borrowed(code.as_slice())),
            Target::Address(addr) => match source {
                None => Err(ResolveError::NoSource(*addr)),
                Some(chain) => chain
                    .code_at(*addr)
                    .map(Cow::Owned)
                    .ok_or(ResolveError::NoCode(*addr)),
            },
        }
    }

    /// The address this target names, when it names one.
    pub fn address(&self) -> Option<Address> {
        match self {
            Target::Bytecode(_) => None,
            Target::Address(addr) => Some(*addr),
        }
    }
}

/// Why an address target could not be turned into bytecode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResolveError {
    /// The request named an address but the server has no chain attached.
    NoSource(Address),
    /// The chain holds no code at this address (EOA or unknown account).
    NoCode(Address),
}

impl ResolveError {
    /// The address that failed to resolve.
    pub fn address(&self) -> Address {
        match self {
            ResolveError::NoSource(a) | ResolveError::NoCode(a) => *a,
        }
    }
}

impl fmt::Display for ResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let hex: String = self.address().iter().map(|b| format!("{b:02x}")).collect();
        match self {
            ResolveError::NoSource(_) => {
                write!(f, "no chain source attached to resolve address 0x{hex}")
            }
            ResolveError::NoCode(_) => write!(f, "no contract code at address 0x{hex}"),
        }
    }
}

impl std::error::Error for ResolveError {}

/// One contract to score: a caller-chosen request id plus the [`Target`]
/// naming what to score.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanRequest {
    /// Opaque id echoed back in the matching [`ScanReport`].
    pub id: String,
    /// What to score: raw bytecode, or an address to resolve.
    pub target: Target,
}

impl ScanRequest {
    /// A request carrying raw deployed bytecode.
    pub fn bytecode(id: impl Into<String>, code: Vec<u8>) -> Self {
        ScanRequest {
            id: id.into(),
            target: Target::Bytecode(code),
        }
    }

    /// A request naming a chain address to resolve through `eth_getCode`.
    pub fn address(id: impl Into<String>, address: Address) -> Self {
        ScanRequest {
            id: id.into(),
            target: Target::Address(address),
        }
    }
}

/// The scored answer for one [`ScanRequest`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScanReport {
    /// The request's id, echoed.
    pub id: String,
    /// The resolved address, echoed for address-form requests.
    pub address: Option<Address>,
    /// Hard verdict (probability thresholded at 0.5).
    pub verdict: Verdict,
    /// Combined class-1 probability.
    pub proba: f64,
    /// Per-model `(name, probability)` — one entry for a single model, one
    /// per member for an ensemble, in member order.
    pub per_model: Vec<(String, f64)>,
    /// The serving model's version string (see [`Scanner::model_version`]).
    pub model_version: String,
}

/// A fitted detector plus reusable scoring buffers — the one serving facade
/// for every detector family.
#[derive(Debug)]
pub struct Scanner {
    model: Arc<AnyDetector>,
    /// `"<snapshot-kind>/v<format-version>"`, e.g. `"hsc-ensemble/v1"` —
    /// identifies what a wire peer is talking to.
    model_version: Arc<str>,
    scratch: Matrix,
}

impl Scanner {
    /// Wraps a fitted detector.
    ///
    /// # Errors
    /// [`PersistError::Malformed`] when the detector was never fitted (an
    /// unfitted detector has no feature vocabulary to score with).
    pub fn new(model: AnyDetector) -> Result<Self, PersistError> {
        if !model.is_fitted() {
            return Err(PersistError::Malformed(format!(
                "`{}` detector is not fitted; train it (or load a fitted snapshot) before serving",
                model.name()
            )));
        }
        let model_version = format!("{}/v{}", model.snapshot_kind(), FORMAT_VERSION).into();
        Ok(Scanner {
            model: Arc::new(model),
            model_version,
            scratch: Matrix::zeros(0, 0),
        })
    }

    /// Restores a scanner from snapshot bytes of either kind.
    ///
    /// # Errors
    /// Any [`PersistError`] from decoding, plus `Malformed` for an unfitted
    /// snapshot.
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<Self, PersistError> {
        Self::new(AnyDetector::from_snapshot_bytes(bytes)?)
    }

    /// Loads a scanner from a snapshot file of either kind.
    ///
    /// # Errors
    /// [`PersistError::Io`] when the file cannot be read, otherwise any
    /// decode error.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, PersistError> {
        Self::new(AnyDetector::load_snapshot(path)?)
    }

    /// A sibling scanner sharing this one's detector (via [`Arc`], no model
    /// copy, no re-restore) but owning its own scratch buffer — one per
    /// worker thread or connection handler in a serving pool.
    pub fn worker(&self) -> Scanner {
        Scanner {
            model: Arc::clone(&self.model),
            model_version: Arc::clone(&self.model_version),
            scratch: Matrix::zeros(0, 0),
        }
    }

    /// `true` when both scanners score through the same shared in-memory
    /// detector (as [`Scanner::worker`] siblings do).
    pub fn shares_model_with(&self, other: &Scanner) -> bool {
        Arc::ptr_eq(&self.model, &other.model)
    }

    /// The wrapped detector.
    pub fn model(&self) -> &AnyDetector {
        &self.model
    }

    /// Model name: a Table II spelling for singles, the canonical spec
    /// string for ensembles.
    pub fn model_name(&self) -> &str {
        self.model.name()
    }

    /// `"<snapshot-kind>/v<format-version>"`, e.g. `"hsc-detector/v1"`.
    pub fn model_version(&self) -> &str {
        &self.model_version
    }

    /// `true` when tree models score through the quantized engine.
    pub fn quantize(&self) -> bool {
        self.model.quantize()
    }

    /// Widest per-feature bin count across the model's fitted quantized
    /// mirrors, when it carries one.
    pub fn quant_bins(&self) -> Option<usize> {
        self.model.quant_bins()
    }

    /// Number of underlying models (ensemble member count; 1 for singles).
    pub fn n_models(&self) -> usize {
        match self.model.as_ref() {
            AnyDetector::Hsc(_) => 1,
            AnyDetector::Ensemble(e) => e.members().len(),
        }
    }

    /// Width of the feature rows the scanner scores with (across every
    /// channel of the model's feature set).
    pub fn n_features(&self) -> usize {
        self.model.n_features()
    }

    /// Streams a batch into the scratch matrix (resized, not reallocated,
    /// while batch sizes are stable).
    fn transform_batch(&mut self, codes: &[&[u8]]) {
        self.scratch.resize(codes.len(), self.model.n_features());
        self.model.featurize_into(codes, &mut self.scratch);
    }

    /// Combined class-1 probability per bytecode — the raw hot path, same
    /// cost profile as the engine it replaces.
    pub fn score_batch(&mut self, codes: &[&[u8]]) -> Vec<f64> {
        self.transform_batch(codes);
        self.model.predict_proba(&self.scratch)
    }

    /// Hard 0/1 verdicts (1 = phishing) by thresholding
    /// [`Scanner::score_batch`] at 0.5.
    pub fn classify_batch(&mut self, codes: &[&[u8]]) -> Vec<usize> {
        self.score_batch(codes)
            .into_iter()
            .map(|p| usize::from(p >= 0.5))
            .collect()
    }

    /// The underlying model names in scoring order (one entry for a single
    /// model, one per member for an ensemble) — the fixed shape of every
    /// per-model probability vector this scanner produces.
    pub fn model_names(&self) -> Vec<String> {
        match self.model.as_ref() {
            AnyDetector::Hsc(d) => vec![d.name().to_owned()],
            AnyDetector::Ensemble(e) => e.members().iter().map(|m| m.name().to_owned()).collect(),
        }
    }

    /// Batch-submit hook for serving schedulers: combined plus per-model
    /// class-1 probabilities for a batch of raw bytecodes, from one
    /// extraction pass and one inference pass per underlying model.
    ///
    /// Unlike [`Scanner::scan_batch`] this takes borrowed bytecode slices
    /// and returns raw probability vectors — no request/report structs are
    /// built — so a cross-connection batching scheduler can submit rows
    /// gathered from many clients without cloning payloads. Bit-identical
    /// to [`Scanner::scan_batch`] on the same rows.
    pub fn score_with_members(&mut self, codes: &[&[u8]]) -> (Vec<f64>, Vec<(String, Vec<f64>)>) {
        self.transform_batch(codes);
        self.model.predict_with_members(&self.scratch)
    }

    /// Degraded-mode batch scoring: class-1 probabilities from the primary
    /// model only (the single HSC, or an ensemble's first member), plus
    /// that model's name. One extraction pass and exactly one inference
    /// pass regardless of ensemble width — the brownout ladder's
    /// cheapest-member tier. Bit-identical to the primary member's entry in
    /// [`Scanner::score_with_members`] on the same rows.
    pub fn score_primary(&mut self, codes: &[&[u8]]) -> (Vec<f64>, String) {
        self.transform_batch(codes);
        let probs = self.model.predict_primary_proba(&self.scratch);
        let name = match self.model.as_ref() {
            AnyDetector::Hsc(d) => d.name().to_owned(),
            AnyDetector::Ensemble(e) => e.members()[0].name().to_owned(),
        };
        (probs, name)
    }

    /// Scores a batch of typed requests, echoing ids and exposing per-model
    /// probabilities (one entry per ensemble member).
    ///
    /// Address targets resolve through `source` ([`Target::resolve`], the
    /// one address → bytecode hop); requests that cannot be resolved come
    /// back as `Err` in their slot, with the rest of the batch scored
    /// normally. The batch is extracted once into the scratch matrix and
    /// every underlying model scores the same rows, so an N-member ensemble
    /// costs N inference passes but only one disassembly/extraction pass.
    pub fn scan_batch(
        &mut self,
        requests: &[ScanRequest],
        source: Option<&dyn CodeSource>,
    ) -> Vec<Result<ScanReport, ResolveError>> {
        let resolved: Vec<Result<Cow<'_, [u8]>, ResolveError>> =
            requests.iter().map(|r| r.target.resolve(source)).collect();
        let codes: Vec<&[u8]> = resolved.iter().filter_map(|r| r.as_deref().ok()).collect();
        let (combined, per_model) = self.score_with_members(&codes);
        let mut row = 0;
        requests
            .iter()
            .zip(&resolved)
            .map(|(req, res)| match res {
                Err(e) => Err(*e),
                Ok(_) => {
                    let r = row;
                    row += 1;
                    Ok(ScanReport {
                        id: req.id.clone(),
                        address: req.target.address(),
                        verdict: Verdict::from_proba(combined[r]),
                        proba: combined[r],
                        per_model: per_model
                            .iter()
                            .map(|(name, probs)| (name.clone(), probs[r]))
                            .collect(),
                        model_version: self.model_version.to_string(),
                    })
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DetectorRegistry;
    use phishinghook_data::{Corpus, CorpusConfig};
    use std::sync::OnceLock;

    fn corpus() -> &'static (Vec<Vec<u8>>, Vec<usize>) {
        static CORPUS: OnceLock<(Vec<Vec<u8>>, Vec<usize>)> = OnceLock::new();
        CORPUS.get_or_init(|| {
            let corpus = Corpus::generate(&CorpusConfig {
                n_contracts: 90,
                seed: 17,
                ..Default::default()
            });
            let codes = corpus.records.iter().map(|r| r.bytecode.clone()).collect();
            let labels = corpus.records.iter().map(|r| r.label.as_index()).collect();
            (codes, labels)
        })
    }

    fn fitted(spec: &str) -> AnyDetector {
        let (codes, labels) = corpus();
        let refs: Vec<&[u8]> = codes.iter().map(Vec::as_slice).collect();
        let mut det = DetectorRegistry::global()
            .build_str(spec, 7)
            .expect("valid spec");
        det.fit(&refs[..60], &labels[..60]);
        det
    }

    #[test]
    fn score_primary_matches_the_first_member_bit_identically() {
        let (codes, _) = corpus();
        let probes: Vec<&[u8]> = codes[60..75].iter().map(Vec::as_slice).collect();
        for spec in ["rf", "ensemble:rf+lgbm:vote=soft"] {
            let mut scanner = Scanner::new(fitted(spec)).expect("fitted");
            let (full, per_model) = scanner.score_with_members(&probes);
            let (primary, name) = scanner.score_primary(&probes);
            let (first_name, first_probs) = &per_model[0];
            assert_eq!(&name, first_name, "{spec}");
            let a: Vec<u64> = primary.iter().map(|p| p.to_bits()).collect();
            let b: Vec<u64> = first_probs.iter().map(|p| p.to_bits()).collect();
            assert_eq!(a, b, "{spec}: primary scoring must replay member 0");
            if per_model.len() == 1 {
                let c: Vec<u64> = full.iter().map(|p| p.to_bits()).collect();
                assert_eq!(a, c, "{spec}: single models degrade to themselves");
            }
        }
    }

    #[test]
    fn unfitted_model_is_rejected() {
        let det = DetectorRegistry::global().build_str("rf", 7).expect("spec");
        let err = Scanner::new(det).unwrap_err();
        assert!(matches!(err, PersistError::Malformed(_)), "{err:?}");
        let ens = DetectorRegistry::global()
            .build_str("ensemble:rf+knn", 7)
            .expect("spec");
        assert!(Scanner::new(ens).is_err());
    }

    #[test]
    fn spec_snapshot_and_restored_scanners_agree_bit_identically() {
        // The acceptance contract: built from a spec, loaded from a
        // snapshot file, and restored from bytes must score identically.
        for spec in ["rf", "ensemble:rf+lgbm:vote=soft"] {
            let det = fitted(spec);
            let bytes = det.to_snapshot_bytes();
            let dir = std::env::temp_dir().join("phishinghook-scanner-test");
            std::fs::create_dir_all(&dir).expect("temp dir");
            let path = dir.join(format!("{}.snap", spec.replace([':', '+', '='], "_")));
            det.save_snapshot(&path).expect("saves");

            let mut from_spec = Scanner::new(det).expect("fitted");
            let mut from_bytes = Scanner::from_snapshot_bytes(&bytes).expect("decodes");
            let mut from_file = Scanner::load(&path).expect("loads");

            let (codes, _) = corpus();
            let probes: Vec<&[u8]> = codes[60..].iter().map(Vec::as_slice).collect();
            let a: Vec<u64> = from_spec
                .score_batch(&probes)
                .iter()
                .map(|p| p.to_bits())
                .collect();
            let b: Vec<u64> = from_bytes
                .score_batch(&probes)
                .iter()
                .map(|p| p.to_bits())
                .collect();
            let c: Vec<u64> = from_file
                .score_batch(&probes)
                .iter()
                .map(|p| p.to_bits())
                .collect();
            assert_eq!(a, b, "{spec}: snapshot bytes diverge");
            assert_eq!(a, c, "{spec}: snapshot file diverges");
        }
    }

    #[test]
    fn scan_batch_echoes_ids_and_exposes_members() {
        let mut scanner = Scanner::new(fitted("ensemble:rf+lgbm+catboost:vote=soft")).unwrap();
        assert_eq!(scanner.n_models(), 3);
        assert_eq!(scanner.model_version(), "hsc-ensemble/v1");
        let (codes, _) = corpus();
        let requests: Vec<ScanRequest> = codes[60..64]
            .iter()
            .enumerate()
            .map(|(i, code)| ScanRequest::bytecode(format!("req-{i}"), code.clone()))
            .collect();
        let reports: Vec<ScanReport> = scanner
            .scan_batch(&requests, None)
            .into_iter()
            .map(|r| r.expect("bytecode targets always score"))
            .collect();
        assert_eq!(reports.len(), 4);
        for (i, report) in reports.iter().enumerate() {
            assert_eq!(report.id, format!("req-{i}"));
            assert_eq!(report.address, None, "bytecode targets echo no address");
            assert_eq!(report.per_model.len(), 3);
            assert_eq!(report.per_model[0].0, "Random Forest");
            assert_eq!(report.per_model[1].0, "LightGBM");
            assert_eq!(report.per_model[2].0, "CatBoost");
            // Soft vote: combined is the member mean.
            let mean: f64 = report.per_model.iter().map(|(_, p)| p).sum::<f64>() / 3.0;
            assert_eq!(report.proba.to_bits(), mean.to_bits());
            assert_eq!(report.verdict, Verdict::from_proba(report.proba));
            assert_eq!(report.model_version, "hsc-ensemble/v1");
        }
    }

    #[test]
    fn single_model_reports_one_per_model_entry() {
        let mut scanner = Scanner::new(fitted("rf:seed=5")).unwrap();
        assert_eq!(scanner.n_models(), 1);
        assert_eq!(scanner.model_version(), "hsc-detector/v1");
        let (codes, _) = corpus();
        let reports = scanner.scan_batch(&[ScanRequest::bytecode("only", codes[60].clone())], None);
        let report = reports[0].as_ref().expect("bytecode target scores");
        assert_eq!(report.per_model.len(), 1);
        assert_eq!(report.per_model[0].0, "Random Forest");
        assert_eq!(report.per_model[0].1.to_bits(), report.proba.to_bits());
    }

    #[test]
    fn address_targets_resolve_through_the_chain_in_one_place() {
        use phishinghook_data::SimulatedChain;

        let mut scanner = Scanner::new(fitted("rf:seed=5")).unwrap();
        let (codes, _) = corpus();
        let mut chain = SimulatedChain::new();
        chain.deploy([7; 20], codes[60].clone());

        let requests = [
            ScanRequest::address("by-addr", [7; 20]),
            ScanRequest::bytecode("by-code", codes[60].clone()),
            ScanRequest::address("eoa", [9; 20]),
        ];
        let reports = scanner.scan_batch(&requests, Some(&chain));
        let by_addr = reports[0].as_ref().expect("deployed address resolves");
        let by_code = reports[1].as_ref().expect("bytecode scores");
        // Resolution is transparent: same bytecode ⇒ bit-identical verdict.
        assert_eq!(by_addr.proba.to_bits(), by_code.proba.to_bits());
        // Address-form requests echo the resolved address; bytecode ones don't.
        assert_eq!(by_addr.address, Some([7; 20]));
        assert_eq!(by_code.address, None);
        // An EOA errors in its slot without disturbing the batch.
        let err = reports[2].as_ref().unwrap_err();
        assert_eq!(*err, ResolveError::NoCode([9; 20]));
        assert!(err.to_string().contains("no contract code"), "{err}");

        // Without a source, address targets fail with NoSource.
        let unresolved = scanner.scan_batch(&[ScanRequest::address("x", [7; 20])], None);
        assert_eq!(
            unresolved[0].as_ref().unwrap_err(),
            &ResolveError::NoSource([7; 20])
        );
        assert!(unresolved[0]
            .as_ref()
            .unwrap_err()
            .to_string()
            .contains("no chain source"));
    }

    #[test]
    fn fused_scoring_matches_the_separate_calls_bit_identically() {
        // scan_batch derives the combined score from one inference pass per
        // member; it must equal the two-pass predict_proba/per_model_proba
        // decomposition exactly.
        for spec in ["rf", "ensemble:rf+lgbm:vote=weighted:weights=3,1"] {
            let det = fitted(spec);
            let (codes, _) = corpus();
            let probes: Vec<&[u8]> = codes[60..].iter().map(Vec::as_slice).collect();
            let x = det.extractor().unwrap().transform(&probes);
            let (combined, per_model) = det.predict_with_members(&x);
            let two_pass_combined = det.predict_proba(&x);
            let two_pass_members = det.per_model_proba(&x);
            assert_eq!(
                combined.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
                two_pass_combined
                    .iter()
                    .map(|p| p.to_bits())
                    .collect::<Vec<_>>(),
                "{spec}"
            );
            assert_eq!(per_model, two_pass_members, "{spec}");
        }
    }

    #[test]
    fn workers_share_the_model_and_agree() {
        let scanner = Scanner::new(fitted("ensemble:rf+knn:vote=hard")).unwrap();
        let (codes, _) = corpus();
        let probes: Vec<&[u8]> = codes[60..].iter().map(Vec::as_slice).collect();
        let expected = scanner.worker().score_batch(&probes);
        let outputs: Vec<Vec<f64>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let mut worker = scanner.worker();
                    assert!(worker.shares_model_with(&scanner));
                    let probes = &probes;
                    scope.spawn(move || worker.score_batch(probes))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for out in outputs {
            assert_eq!(out, expected);
        }
        // Independent scanners do NOT share.
        let other = Scanner::new(fitted("rf")).unwrap();
        assert!(!other.shares_model_with(&scanner));
    }

    #[test]
    fn batch_submit_hook_matches_scan_batch_bit_identically() {
        // score_with_members is the scheduler-facing hook: raw slices in,
        // raw probability vectors out — it must agree exactly with the
        // report-building scan_batch path and with model_names().
        for spec in ["rf", "ensemble:rf+lgbm:vote=soft"] {
            let mut scanner = Scanner::new(fitted(spec)).expect("fitted");
            let (codes, _) = corpus();
            let probes: Vec<&[u8]> = codes[60..66].iter().map(Vec::as_slice).collect();
            let (combined, per_model) = scanner.score_with_members(&probes);
            assert_eq!(
                per_model.iter().map(|(n, _)| n.clone()).collect::<Vec<_>>(),
                scanner.model_names(),
                "{spec}"
            );
            let requests: Vec<ScanRequest> = probes
                .iter()
                .enumerate()
                .map(|(i, code)| ScanRequest::bytecode(i.to_string(), code.to_vec()))
                .collect();
            let reports: Vec<ScanReport> = scanner
                .scan_batch(&requests, None)
                .into_iter()
                .map(|r| r.expect("bytecode targets always score"))
                .collect();
            for (row, report) in reports.iter().enumerate() {
                assert_eq!(report.proba.to_bits(), combined[row].to_bits(), "{spec}");
                for (m, (name, probs)) in per_model.iter().enumerate() {
                    assert_eq!(report.per_model[m].0, *name, "{spec}");
                    assert_eq!(
                        report.per_model[m].1.to_bits(),
                        probs[row].to_bits(),
                        "{spec}"
                    );
                }
            }
        }
    }

    #[test]
    fn trace_feature_specs_serve_through_the_scanner() {
        // The serving hot path must generalize past histograms: a
        // `features=` spec scores through the same scratch-matrix batch
        // path and survives the snapshot round trip bit-identically.
        for spec in ["rf:features=trace", "lr:features=hist+trace"] {
            let det = fitted(spec);
            let expected_width = det.n_features();
            let bytes = det.to_snapshot_bytes();
            let mut scanner = Scanner::new(det).expect("fitted");
            assert_eq!(scanner.n_features(), expected_width, "{spec}");
            let (codes, _) = corpus();
            let probes: Vec<&[u8]> = codes[60..66].iter().map(Vec::as_slice).collect();
            let a = scanner.score_batch(&probes);
            let mut restored = Scanner::from_snapshot_bytes(&bytes).expect("decodes");
            let b = restored.score_batch(&probes);
            assert_eq!(
                a.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
                b.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
                "{spec}"
            );
        }
    }

    #[test]
    fn verdict_formatting() {
        assert_eq!(Verdict::from_proba(0.5), Verdict::Phishing);
        assert_eq!(Verdict::from_proba(0.49), Verdict::Benign);
        assert_eq!(Verdict::Phishing.to_string(), "phishing");
        assert_eq!(Verdict::Benign.as_str(), "benign");
    }
}
